//! Shortest-path search: Dijkstra, A*, reachability.
//!
//! Two interchangeable backends share one pinned frontier order:
//!
//! * [`astar`] / [`dijkstra`] — the paper's naive form over [`DiGraph`],
//!   allocating fresh per-query state. Retained as the **reference
//!   implementation** the equivalence test suite pins the fast path to.
//! * [`astar_csr`] / [`dijkstra_csr`] / [`astar_csr_baked`] — the
//!   serving hot path over a frozen [`CsrGraph`], with all mutable
//!   search state living in a reusable [`SearchArena`]
//!   (generation-counter reset, retained open-set heap), so
//!   steady-state routing allocates nothing but the result path. The
//!   `_baked` form reads fully pre-computed per-slot edge records
//!   ([`BakedEdge`]) instead of calling weight and id-lookup code per
//!   edge visit.
//!
//! Both backends order their frontier by the strict total order
//! `(estimate, descending path cost, external node id)`, so the settle
//! sequence —
//! and therefore the returned path, cost, and `expanded` count — is a
//! pure function of the graph, never of heap internals, dense-index
//! assignment, or adjacency iteration order.

use crate::csr::CsrGraph;
use crate::graph::{DiGraph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a successful path search.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Sum of edge weights along the path.
    pub cost: f64,
    /// Node ids from start to goal, inclusive.
    pub nodes: Vec<NodeId>,
    /// Number of heap pops performed (search effort; used by the latency
    /// experiments to explain config differences).
    pub expanded: usize,
}

/// Min-heap entry ordered by the pinned frontier order.
#[derive(Debug)]
struct Frontier {
    est: f64,
    cost: f64,
    idx: u32,
    id: NodeId,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap. The order is [`frontier_order`] — a
        // strict total order, so the pop sequence is unique and every
        // heap implementation (std's here, the hand-rolled arena heap in
        // [`crate::search::SearchArena`]) settles nodes in exactly the
        // same sequence. That is the load-bearing property behind the
        // byte-identical CSR ⇔ naive routing equivalence.
        frontier_order(
            other.est, other.cost, other.id, self.est, self.cost, self.id,
        )
    }
}

/// The pinned frontier order shared by every search backend: estimate
/// first, then **descending** path cost (on an estimate tie, the entry
/// with more accumulated cost is closer to the goal under an admissible
/// heuristic — the classic high-g tie-break that keeps A* from
/// degenerating to Dijkstra on plateaus), then **external** node id —
/// never a dense index (dense indices differ between [`DiGraph`]
/// insertion order and [`crate::CsrGraph`] canonical order) and never
/// heap internals.
#[inline]
pub(crate) fn frontier_order(
    a_est: f64,
    a_cost: f64,
    a_id: NodeId,
    b_est: f64,
    b_cost: f64,
    b_id: NodeId,
) -> Ordering {
    a_est
        .total_cmp(&b_est)
        .then_with(|| b_cost.total_cmp(&a_cost))
        .then_with(|| a_id.cmp(&b_id))
}

/// A* search from `start` to `goal`.
///
/// * `weight(from_idx, to_idx, &edge)` must return a non-negative edge
///   cost;
/// * `heuristic(idx)` must be an admissible lower bound on the remaining
///   cost to `goal` (return `0.0` to degrade to Dijkstra).
///
/// Returns `None` when either endpoint is missing or unreachable.
pub fn astar<N, E>(
    graph: &DiGraph<N, E>,
    start: NodeId,
    goal: NodeId,
    mut weight: impl FnMut(u32, u32, &E) -> f64,
    mut heuristic: impl FnMut(u32) -> f64,
) -> Option<PathResult> {
    let start_idx = graph.node_index(start)?;
    let goal_idx = graph.node_index(goal)?;

    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![u32::MAX; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut expanded = 0usize;

    dist[start_idx as usize] = 0.0;
    heap.push(Frontier {
        est: heuristic(start_idx),
        cost: 0.0,
        idx: start_idx,
        id: start,
    });

    while let Some(Frontier { cost, idx, .. }) = heap.pop() {
        if settled[idx as usize] {
            continue;
        }
        settled[idx as usize] = true;
        expanded += 1;

        if idx == goal_idx {
            let mut nodes = Vec::new();
            let mut cur = goal_idx;
            loop {
                nodes.push(graph.node_id(cur));
                if cur == start_idx {
                    break;
                }
                cur = prev[cur as usize];
                debug_assert_ne!(cur, u32::MAX, "broken predecessor chain");
            }
            nodes.reverse();
            return Some(PathResult {
                cost,
                nodes,
                expanded,
            });
        }

        for edge in graph.edges_from_index(idx) {
            let t = edge.to_idx as usize;
            if settled[t] {
                continue;
            }
            let w = weight(idx, edge.to_idx, edge.payload);
            debug_assert!(w >= 0.0, "negative edge weight breaks Dijkstra/A*");
            let next = cost + w;
            if next < dist[t] {
                dist[t] = next;
                prev[t] = idx;
                heap.push(Frontier {
                    est: next + heuristic(edge.to_idx),
                    cost: next,
                    idx: edge.to_idx,
                    id: edge.to,
                });
            }
        }
    }
    None
}

/// Dijkstra shortest path (A* with a zero heuristic).
pub fn dijkstra<N, E>(
    graph: &DiGraph<N, E>,
    start: NodeId,
    goal: NodeId,
    weight: impl FnMut(u32, u32, &E) -> f64,
) -> Option<PathResult> {
    astar(graph, start, goal, weight, |_| 0.0)
}

/// One fully-baked edge record for the serving kernel
/// ([`astar_csr_baked`]): everything an A* edge visit needs, laid out
/// contiguously in CSR slot order so visiting a node's out-edges reads
/// one or two cache lines instead of gathering the target index, cost,
/// external id, and heuristic key from four parallel arrays.
///
/// `H` is the caller's per-target heuristic key (HABIT bakes the
/// target cell's axial hex coordinates); the heuristic closure maps it
/// to the same `f64` estimate the naive backend computes from the node
/// id, which is what keeps the two backends byte-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BakedEdge<H> {
    /// Edge cost — the exact `f64` the weight function returns for this
    /// slot.
    pub cost: f64,
    /// External id of the target node.
    pub id: NodeId,
    /// Dense CSR index of the target node.
    pub to_idx: u32,
    /// Heuristic key of the target node.
    pub hkey: H,
}

/// Per-node mutable search state, fused into one struct so a relax (or
/// settle check) touches a single cache line per node instead of
/// gathering `dist`/`prev`/generation marks from parallel arrays.
#[derive(Debug, Clone, Copy)]
struct NodeState {
    /// Best known cost; valid when `touched == generation`.
    dist: f64,
    /// Predecessor dense index; valid when `touched == generation`.
    prev: u32,
    /// Generation that last wrote this state.
    touched: u32,
    /// Generation that settled this node.
    settled: u32,
}

impl Default for NodeState {
    fn default() -> Self {
        Self {
            dist: f64::INFINITY,
            prev: u32::MAX,
            touched: 0,
            settled: 0,
        }
    }
}

/// Reusable mutable state for [`astar_csr`] / [`dijkstra_csr`]: the
/// same duplicate-push `BinaryHeap<Frontier>` the naive backend uses —
/// retained across queries so its buffer stops being reallocated — plus
/// fused per-node g-score/predecessor/settled state.
///
/// Clearing between queries is O(1): `BinaryHeap::clear` keeps the
/// allocation, and node states are validated against a per-query
/// **generation counter** instead of being rewritten (the naive backend
/// re-allocates and re-initializes ~160 KB of per-node arrays per query
/// on the Kiel graph), so a long-lived arena (one per serving thread)
/// makes steady-state routing allocation-free — the only allocation
/// left is the returned path.
///
/// Keeping the *same* heap discipline as the naive backend (push a
/// fresh entry per relax, skip already-settled pops) makes the
/// byte-identity argument trivial: both backends execute the same
/// abstract sequence of heap operations on the same keys, and
/// [`frontier_order`] is a strict total order, so the settle sequence,
/// `expanded` count, and dist/prev trajectories are identical. (An
/// indexed decrease-key heap variant measured *slower* here — safe-Rust
/// sift loops with heap-position backpointers lose more to bounds
/// checks and scattered `pos` stores than lazy deletion loses to stale
/// entries at this graph's ~2.3 stale pops per settle.)
#[derive(Debug, Default)]
pub struct SearchArena {
    /// Fused per-node search state, indexed by dense node index.
    nodes: Vec<NodeState>,
    /// Open-set storage, ordered by [`frontier_order`].
    heap: BinaryHeap<Frontier>,
    generation: u32,
}

impl SearchArena {
    /// Creates an empty arena; arrays grow to the graph size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new query over a graph of `n` nodes: bumps the
    /// generation (invalidating all per-node state at once) and grows
    /// the arrays if this graph is larger than any seen before.
    fn begin(&mut self, n: usize) {
        if self.nodes.len() < n {
            self.nodes.resize(n, NodeState::default());
        }
        self.heap.clear();
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Generation wrapped: old marks could alias. Re-zero once
            // every 2^32 queries and restart at generation 1.
            for s in &mut self.nodes {
                s.touched = 0;
                s.settled = 0;
            }
            self.generation = 1;
        }
    }

    #[inline]
    fn dist(&self, idx: u32) -> f64 {
        let s = &self.nodes[idx as usize];
        if s.touched == self.generation {
            s.dist
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn is_settled(&self, idx: u32) -> bool {
        self.nodes[idx as usize].settled == self.generation
    }

    #[inline]
    fn settle(&mut self, idx: u32) {
        self.nodes[idx as usize].settled = self.generation;
    }

    #[inline]
    fn prev(&self, idx: u32) -> u32 {
        self.nodes[idx as usize].prev
    }

    /// Records an improved path to `idx` (`cost` strictly below its
    /// current dist) and pushes its new frontier entry. The caller
    /// guarantees `idx` is not settled.
    #[inline]
    fn relax(&mut self, idx: u32, cost: f64, prev: u32, est: f64, id: NodeId) {
        let s = &mut self.nodes[idx as usize];
        s.dist = cost;
        s.prev = prev;
        s.touched = self.generation;
        self.heap.push(Frontier { est, cost, idx, id });
    }

    /// Pops the next frontier entry — possibly a stale duplicate of an
    /// already-settled node; the search loop skips those, exactly like
    /// the naive backend.
    #[inline]
    fn pop(&mut self) -> Option<(f64, u32)> {
        self.heap.pop().map(|f| (f.cost, f.idx))
    }
}

/// A* over a frozen [`CsrGraph`] with all scratch state in `arena`.
///
/// Same contract as [`astar`] — and, by the shared frontier order,
/// the **same result byte for byte** for the same node/edge set and
/// equal-valued weight and heuristic functions (`weight`/`heuristic`
/// receive *CSR* dense indices; id-equivalent functions must return
/// identical `f64`s on both backends for the equivalence to hold,
/// which holds trivially for payload- and id-derived functions).
pub fn astar_csr<N, E>(
    graph: &CsrGraph<N, E>,
    arena: &mut SearchArena,
    start: NodeId,
    goal: NodeId,
    mut weight: impl FnMut(u32, u32, &E) -> f64,
    heuristic: impl FnMut(u32) -> f64,
) -> Option<PathResult> {
    let payloads = graph.weights();
    astar_csr_impl(
        graph,
        arena,
        start,
        goal,
        |slot, from, to| weight(from, to, &payloads[slot]),
        heuristic,
    )
}

/// A* over a frozen [`CsrGraph`] with a **fully baked edge table**:
/// `edges` holds one [`BakedEdge`] per CSR edge slot, parallel to
/// [`CsrGraph::targets`], carrying the pre-computed cost, target id,
/// and target heuristic key inline.
///
/// Exactly equivalent to [`astar_csr`] with a weight function returning
/// `edges[slot].cost` and a heuristic returning `heuristic(hkey)` — but
/// the serving inner loop reads one contiguous record where the closure
/// form recomputes per visit and gathers the target's id from a
/// separate array (the habit model bakes its log-frequency weights and
/// axial cell coordinates once at freeze time, since neither changes
/// after fit). `start_est` must equal the heuristic estimate of
/// `start` — the baked table only covers edge *targets*, so the start
/// node's estimate is the caller's (it is on screen anyway: the same
/// formula the caller baked the keys with).
pub fn astar_csr_baked<N, E, H: Copy>(
    graph: &CsrGraph<N, E>,
    arena: &mut SearchArena,
    start: NodeId,
    goal: NodeId,
    edges: &[BakedEdge<H>],
    start_est: f64,
    mut heuristic: impl FnMut(H) -> f64,
) -> Option<PathResult> {
    assert_eq!(
        edges.len(),
        graph.edge_count(),
        "one baked edge record per CSR edge slot"
    );
    let start_idx = graph.node_index(start)?;
    let goal_idx = graph.node_index(goal)?;
    let offsets = graph.offsets();
    let ids = graph.ids();

    arena.begin(graph.node_count());
    let mut expanded = 0usize;
    arena.relax(start_idx, 0.0, u32::MAX, start_est, start);

    while let Some((cost, idx)) = arena.pop() {
        if arena.is_settled(idx) {
            continue;
        }
        arena.settle(idx);
        expanded += 1;

        if idx == goal_idx {
            return Some(PathResult {
                cost,
                nodes: reconstruct(ids, start_idx, goal_idx, |cur| arena.prev(cur)),
                expanded,
            });
        }

        for e in &edges[offsets[idx as usize] as usize..offsets[idx as usize + 1] as usize] {
            if arena.is_settled(e.to_idx) {
                continue;
            }
            debug_assert!(e.cost >= 0.0, "negative edge weight breaks Dijkstra/A*");
            let next = cost + e.cost;
            if next < arena.dist(e.to_idx) {
                arena.relax(e.to_idx, next, idx, next + heuristic(e.hkey), e.id);
            }
        }
    }
    None
}

/// Walks the predecessor chain from `goal_idx` back to `start_idx` and
/// returns the external-id path in start → goal order.
fn reconstruct(
    ids: &[NodeId],
    start_idx: u32,
    goal_idx: u32,
    mut prev: impl FnMut(u32) -> u32,
) -> Vec<NodeId> {
    let mut nodes = Vec::new();
    let mut cur = goal_idx;
    loop {
        nodes.push(ids[cur as usize]);
        if cur == start_idx {
            break;
        }
        cur = prev(cur);
        debug_assert_ne!(cur, u32::MAX, "broken predecessor chain");
    }
    nodes.reverse();
    nodes
}

/// Shared CSR search core: `edge_cost(slot, from_idx, to_idx)` returns
/// the weight of the edge stored at CSR slot `slot`.
#[inline]
fn astar_csr_impl<N, E>(
    graph: &CsrGraph<N, E>,
    arena: &mut SearchArena,
    start: NodeId,
    goal: NodeId,
    mut edge_cost: impl FnMut(usize, u32, u32) -> f64,
    mut heuristic: impl FnMut(u32) -> f64,
) -> Option<PathResult> {
    let start_idx = graph.node_index(start)?;
    let goal_idx = graph.node_index(goal)?;
    let offsets = graph.offsets();
    let targets = graph.targets();
    let ids = graph.ids();

    arena.begin(graph.node_count());
    let mut expanded = 0usize;
    arena.relax(start_idx, 0.0, u32::MAX, heuristic(start_idx), start);

    while let Some((cost, idx)) = arena.pop() {
        if arena.is_settled(idx) {
            continue;
        }
        arena.settle(idx);
        expanded += 1;

        if idx == goal_idx {
            return Some(PathResult {
                cost,
                nodes: reconstruct(ids, start_idx, goal_idx, |cur| arena.prev(cur)),
                expanded,
            });
        }

        let (lo, hi) = (
            offsets[idx as usize] as usize,
            offsets[idx as usize + 1] as usize,
        );
        for (slot, &to_idx) in (lo..hi).zip(&targets[lo..hi]) {
            if arena.is_settled(to_idx) {
                continue;
            }
            let w = edge_cost(slot, idx, to_idx);
            debug_assert!(w >= 0.0, "negative edge weight breaks Dijkstra/A*");
            let next = cost + w;
            if next < arena.dist(to_idx) {
                arena.relax(
                    to_idx,
                    next,
                    idx,
                    next + heuristic(to_idx),
                    ids[to_idx as usize],
                );
            }
        }
    }
    None
}

/// Dijkstra over a frozen [`CsrGraph`] ([`astar_csr`] with a zero
/// heuristic).
pub fn dijkstra_csr<N, E>(
    graph: &CsrGraph<N, E>,
    arena: &mut SearchArena,
    start: NodeId,
    goal: NodeId,
    weight: impl FnMut(u32, u32, &E) -> f64,
) -> Option<PathResult> {
    astar_csr(graph, arena, start, goal, weight, |_| 0.0)
}

/// Returns the dense indices reachable from `start` (BFS over out-edges),
/// including `start` itself.
pub fn reachable_from<N, E>(graph: &DiGraph<N, E>, start: NodeId) -> Vec<u32> {
    let Some(start_idx) = graph.node_index(start) else {
        return Vec::new();
    };
    let mut visited = vec![false; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    let mut out = Vec::new();
    visited[start_idx as usize] = true;
    queue.push_back(start_idx);
    while let Some(idx) = queue.pop_front() {
        out.push(idx);
        for e in graph.edges_from_index(idx) {
            if !visited[e.to_idx as usize] {
                visited[e.to_idx as usize] = true;
                queue.push_back(e.to_idx);
            }
        }
    }
    out
}

/// Assigns every node a component root via undirected reachability (edges
/// traversed both ways) and returns `roots[idx] = root_idx`.
///
/// Used as a graph-quality diagnostic: a healthy traffic graph has one
/// dominant weakly-connected component.
pub fn strongly_connected_roots<N, E>(graph: &DiGraph<N, E>) -> Vec<u32> {
    let n = graph.node_count();
    // Build undirected adjacency once.
    let mut undirected: Vec<Vec<u32>> = vec![Vec::new(); n];
    for idx in 0..n as u32 {
        for e in graph.edges_from_index(idx) {
            undirected[idx as usize].push(e.to_idx);
            undirected[e.to_idx as usize].push(idx);
        }
    }
    let mut roots = vec![u32::MAX; n];
    let mut stack = Vec::new();
    for seed in 0..n as u32 {
        if roots[seed as usize] != u32::MAX {
            continue;
        }
        stack.push(seed);
        roots[seed as usize] = seed;
        while let Some(idx) = stack.pop() {
            for &t in &undirected[idx as usize] {
                if roots[t as usize] == u32::MAX {
                    roots[t as usize] = seed;
                    stack.push(t);
                }
            }
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1 → 2 → 3 → 4 (cheap chain) and 1 → 4 (expensive shortcut).
    fn chain() -> DiGraph<(), f64> {
        let mut g = DiGraph::new();
        for id in 1..=4 {
            g.add_node(id, ());
        }
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(1, 4, 10.0);
        g
    }

    #[test]
    fn dijkstra_prefers_cheap_chain() {
        let g = chain();
        let r = dijkstra(&g, 1, 4, |_, _, w| *w).unwrap();
        assert_eq!(r.nodes, vec![1, 2, 3, 4]);
        assert_eq!(r.cost, 3.0);
    }

    #[test]
    fn dijkstra_uses_shortcut_when_cheaper() {
        let mut g = chain();
        g.add_edge(1, 4, 2.5);
        let r = dijkstra(&g, 1, 4, |_, _, w| *w).unwrap();
        assert_eq!(r.nodes, vec![1, 4]);
        assert_eq!(r.cost, 2.5);
    }

    #[test]
    fn unreachable_and_missing() {
        let mut g = chain();
        g.add_node(99, ());
        assert!(dijkstra(&g, 1, 99, |_, _, w| *w).is_none());
        assert!(dijkstra(&g, 1, 1000, |_, _, w| *w).is_none());
        assert!(dijkstra(&g, 4, 1, |_, _, w| *w).is_none(), "directed");
    }

    #[test]
    fn start_equals_goal() {
        let g = chain();
        let r = dijkstra(&g, 2, 2, |_, _, w| *w).unwrap();
        assert_eq!(r.nodes, vec![2]);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn astar_with_admissible_heuristic_finds_same_path() {
        // Grid-like graph: nodes 0..100 laid out on a 10x10 grid, id = y*10+x.
        let mut g = DiGraph::new();
        for id in 0..100u64 {
            g.add_node(id, ());
        }
        for y in 0..10u64 {
            for x in 0..10u64 {
                let id = y * 10 + x;
                if x + 1 < 10 {
                    g.add_edge(id, id + 1, 1.0);
                    g.add_edge(id + 1, id, 1.0);
                }
                if y + 1 < 10 {
                    g.add_edge(id, id + 10, 1.0);
                    g.add_edge(id + 10, id, 1.0);
                }
            }
        }
        let manhattan = |idx: u32| {
            let id = idx as u64;
            let (x, y) = (id % 10, id / 10);
            ((9 - x) + (9 - y)) as f64
        };
        let d = dijkstra(&g, 0, 99, |_, _, w| *w).unwrap();
        let a = astar(&g, 0, 99, |_, _, w| *w, manhattan).unwrap();
        assert_eq!(d.cost, a.cost);
        assert_eq!(a.cost, 18.0);
        assert!(
            a.expanded < d.expanded,
            "A* ({}) must expand fewer nodes than Dijkstra ({})",
            a.expanded,
            d.expanded
        );
    }

    #[test]
    fn reachability() {
        let g = chain();
        let r = reachable_from(&g, 2);
        assert_eq!(r.len(), 3, "2, 3, 4");
        assert!(reachable_from(&g, 1000).is_empty());
    }

    #[test]
    fn components() {
        let mut g = chain();
        g.add_node(50, ());
        g.add_node(51, ());
        g.add_edge(50, 51, 1.0);
        let roots = strongly_connected_roots(&g);
        // Nodes 1-4 share a root; 50-51 share a different one.
        let r14: std::collections::HashSet<u32> = (0..4).map(|i| roots[i as usize]).collect();
        assert_eq!(r14.len(), 1);
        assert_eq!(roots[4], roots[5]);
        assert_ne!(roots[0], roots[4]);
    }
}

#[cfg(test)]
mod csr_tests {
    use super::*;
    use crate::csr::CsrGraph;

    /// The 10x10 unit grid from the naive tests, ids shuffled through a
    /// bijection so DiGraph insertion order != CSR canonical order.
    fn grid() -> DiGraph<(), f64> {
        let mut g = DiGraph::new();
        for id in (0..100u64).rev() {
            g.add_node(id, ());
        }
        for y in 0..10u64 {
            for x in 0..10u64 {
                let id = y * 10 + x;
                if x + 1 < 10 {
                    g.add_edge(id, id + 1, 1.0);
                    g.add_edge(id + 1, id, 1.0);
                }
                if y + 1 < 10 {
                    g.add_edge(id, id + 10, 1.0);
                    g.add_edge(id + 10, id, 1.0);
                }
            }
        }
        g
    }

    fn manhattan_to_99(id: NodeId) -> f64 {
        let (x, y) = (id % 10, id / 10);
        ((9 - x) + (9 - y)) as f64
    }

    #[test]
    fn csr_astar_matches_naive_byte_for_byte() {
        let g = grid();
        let csr = CsrGraph::from_digraph(&g);
        let mut arena = SearchArena::new();
        for (start, goal) in [(0u64, 99u64), (99, 0), (5, 95), (42, 42), (7, 70)] {
            let naive = astar(
                &g,
                start,
                goal,
                |_, _, w| *w,
                |idx| manhattan_to_99(g.node_id(idx)),
            );
            let fast = astar_csr(
                &csr,
                &mut arena,
                start,
                goal,
                |_, _, w| *w,
                |idx| manhattan_to_99(csr.node_id(idx)),
            );
            let (naive, fast) = (naive.unwrap(), fast.unwrap());
            assert_eq!(naive.nodes, fast.nodes);
            assert_eq!(naive.cost.to_bits(), fast.cost.to_bits());
            assert_eq!(naive.expanded, fast.expanded);
        }
    }

    #[test]
    fn csr_handles_missing_and_unreachable() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        g.add_node(1, ());
        g.add_node(2, ());
        g.add_node(9, ());
        g.add_edge(1, 2, 1.0);
        let csr = CsrGraph::from_digraph(&g);
        let mut arena = SearchArena::new();
        assert!(dijkstra_csr(&csr, &mut arena, 1, 9, |_, _, w| *w).is_none());
        assert!(dijkstra_csr(&csr, &mut arena, 1, 1000, |_, _, w| *w).is_none());
        assert!(
            dijkstra_csr(&csr, &mut arena, 2, 1, |_, _, w| *w).is_none(),
            "directed"
        );
        let ok = dijkstra_csr(&csr, &mut arena, 1, 2, |_, _, w| *w).unwrap();
        assert_eq!(ok.nodes, vec![1, 2]);
    }

    #[test]
    fn baked_edges_match_closure_weights_byte_for_byte() {
        let g = grid();
        let csr = CsrGraph::from_digraph(&g);
        // Bake cost, target id, and heuristic key (the id itself here)
        // for every CSR edge slot.
        let mut edges = Vec::with_capacity(csr.edge_count());
        for idx in 0..csr.node_count() as u32 {
            for (to, w) in csr.edges_from_index(idx) {
                edges.push(BakedEdge {
                    cost: *w,
                    id: csr.node_id(to),
                    to_idx: to,
                    hkey: csr.node_id(to),
                });
            }
        }
        let mut arena = SearchArena::new();
        for (start, goal) in [(0u64, 99u64), (99, 0), (5, 95), (42, 42), (7, 70)] {
            let closure = astar_csr(
                &csr,
                &mut arena,
                start,
                goal,
                |_, _, w| *w,
                |idx| manhattan_to_99(csr.node_id(idx)),
            );
            let baked = astar_csr_baked(
                &csr,
                &mut arena,
                start,
                goal,
                &edges,
                manhattan_to_99(start),
                manhattan_to_99,
            );
            assert_eq!(closure, baked);
        }
    }

    #[test]
    #[should_panic(expected = "one baked edge record per CSR edge slot")]
    fn baked_rejects_mismatched_edge_table() {
        let g = grid();
        let csr = CsrGraph::from_digraph(&g);
        let mut arena = SearchArena::new();
        let one = [BakedEdge {
            cost: 1.0,
            id: 1,
            to_idx: 1,
            hkey: (),
        }];
        let _ = astar_csr_baked(&csr, &mut arena, 0, 99, &one, 0.0, |_| 0.0);
    }

    #[test]
    fn arena_generation_wrap_stays_correct() {
        let g = grid();
        let csr = CsrGraph::from_digraph(&g);
        let mut arena = SearchArena::new();
        let before = dijkstra_csr(&csr, &mut arena, 0, 99, |_, _, w| *w).unwrap();
        // Force the wrap path: the next begin() bumps to 0 and re-zeroes.
        arena.generation = u32::MAX;
        let after = dijkstra_csr(&csr, &mut arena, 0, 99, |_, _, w| *w).unwrap();
        assert_eq!(before, after);
        assert_eq!(arena.generation, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::csr::CsrGraph;
    use proptest::prelude::*;

    /// A random weighted digraph: `n` nodes with scattered ids (so
    /// insertion order, id order, and dense indices all disagree) and up
    /// to 300 random directed edges with positive weights.
    fn arb_graph() -> impl Strategy<Value = DiGraph<u64, f64>> {
        (
            2usize..40,
            proptest::collection::vec((0usize..40, 0usize..40, 0.01f64..10.0), 1..300),
        )
            .prop_map(|(n, edges)| {
                let mut g: DiGraph<u64, f64> = DiGraph::new();
                for i in 0..n as u64 {
                    // Bit-mixed ids: ascending-id order != insertion order.
                    g.add_node(i.wrapping_mul(0x9E37_79B9).rotate_left(7) % 1000, i);
                }
                for (a, b, w) in edges {
                    let a = g.node_id((a % n) as u32);
                    let b = g.node_id((b % n) as u32);
                    if a != b {
                        g.add_edge(a, b, w);
                    }
                }
                g
            })
    }

    /// Start/goal picked by dense index so they always exist.
    fn arb_case() -> impl Strategy<Value = (DiGraph<u64, f64>, usize, usize)> {
        (arb_graph(), 0usize..40, 0usize..40)
    }

    /// Every hop of `path` is a real edge and the costs re-accumulate to
    /// the reported total bit-for-bit (the search sums in path order).
    fn assert_valid_path(g: &DiGraph<u64, f64>, r: &PathResult, start: NodeId, goal: NodeId) {
        assert_eq!(r.nodes.first(), Some(&start));
        assert_eq!(r.nodes.last(), Some(&goal));
        let mut acc = 0.0f64;
        for hop in r.nodes.windows(2) {
            let w = g.edge(hop[0], hop[1]).expect("every hop is a real edge");
            acc += *w;
        }
        assert_eq!(acc.to_bits(), r.cost.to_bits(), "cost is the path sum");
    }

    proptest! {
        /// ISSUE 7 satellite: the old hand-built `astar_equals_dijkstra_cost`
        /// unit check, promoted to arbitrary graphs and both backends.
        /// A* under an admissible heuristic (min edge weight unless at the
        /// goal) returns the same cost as Dijkstra; both paths are valid;
        /// both backends agree byte for byte.
        #[test]
        fn astar_equals_dijkstra_on_both_backends((g, s, t) in arb_case()) {
            let n = g.node_count();
            let (start, goal) = (g.node_id((s % n) as u32), g.node_id((t % n) as u32));
            let min_w = {
                let mut m = f64::INFINITY;
                for (id, _) in g.nodes() {
                    for e in g.edges_from(id).expect("node exists") {
                        m = m.min(*e.payload);
                    }
                }
                m
            };
            let h = |id: NodeId| if id == goal || min_w.is_infinite() { 0.0 } else { min_w };

            let d = dijkstra(&g, start, goal, |_, _, w| *w);
            let a = astar(&g, start, goal, |_, _, w| *w, |idx| h(g.node_id(idx)));
            prop_assert_eq!(d.is_some(), a.is_some());
            if let (Some(d), Some(a)) = (&d, &a) {
                prop_assert!((d.cost - a.cost).abs() <= 1e-9 * d.cost.max(1.0));
                assert_valid_path(&g, d, start, goal);
                assert_valid_path(&g, a, start, goal);
            }

            let csr = CsrGraph::from_digraph(&g);
            let mut arena = SearchArena::new();
            let dc = dijkstra_csr(&csr, &mut arena, start, goal, |_, _, w| *w);
            let ac = astar_csr(&csr, &mut arena, start, goal, |_, _, w| *w,
                |idx| h(csr.node_id(idx)));
            // Byte-identical across backends: same nodes, same cost bits,
            // same expansion count.
            prop_assert_eq!(&d, &dc);
            if let Some(d) = &d {
                prop_assert_eq!(d.cost.to_bits(), dc.as_ref().expect("matches d").cost.to_bits());
            }
            prop_assert_eq!(&a, &ac);

            // Determinism across runs and across arena reuse.
            let d2 = dijkstra(&g, start, goal, |_, _, w| *w);
            prop_assert_eq!(&d, &d2);
            let dc2 = dijkstra_csr(&csr, &mut arena, start, goal, |_, _, w| *w);
            prop_assert_eq!(&dc, &dc2);
        }

        /// The byte-identity holds for *any* heuristic, admissible or not:
        /// both backends see the same `(est, cost, id)` keys, so the
        /// settle sequence is the same even when the heuristic is junk.
        #[test]
        fn backends_agree_under_arbitrary_heuristic((g, s, t) in arb_case(), quirk in 0u64..100) {
            let n = g.node_count();
            let (start, goal) = (g.node_id((s % n) as u32), g.node_id((t % n) as u32));
            let h = move |id: NodeId| (id.wrapping_mul(quirk) % 13) as f64 * 0.37;
            let naive = astar(&g, start, goal, |_, _, w| *w, |idx| h(g.node_id(idx)));
            let csr = CsrGraph::from_digraph(&g);
            let mut arena = SearchArena::new();
            let fast = astar_csr(&csr, &mut arena, start, goal, |_, _, w| *w,
                |idx| h(csr.node_id(idx)));
            prop_assert_eq!(&naive, &fast);
            if let (Some(naive), Some(fast)) = (&naive, &fast) {
                prop_assert_eq!(naive.cost.to_bits(), fast.cost.to_bits());
                prop_assert_eq!(naive.expanded, fast.expanded);
            }

            // The baked-edge form (what the model serves with) agrees too:
            // bake cost, target id, and heuristic key per CSR edge slot.
            let mut edges = Vec::with_capacity(csr.edge_count());
            for idx in 0..csr.node_count() as u32 {
                for (to, w) in csr.edges_from_index(idx) {
                    edges.push(BakedEdge {
                        cost: *w,
                        id: csr.node_id(to),
                        to_idx: to,
                        hkey: csr.node_id(to),
                    });
                }
            }
            let baked = astar_csr_baked(&csr, &mut arena, start, goal, &edges, h(start), h);
            prop_assert_eq!(&naive, &baked);
        }

        /// CSR freeze is canonical on random graphs too: re-inserting the
        /// same node/edge set in reverse order freezes byte-identically.
        #[test]
        fn csr_freeze_order_insensitive(g in arb_graph()) {
            let mut nodes: Vec<(NodeId, u64)> = g.nodes().map(|(id, p)| (id, *p)).collect();
            let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
            for (id, _) in g.nodes() {
                for e in g.edges_from(id).expect("node exists") {
                    edges.push((id, e.to, *e.payload));
                }
            }
            nodes.reverse();
            edges.reverse();
            let mut g2: DiGraph<u64, f64> = DiGraph::new();
            for &(id, p) in &nodes {
                g2.add_node(id, p);
            }
            for &(a, b, w) in &edges {
                g2.add_edge(a, b, w);
            }
            let (c1, c2) = (CsrGraph::from_digraph(&g), CsrGraph::from_digraph(&g2));
            prop_assert_eq!(c1.to_bytes(), c2.to_bytes());
        }

        /// Arbitrary bytes never panic the CSR decoder; valid bytes
        /// round-trip exactly.
        #[test]
        fn csr_codec_robust(g in arb_graph(), noise in proptest::collection::vec(any::<u8>(), 0..512)) {
            let csr = CsrGraph::from_digraph(&g);
            let bytes = csr.to_bytes();
            let back: CsrGraph<u64, f64> = CsrGraph::from_bytes(&bytes).expect("round trip");
            prop_assert_eq!(back.to_bytes(), bytes.clone());
            let _ = CsrGraph::<u64, f64>::from_bytes(&noise);
            let cut = bytes.len().saturating_sub(1 + noise.len() % 16);
            prop_assert!(CsrGraph::<u64, f64>::from_bytes(&bytes[..cut]).is_none());
        }
    }
}
