//! Shortest-path search: Dijkstra, A*, reachability.

use crate::graph::{DiGraph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a successful path search.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Sum of edge weights along the path.
    pub cost: f64,
    /// Node ids from start to goal, inclusive.
    pub nodes: Vec<NodeId>,
    /// Number of heap pops performed (search effort; used by the latency
    /// experiments to explain config differences).
    pub expanded: usize,
}

/// Min-heap entry ordered by estimated total cost.
#[derive(Debug)]
struct Frontier {
    est: f64,
    cost: f64,
    idx: u32,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.est == other.est
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; est is always finite.
        other.est.partial_cmp(&self.est).unwrap_or(Ordering::Equal)
    }
}

/// A* search from `start` to `goal`.
///
/// * `weight(from_idx, to_idx, &edge)` must return a non-negative edge
///   cost;
/// * `heuristic(idx)` must be an admissible lower bound on the remaining
///   cost to `goal` (return `0.0` to degrade to Dijkstra).
///
/// Returns `None` when either endpoint is missing or unreachable.
pub fn astar<N, E>(
    graph: &DiGraph<N, E>,
    start: NodeId,
    goal: NodeId,
    mut weight: impl FnMut(u32, u32, &E) -> f64,
    mut heuristic: impl FnMut(u32) -> f64,
) -> Option<PathResult> {
    let start_idx = graph.node_index(start)?;
    let goal_idx = graph.node_index(goal)?;

    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![u32::MAX; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut expanded = 0usize;

    dist[start_idx as usize] = 0.0;
    heap.push(Frontier {
        est: heuristic(start_idx),
        cost: 0.0,
        idx: start_idx,
    });

    while let Some(Frontier { cost, idx, .. }) = heap.pop() {
        if settled[idx as usize] {
            continue;
        }
        settled[idx as usize] = true;
        expanded += 1;

        if idx == goal_idx {
            let mut nodes = Vec::new();
            let mut cur = goal_idx;
            loop {
                nodes.push(graph.node_id(cur));
                if cur == start_idx {
                    break;
                }
                cur = prev[cur as usize];
                debug_assert_ne!(cur, u32::MAX, "broken predecessor chain");
            }
            nodes.reverse();
            return Some(PathResult {
                cost,
                nodes,
                expanded,
            });
        }

        for edge in graph.edges_from_index(idx) {
            let t = edge.to_idx as usize;
            if settled[t] {
                continue;
            }
            let w = weight(idx, edge.to_idx, edge.payload);
            debug_assert!(w >= 0.0, "negative edge weight breaks Dijkstra/A*");
            let next = cost + w;
            if next < dist[t] {
                dist[t] = next;
                prev[t] = idx;
                heap.push(Frontier {
                    est: next + heuristic(edge.to_idx),
                    cost: next,
                    idx: edge.to_idx,
                });
            }
        }
    }
    None
}

/// Dijkstra shortest path (A* with a zero heuristic).
pub fn dijkstra<N, E>(
    graph: &DiGraph<N, E>,
    start: NodeId,
    goal: NodeId,
    weight: impl FnMut(u32, u32, &E) -> f64,
) -> Option<PathResult> {
    astar(graph, start, goal, weight, |_| 0.0)
}

/// Returns the dense indices reachable from `start` (BFS over out-edges),
/// including `start` itself.
pub fn reachable_from<N, E>(graph: &DiGraph<N, E>, start: NodeId) -> Vec<u32> {
    let Some(start_idx) = graph.node_index(start) else {
        return Vec::new();
    };
    let mut visited = vec![false; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    let mut out = Vec::new();
    visited[start_idx as usize] = true;
    queue.push_back(start_idx);
    while let Some(idx) = queue.pop_front() {
        out.push(idx);
        for e in graph.edges_from_index(idx) {
            if !visited[e.to_idx as usize] {
                visited[e.to_idx as usize] = true;
                queue.push_back(e.to_idx);
            }
        }
    }
    out
}

/// Assigns every node a component root via undirected reachability (edges
/// traversed both ways) and returns `roots[idx] = root_idx`.
///
/// Used as a graph-quality diagnostic: a healthy traffic graph has one
/// dominant weakly-connected component.
pub fn strongly_connected_roots<N, E>(graph: &DiGraph<N, E>) -> Vec<u32> {
    let n = graph.node_count();
    // Build undirected adjacency once.
    let mut undirected: Vec<Vec<u32>> = vec![Vec::new(); n];
    for idx in 0..n as u32 {
        for e in graph.edges_from_index(idx) {
            undirected[idx as usize].push(e.to_idx);
            undirected[e.to_idx as usize].push(idx);
        }
    }
    let mut roots = vec![u32::MAX; n];
    let mut stack = Vec::new();
    for seed in 0..n as u32 {
        if roots[seed as usize] != u32::MAX {
            continue;
        }
        stack.push(seed);
        roots[seed as usize] = seed;
        while let Some(idx) = stack.pop() {
            for &t in &undirected[idx as usize] {
                if roots[t as usize] == u32::MAX {
                    roots[t as usize] = seed;
                    stack.push(t);
                }
            }
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1 → 2 → 3 → 4 (cheap chain) and 1 → 4 (expensive shortcut).
    fn chain() -> DiGraph<(), f64> {
        let mut g = DiGraph::new();
        for id in 1..=4 {
            g.add_node(id, ());
        }
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(1, 4, 10.0);
        g
    }

    #[test]
    fn dijkstra_prefers_cheap_chain() {
        let g = chain();
        let r = dijkstra(&g, 1, 4, |_, _, w| *w).unwrap();
        assert_eq!(r.nodes, vec![1, 2, 3, 4]);
        assert_eq!(r.cost, 3.0);
    }

    #[test]
    fn dijkstra_uses_shortcut_when_cheaper() {
        let mut g = chain();
        g.add_edge(1, 4, 2.5);
        let r = dijkstra(&g, 1, 4, |_, _, w| *w).unwrap();
        assert_eq!(r.nodes, vec![1, 4]);
        assert_eq!(r.cost, 2.5);
    }

    #[test]
    fn unreachable_and_missing() {
        let mut g = chain();
        g.add_node(99, ());
        assert!(dijkstra(&g, 1, 99, |_, _, w| *w).is_none());
        assert!(dijkstra(&g, 1, 1000, |_, _, w| *w).is_none());
        assert!(dijkstra(&g, 4, 1, |_, _, w| *w).is_none(), "directed");
    }

    #[test]
    fn start_equals_goal() {
        let g = chain();
        let r = dijkstra(&g, 2, 2, |_, _, w| *w).unwrap();
        assert_eq!(r.nodes, vec![2]);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn astar_with_admissible_heuristic_finds_same_path() {
        // Grid-like graph: nodes 0..100 laid out on a 10x10 grid, id = y*10+x.
        let mut g = DiGraph::new();
        for id in 0..100u64 {
            g.add_node(id, ());
        }
        for y in 0..10u64 {
            for x in 0..10u64 {
                let id = y * 10 + x;
                if x + 1 < 10 {
                    g.add_edge(id, id + 1, 1.0);
                    g.add_edge(id + 1, id, 1.0);
                }
                if y + 1 < 10 {
                    g.add_edge(id, id + 10, 1.0);
                    g.add_edge(id + 10, id, 1.0);
                }
            }
        }
        let manhattan = |idx: u32| {
            let id = idx as u64;
            let (x, y) = (id % 10, id / 10);
            ((9 - x) + (9 - y)) as f64
        };
        let d = dijkstra(&g, 0, 99, |_, _, w| *w).unwrap();
        let a = astar(&g, 0, 99, |_, _, w| *w, manhattan).unwrap();
        assert_eq!(d.cost, a.cost);
        assert_eq!(a.cost, 18.0);
        assert!(
            a.expanded < d.expanded,
            "A* ({}) must expand fewer nodes than Dijkstra ({})",
            a.expanded,
            d.expanded
        );
    }

    #[test]
    fn reachability() {
        let g = chain();
        let r = reachable_from(&g, 2);
        assert_eq!(r.len(), 3, "2, 3, 4");
        assert!(reachable_from(&g, 1000).is_empty());
    }

    #[test]
    fn components() {
        let mut g = chain();
        g.add_node(50, ());
        g.add_node(51, ());
        g.add_edge(50, 51, 1.0);
        let roots = strongly_connected_roots(&g);
        // Nodes 1-4 share a root; 50-51 share a different one.
        let r14: std::collections::HashSet<u32> = (0..4).map(|i| roots[i as usize]).collect();
        assert_eq!(r14.len(), 1);
        assert_eq!(roots[4], roots[5]);
        assert_ne!(roots[0], roots[4]);
    }
}
