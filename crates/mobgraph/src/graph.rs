//! The directed graph structure.

use aggdb::fxhash::FxHashMap;

/// Stable external identifier of a node (a hex cell id in HABIT).
pub type NodeId = u64;

/// A borrowed view of an outgoing edge.
#[derive(Debug)]
pub struct EdgeRef<'a, E> {
    /// External id of the target node.
    pub to: NodeId,
    /// Dense index of the target node.
    pub to_idx: u32,
    /// Edge payload.
    pub payload: &'a E,
}

/// A directed graph with `u64` node ids, node payloads `N`, and edge
/// payloads `E`.
///
/// Nodes get dense internal indices in insertion order; all adjacency is
/// stored in flat `Vec`s so traversal does not chase hash buckets.
#[derive(Debug, Clone)]
pub struct DiGraph<N, E> {
    ids: Vec<NodeId>,
    payloads: Vec<N>,
    index: FxHashMap<NodeId, u32>,
    /// Out-adjacency: for each node, (target index, edge payload).
    out_edges: Vec<Vec<(u32, E)>>,
    edge_count: usize,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self {
            ids: Vec::new(),
            payloads: Vec::new(),
            index: FxHashMap::default(),
            out_edges: Vec::new(),
            edge_count: 0,
        }
    }

    /// Creates an empty graph with preallocated node capacity.
    pub fn with_capacity(nodes: usize) -> Self {
        Self {
            ids: Vec::with_capacity(nodes),
            payloads: Vec::with_capacity(nodes),
            index: FxHashMap::default(),
            out_edges: Vec::with_capacity(nodes),
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Inserts a node or updates its payload; returns the dense index.
    pub fn add_node(&mut self, id: NodeId, payload: N) -> u32 {
        match self.index.get(&id) {
            Some(&idx) => {
                self.payloads[idx as usize] = payload;
                idx
            }
            None => {
                let idx = self.ids.len() as u32;
                self.ids.push(id);
                self.payloads.push(payload);
                self.out_edges.push(Vec::new());
                self.index.insert(id, idx);
                idx
            }
        }
    }

    /// Dense index of a node id, if present.
    #[inline]
    pub fn node_index(&self, id: NodeId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// External id of a dense index.
    #[inline]
    pub fn node_id(&self, idx: u32) -> NodeId {
        self.ids[idx as usize]
    }

    /// Node payload by id.
    pub fn node(&self, id: NodeId) -> Option<&N> {
        self.node_index(id).map(|i| &self.payloads[i as usize])
    }

    /// Node payload by dense index.
    #[inline]
    pub fn node_by_index(&self, idx: u32) -> &N {
        &self.payloads[idx as usize]
    }

    /// Mutable node payload by id.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut N> {
        self.index
            .get(&id)
            .copied()
            .map(|i| &mut self.payloads[i as usize])
    }

    /// Iterates `(id, payload)` over all nodes in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.ids.iter().copied().zip(self.payloads.iter())
    }

    /// Adds an edge `from → to`. Both nodes must already exist. If the
    /// edge exists its payload is replaced. Returns `false` when either
    /// endpoint is missing.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, payload: E) -> bool {
        let (Some(f), Some(t)) = (self.node_index(from), self.node_index(to)) else {
            return false;
        };
        let list = &mut self.out_edges[f as usize];
        match list.iter_mut().find(|(idx, _)| *idx == t) {
            Some((_, existing)) => *existing = payload,
            None => {
                list.push((t, payload));
                self.edge_count += 1;
            }
        }
        true
    }

    /// Merges an edge `from → to`: if present, `merge(existing, payload)`
    /// runs; otherwise the edge is inserted.
    pub fn merge_edge<F: FnOnce(&mut E, E)>(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload: E,
        merge: F,
    ) -> bool {
        let (Some(f), Some(t)) = (self.node_index(from), self.node_index(to)) else {
            return false;
        };
        let list = &mut self.out_edges[f as usize];
        match list.iter_mut().find(|(idx, _)| *idx == t) {
            Some((_, existing)) => merge(existing, payload),
            None => {
                list.push((t, payload));
                self.edge_count += 1;
            }
        }
        true
    }

    /// Edge payload for `from → to`, if present.
    pub fn edge(&self, from: NodeId, to: NodeId) -> Option<&E> {
        let f = self.node_index(from)?;
        let t = self.node_index(to)?;
        self.out_edges[f as usize]
            .iter()
            .find(|(idx, _)| *idx == t)
            .map(|(_, e)| e)
    }

    /// Iterates outgoing edges of a node by dense index.
    pub fn edges_from_index(&self, idx: u32) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.out_edges[idx as usize].iter().map(|(t, e)| EdgeRef {
            to: self.ids[*t as usize],
            to_idx: *t,
            payload: e,
        })
    }

    /// Iterates outgoing edges of a node by external id.
    pub fn edges_from(&self, id: NodeId) -> Option<impl Iterator<Item = EdgeRef<'_, E>>> {
        self.node_index(id).map(|i| self.edges_from_index(i))
    }

    /// Out-degree of a node id (0 when absent).
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.node_index(id)
            .map_or(0, |i| self.out_edges[i as usize].len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DiGraph<&'static str, f64> {
        let mut g = DiGraph::new();
        g.add_node(1, "a");
        g.add_node(2, "b");
        g.add_node(3, "c");
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 2.0);
        g.add_edge(1, 3, 5.0);
        g
    }

    #[test]
    fn construction_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.out_degree(99), 0);
    }

    #[test]
    fn upsert_node_keeps_index() {
        let mut g = triangle();
        let idx = g.node_index(2).unwrap();
        let idx2 = g.add_node(2, "b2");
        assert_eq!(idx, idx2);
        assert_eq!(g.node(2), Some(&"b2"));
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn edge_replace_and_merge() {
        let mut g = triangle();
        g.add_edge(1, 2, 9.0);
        assert_eq!(g.edge_count(), 3, "replace does not duplicate");
        assert_eq!(g.edge(1, 2), Some(&9.0));
        g.merge_edge(1, 2, 1.0, |e, add| *e += add);
        assert_eq!(g.edge(1, 2), Some(&10.0));
        g.merge_edge(3, 1, 7.0, |e, add| *e += add);
        assert_eq!(g.edge(3, 1), Some(&7.0));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn missing_endpoints_rejected() {
        let mut g = triangle();
        assert!(!g.add_edge(1, 99, 1.0));
        assert!(!g.merge_edge(99, 1, 1.0, |_, _| {}));
        assert_eq!(g.edge_count(), 3);
        assert!(g.edge(2, 1).is_none(), "directed: reverse edge absent");
    }

    #[test]
    fn iteration() {
        let g = triangle();
        let ids: Vec<u64> = g.nodes().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        let targets: Vec<u64> = g.edges_from(1).unwrap().map(|e| e.to).collect();
        assert_eq!(targets, vec![2, 3]);
        assert!(g.edges_from(42).is_none());
    }

    #[test]
    fn node_mut() {
        let mut g = triangle();
        *g.node_mut(1).unwrap() = "z";
        assert_eq!(g.node(1), Some(&"z"));
        assert!(g.node_mut(42).is_none());
    }
}
