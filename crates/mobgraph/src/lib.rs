//! # mobgraph — directed weighted graphs for mobility networks
//!
//! The paper assembles its transition statistics into a NetworkX DiGraph
//! and runs A* over it. This crate is the from-scratch substitute:
//!
//! * [`DiGraph`] — a directed graph keyed by stable `u64` ids (hex cells
//!   in HABIT, point ids in the GTI baseline) with arbitrary node and edge
//!   payloads;
//! * [`CsrGraph`] — the frozen CSR serving form of a [`DiGraph`]:
//!   contiguous `offsets`/`targets`/`weights` arrays in canonical node
//!   order, built once and routed over allocation-free;
//! * [`search`] — Dijkstra and A* with caller-supplied weight and
//!   heuristic functions (a naive per-query backend over [`DiGraph`] and
//!   an arena backend over [`CsrGraph`], pinned byte-identical), plus BFS
//!   reachability and connected components;
//! * [`spatial::NearestIndex`] — bucket-grid nearest-neighbor lookup used
//!   to snap gap endpoints onto graph nodes;
//! * [`codec`] — a compact binary encoding for graphs, giving the
//!   storage-size numbers of the paper's Table 2.
//!
//! Internally nodes are dense `u32` indices so the search frontier works
//! on flat vectors; the id ↔ index mapping uses an FxHash map (shared
//! with `aggdb`), following the perf-book guidance for integer keys.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod codec;
pub mod csr;
pub mod graph;
pub mod search;
pub mod spatial;

pub use codec::Codec;
pub use csr::CsrGraph;
pub use graph::{DiGraph, EdgeRef, NodeId};
pub use search::{
    astar, astar_csr, astar_csr_baked, dijkstra, dijkstra_csr, reachable_from,
    strongly_connected_roots, BakedEdge, PathResult, SearchArena,
};
pub use spatial::NearestIndex;
