//! # mobgraph — directed weighted graphs for mobility networks
//!
//! The paper assembles its transition statistics into a NetworkX DiGraph
//! and runs A* over it. This crate is the from-scratch substitute:
//!
//! * [`DiGraph`] — a directed graph keyed by stable `u64` ids (hex cells
//!   in HABIT, point ids in the GTI baseline) with arbitrary node and edge
//!   payloads;
//! * [`search`] — Dijkstra and A* with caller-supplied weight and
//!   heuristic functions, plus BFS reachability and connected components;
//! * [`spatial::NearestIndex`] — bucket-grid nearest-neighbor lookup used
//!   to snap gap endpoints onto graph nodes;
//! * [`codec`] — a compact binary encoding for graphs, giving the
//!   storage-size numbers of the paper's Table 2.
//!
//! Internally nodes are dense `u32` indices so the search frontier works
//! on flat vectors; the id ↔ index mapping uses an FxHash map (shared
//! with `aggdb`), following the perf-book guidance for integer keys.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod codec;
pub mod graph;
pub mod search;
pub mod spatial;

pub use codec::Codec;
pub use graph::{DiGraph, EdgeRef, NodeId};
pub use search::{astar, dijkstra, reachable_from, strongly_connected_roots, PathResult};
pub use spatial::NearestIndex;
