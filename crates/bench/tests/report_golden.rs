//! Round-trip and golden-file tests for the experiment-report subsystem.
//!
//! The committed `reports/*.json` files are the source of truth for the
//! committed `EXPERIMENTS.md`: these tests pin the contract that
//! (a) a report survives JSON serialize → deserialize with an identical
//! markdown render, and (b) re-rendering `EXPERIMENTS.md` from the
//! checked-in JSON reproduces the committed file byte-identically —
//! the same check CI runs via `all_experiments --render-only`.

use eval::report::{render_experiments_md, ExperimentReport};
use habit_bench::reports::{self, EXPERIMENT_ORDER};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/bench/ -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

fn committed_reports() -> Vec<ExperimentReport> {
    let dir = repo_root().join("reports");
    EXPERIMENT_ORDER
        .iter()
        .map(|id| {
            let path = dir.join(format!("{id}.json"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing baseline {}: {e}", path.display()));
            ExperimentReport::from_json(&text)
                .unwrap_or_else(|e| panic!("unparsable baseline {id}: {e}"))
        })
        .collect()
}

#[test]
fn committed_baselines_cover_every_experiment() {
    let reports = committed_reports();
    assert_eq!(reports.len(), EXPERIMENT_ORDER.len());
    for (report, id) in reports.iter().zip(EXPERIMENT_ORDER) {
        assert_eq!(report.id, id, "file stem and embedded id must agree");
        assert!(!report.paper_ref.is_empty(), "{id}: paper_ref");
        assert!(!report.paper_expected.is_empty(), "{id}: paper_expected");
        assert!(!report.reproduction.is_empty(), "{id}: reproduction");
        assert!(!report.sections.is_empty(), "{id}: sections");
        assert!(
            report.provenance.wall_clock_s > 0.0,
            "{id}: wall clock provenance"
        );
    }
}

#[test]
fn committed_json_round_trips_to_identical_markdown() {
    for report in committed_reports() {
        let json = report.to_json();
        let back = ExperimentReport::from_json(&json)
            .unwrap_or_else(|e| panic!("{}: re-parse failed: {e}", report.id));
        assert_eq!(
            back, report,
            "{}: JSON round trip must be lossless",
            report.id
        );
        assert_eq!(
            back.to_markdown(),
            report.to_markdown(),
            "{}: markdown render must survive the round trip",
            report.id
        );
        // And serialization itself is a fixpoint: the committed bytes
        // are exactly what to_json would write again.
        let committed = std::fs::read_to_string(
            repo_root()
                .join("reports")
                .join(format!("{}.json", report.id)),
        )
        .expect("baseline readable");
        assert_eq!(json, committed, "{}: to_json must be a fixpoint", report.id);
    }
}

#[test]
fn experiments_md_regenerates_byte_identical() {
    let reports = committed_reports();
    let refs: Vec<&ExperimentReport> = reports.iter().collect();
    let regenerated = render_experiments_md(&refs);
    let committed_path = repo_root().join("EXPERIMENTS.md");
    let committed = std::fs::read_to_string(&committed_path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", committed_path.display()));
    assert_eq!(
        regenerated, committed,
        "EXPERIMENTS.md is stale — regenerate with `cargo run -p habit-bench --release \
         --bin all_experiments -- --render-only --out-dir reports/`"
    );
}

#[test]
fn readme_regenerates_byte_identical() {
    let committed_path = repo_root().join("README.md");
    let committed = std::fs::read_to_string(&committed_path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", committed_path.display()));
    assert_eq!(
        habit_bench::docs::render_readme(),
        committed,
        "README.md is stale — regenerate with `cargo run -p habit-bench --release \
         --bin gen_readme`"
    );
}

#[test]
fn smoke_scale_report_round_trips() {
    // A live (non-golden) end-to-end check at miniature scale: build one
    // real report, persist it, reload it, and compare renders.
    std::env::set_var("HABIT_EVAL_SCALE", "0.05");
    let report = reports::table1_report(7).expect("table1 builds");
    std::env::remove_var("HABIT_EVAL_SCALE");
    let dir = std::env::temp_dir().join(format!("habit-report-{}", std::process::id()));
    let path = habit_bench::write_report_json(&report, &dir).expect("write JSON");
    let back = ExperimentReport::from_json(&std::fs::read_to_string(&path).expect("read back"))
        .expect("parse back");
    assert_eq!(back, report);
    assert_eq!(back.to_markdown(), report.to_markdown());
    std::fs::remove_dir_all(&dir).ok();
}
