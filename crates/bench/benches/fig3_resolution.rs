//! Criterion counterpart of **Figure 3**: imputation query cost across
//! H3 resolutions (the accuracy side lives in the `fig3` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eval::experiments::Bench;
use eval::methods::Imputer;
use habit_core::HabitConfig;
use std::hint::black_box;

fn bench_resolutions(c: &mut Criterion) {
    std::env::set_var("HABIT_EVAL_SCALE", "0.3");
    let bench = Bench::kiel(42);
    let cases = bench.gap_cases(3600, 42);
    assert!(!cases.is_empty());

    let mut group = c.benchmark_group("fig3_impute_by_resolution");
    for res in [7u8, 8, 9, 10] {
        let imputer =
            Imputer::fit_habit(&bench.train, HabitConfig::with_r_t(res, 100.0)).expect("fit habit");
        group.bench_with_input(BenchmarkId::new("impute", res), &imputer, |b, imp| {
            let mut i = 0usize;
            b.iter(|| {
                let case = &cases[i % cases.len()];
                i += 1;
                black_box(imp.impute(&case.query))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_resolutions
}
criterion_main!(benches);
