//! Criterion counterpart of **Table 2**: model build time and serialized
//! size for HABIT across resolutions (size is printed; time is measured).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eval::experiments::Bench;
use habit_core::{HabitConfig, HabitModel};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    std::env::set_var("HABIT_EVAL_SCALE", "0.3");
    let bench = Bench::kiel(42);
    let table = ais::trips_to_table(&bench.train);

    let mut group = c.benchmark_group("table2_model_build");
    for res in [7u8, 8, 9, 10] {
        let config = HabitConfig::with_r_t(res, 100.0);
        // Report the storage size once per resolution.
        if let Ok(model) = HabitModel::fit(&table, config) {
            eprintln!(
                "HABIT r={res}: {} nodes, {} edges, {} bytes serialized",
                model.node_count(),
                model.edge_count(),
                model.storage_bytes()
            );
        }
        group.bench_with_input(BenchmarkId::new("fit", res), &config, |b, cfg| {
            b.iter(|| black_box(HabitModel::fit(&table, *cfg).expect("fit")))
        });
    }
    group.finish();

    let mut ser_group = c.benchmark_group("table2_serialize");
    let model = HabitModel::fit(&table, HabitConfig::with_r_t(9, 100.0)).expect("fit");
    ser_group.bench_function("to_bytes_r9", |b| b.iter(|| black_box(model.to_bytes())));
    let bytes = model.to_bytes();
    ser_group.bench_function("from_bytes_r9", |b| {
        b.iter(|| black_box(HabitModel::from_bytes(&bytes).expect("decode")))
    });
    ser_group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build
}
criterion_main!(benches);
