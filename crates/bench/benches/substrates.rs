//! Micro-benchmarks of the substrate crates: hexgrid operations, aggdb
//! group-by/HLL, DTW. These back the performance claims in DESIGN.md and
//! catch regressions in the hot paths underlying every experiment.

use aggdb::{Agg, AggSpec, Column, HyperLogLog, Table};
use criterion::{criterion_group, criterion_main, Criterion};
use eval::dtw::resampled_dtw_m;
use geo_kernel::GeoPoint;
use hexgrid::HexGrid;
use std::hint::black_box;

fn bench_hexgrid(c: &mut Criterion) {
    let grid = HexGrid::new();
    let points: Vec<GeoPoint> = (0..1000)
        .map(|i| {
            GeoPoint::new(
                10.0 + (i % 100) as f64 * 0.01,
                55.0 + (i / 100) as f64 * 0.01,
            )
        })
        .collect();

    c.bench_function("hexgrid_latlng_to_cell_r9_x1000", |b| {
        b.iter(|| {
            for p in &points {
                black_box(grid.cell(p, 9).expect("valid"));
            }
        })
    });

    let a = grid.cell(&points[0], 9).expect("valid");
    let z = grid.cell(&points[999], 9).expect("valid");
    c.bench_function("hexgrid_grid_distance", |b| {
        b.iter(|| black_box(grid.grid_distance(a, z).expect("same res")))
    });
    c.bench_function("hexgrid_disk_k3", |b| {
        b.iter(|| black_box(hexgrid::ops::disk(a, 3).expect("ok")))
    });
}

fn bench_aggdb(c: &mut Criterion) {
    // 100k-row group-by with the paper's aggregate set.
    let n = 100_000usize;
    let cells: Vec<u64> = (0..n).map(|i| (i % 500) as u64).collect();
    let vessels: Vec<u64> = (0..n).map(|i| (i % 37) as u64).collect();
    let lons: Vec<f64> = (0..n).map(|i| 10.0 + (i % 97) as f64 * 0.001).collect();
    let table = Table::from_columns(vec![
        ("cl", Column::from_u64(cells)),
        ("vessel", Column::from_u64(vessels)),
        ("lon", Column::from_f64(lons)),
    ])
    .expect("columns");

    c.bench_function("aggdb_groupby_100k_500groups", |b| {
        b.iter(|| {
            black_box(
                table
                    .group_by(
                        &["cl"],
                        &[
                            AggSpec::new("", Agg::Count, "cnt"),
                            AggSpec::new("vessel", Agg::CountDistinctApprox, "vessels"),
                            AggSpec::new("lon", Agg::Median, "mlon"),
                        ],
                    )
                    .expect("group"),
            )
        })
    });

    c.bench_function("hll_insert_100k", |b| {
        b.iter(|| {
            let mut h = HyperLogLog::default_precision();
            for v in 0..100_000u64 {
                h.insert_u64(v);
            }
            black_box(h.count())
        })
    });

    // Window lag over interleaved trips — the single-stable-sort path
    // of `aggdb::window` (one sort shared across lag columns).
    let trips: Vec<u64> = (0..n).map(|i| (i % 200) as u64).collect();
    let ts: Vec<i64> = (0..n).map(|i| (i / 200) as i64 * 60).collect();
    let lag_cells: Vec<u64> = (0..n).map(|i| (i % 500) as u64).collect();
    let lag_table = Table::from_columns(vec![
        ("trip_id", Column::from_u64(trips)),
        ("ts", Column::from_i64(ts)),
        ("cl", Column::from_u64(lag_cells)),
    ])
    .expect("columns");
    c.bench_function("window_lag_100k_200trips", |b| {
        b.iter(|| {
            black_box(aggdb::window::lag_over(&lag_table, &["trip_id"], "ts", "cl").expect("lag"))
        })
    });

    // Fit-state persistence: canonical encode + decode of the partial
    // group-by (the payload of a `fit --save-state` blob).
    let mut partial = table
        .group_by_partial(
            &["cl"],
            &[
                AggSpec::new("", Agg::Count, "cnt"),
                AggSpec::new("vessel", Agg::CountDistinctApprox, "vessels"),
                AggSpec::new("lon", Agg::Median, "mlon"),
            ],
        )
        .expect("partial");
    partial.canonicalize();
    c.bench_function("partial_groupby_codec_500groups", |b| {
        b.iter(|| {
            let mut bytes = Vec::new();
            partial.encode_into(&mut bytes);
            let mut buf = bytes.as_slice();
            black_box(aggdb::PartialGroupBy::decode_from(&mut buf).expect("decode"))
        })
    });
}

fn bench_dtw(c: &mut Criterion) {
    let a: Vec<GeoPoint> = (0..120)
        .map(|i| GeoPoint::new(10.0 + i as f64 * 0.002, 56.0))
        .collect();
    let b_path: Vec<GeoPoint> = (0..120)
        .map(|i| GeoPoint::new(10.0 + i as f64 * 0.002, 56.001))
        .collect();
    c.bench_function("dtw_resampled_60min_gap", |bch| {
        bch.iter(|| black_box(resampled_dtw_m(&a, &b_path).expect("non-empty")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hexgrid, bench_aggdb, bench_dtw
}
criterion_main!(benches);
