//! Criterion counterpart of **Table 4**: per-query imputation latency of
//! HABIT vs GTI vs SLI on the KIEL corridor.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eval::experiments::Bench;
use eval::methods::Imputer;
use habit_core::HabitConfig;
use std::hint::black_box;

fn bench_latency(c: &mut Criterion) {
    std::env::set_var("HABIT_EVAL_SCALE", "0.3");
    let bench = Bench::kiel(42);
    let cases = bench.gap_cases(3600, 42);
    assert!(!cases.is_empty(), "need gap cases");

    let habit9 = Imputer::fit_habit(&bench.train, HabitConfig::with_r_t(9, 100.0)).expect("fit");
    let habit10 = Imputer::fit_habit(&bench.train, HabitConfig::with_r_t(10, 100.0)).expect("fit");
    let gti = Imputer::fit_gti(&bench.train, baselines::GtiConfig::default()).expect("fit");
    let sli = Imputer::sli();

    let mut group = c.benchmark_group("table4_query_latency");
    for (name, imputer) in [
        ("habit_r9_t100", &habit9),
        ("habit_r10_t100", &habit10),
        ("gti_rm250_rd1e-4", &gti),
        ("sli", &sli),
    ] {
        group.bench_function(name, |b| {
            let mut i = 0usize;
            b.iter_batched(
                || {
                    let case = &cases[i % cases.len()];
                    i += 1;
                    case.query
                },
                |query| black_box(imputer.impute(&query)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_latency
}
criterion_main!(benches);
