//! Criterion counterpart of the **route_bench** experiment: per-stage
//! micro-benchmarks of the route-engine hot path (CSR + pooled arena A*,
//! in-place RDP, end-to-end `impute`) against the retained naive
//! reference path on the KIEL corridor.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eval::experiments::Bench;
use geo_kernel::{
    rdp_indices_reference, rdp_timed_in_place, resample_timed_max_spacing, GeoPoint, RdpScratch,
    TimedPoint,
};
use habit_core::{HabitConfig, HabitModel};
use std::hint::black_box;

fn bench_route_stages(c: &mut Criterion) {
    std::env::set_var("HABIT_EVAL_SCALE", "0.3");
    let bench = Bench::kiel(42);
    let cases = bench.gap_cases(3600, 42);
    assert!(!cases.is_empty(), "need gap cases");

    let config = HabitConfig::with_r_t(9, 100.0);
    let train_table = ais::trips_to_table(&bench.train);
    let model = HabitModel::fit(&train_table, config).expect("fit");

    // Snapped endpoint cells: stage benches isolate the search itself.
    let pairs: Vec<_> = cases
        .iter()
        .filter_map(|case| {
            let (s, _) = model.snap(&case.query.start.pos).ok()?;
            let (g, _) = model.snap(&case.query.end.pos).ok()?;
            Some((s, g))
        })
        .collect();
    assert!(!pairs.is_empty(), "need snappable cell pairs");

    let mut group = c.benchmark_group("route_search");
    group.bench_function("naive_digraph", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (s, g) = pairs[i % pairs.len()];
            i += 1;
            black_box(model.route_between_naive(s, g).ok())
        })
    });
    group.bench_function("csr_arena", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (s, g) = pairs[i % pairs.len()];
            i += 1;
            black_box(model.route_between(s, g).ok())
        })
    });
    group.finish();

    // Dense, realistic polylines for the simplification stage.
    let dense: Vec<Vec<TimedPoint>> = cases
        .iter()
        .map(|case| resample_timed_max_spacing(&case.truth, 25.0))
        .filter(|p| p.len() >= 3)
        .collect();
    assert!(!dense.is_empty(), "need dense polylines");
    let tol_m = config.rdp_tolerance_m;

    let mut group = c.benchmark_group("rdp_simplify");
    group.bench_function("recursive_reference", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let path = &dense[i % dense.len()];
            i += 1;
            let positions: Vec<GeoPoint> = path.iter().map(|p| p.pos).collect();
            black_box(rdp_indices_reference(&positions, tol_m))
        })
    });
    group.bench_function("in_place_kernel", |b| {
        let mut i = 0usize;
        let mut scratch = RdpScratch::new();
        b.iter_batched(
            || {
                let path = dense[i % dense.len()].clone();
                i += 1;
                path
            },
            |mut path| {
                rdp_timed_in_place(&mut path, tol_m, &mut scratch);
                black_box(path)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();

    let mut group = c.benchmark_group("impute_end_to_end");
    group.bench_function("naive", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let case = &cases[i % cases.len()];
            i += 1;
            black_box(model.impute_naive(&case.query).ok())
        })
    });
    group.bench_function("hot_path", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let case = &cases[i % cases.len()];
            i += 1;
            black_box(model.impute(&case.query).ok())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_route_stages
}
criterion_main!(benches);
