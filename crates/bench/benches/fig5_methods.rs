//! Criterion counterpart of **Figure 5**: per-query cost of each method
//! (HABIT, GTI, SLI, PaLMTO) on the same gap workload — the latency side
//! of the sensitivity analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use eval::experiments::Bench;
use eval::methods::Imputer;
use habit_core::HabitConfig;
use std::hint::black_box;

fn bench_methods(c: &mut Criterion) {
    std::env::set_var("HABIT_EVAL_SCALE", "0.3");
    let bench = Bench::kiel(42);
    let cases = bench.gap_cases(3600, 42);
    assert!(!cases.is_empty());

    let methods = vec![
        Imputer::fit_habit(&bench.train, HabitConfig::with_r_t(9, 100.0)).expect("habit"),
        Imputer::fit_gti(&bench.train, baselines::GtiConfig::default()).expect("gti"),
        Imputer::fit_palmto(&bench.train, baselines::PalmtoConfig::default()).expect("palmto"),
        Imputer::sli(),
    ];

    let mut group = c.benchmark_group("fig5_method_latency");
    for m in &methods {
        group.bench_function(m.label(), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let case = &cases[i % cases.len()];
                i += 1;
                black_box(m.impute(&case.query))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_methods
}
criterion_main!(benches);
