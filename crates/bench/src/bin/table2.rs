//! Regenerates **Table 2** — framework storage size (MB) on KIEL & SAR.
//!
//! Paper shape to verify: HABIT sizes grow with resolution but stay tiny
//! (0.06–57 MB); GTI models are orders of magnitude larger and explode
//! with rd.

use eval::experiments::table2;
use eval::report::{fmt_mb, MarkdownTable};

fn main() {
    println!("# Table 2 — Framework storage size (MB)\n");
    let kiel = habit_bench::kiel();
    let sar = habit_bench::sar();
    let rows = table2(&kiel, &sar);
    let mut table = MarkdownTable::new(vec!["Method", "Configuration", "KIEL", "SAR"]);
    for r in rows {
        table.row(vec![
            r.method.to_string(),
            r.config,
            fmt_mb(r.kiel_bytes),
            fmt_mb(r.sar_bytes),
        ]);
    }
    print!("{}", table.render());
}
