//! Regenerates **Table 2** — framework storage size (MB) on KIEL & SAR.
//!
//! Paper shape to verify: HABIT sizes grow with resolution but stay tiny
//! (0.06–57 MB); GTI models are orders of magnitude larger and explode
//! with rd.

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| {
        let kiel = habit_bench::kiel();
        let sar = habit_bench::sar();
        habit_bench::reports::table2_report(&kiel, &sar, habit_bench::SEED)
    })
}
