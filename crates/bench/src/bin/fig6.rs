//! Regenerates **Figure 6** — indicative imputation results: original
//! path vs HABIT vs GTI vs SLI, rendered as ASCII maps (symbols: o =
//! original, H = HABIT, G = GTI, S = SLI) plus machine-readable
//! polylines, and a GeoJSON `FeatureCollection` written next to the
//! working directory (`fig6.geojson`) for GIS inspection.

use geo_kernel::geojson::{feature_collection, linestring_feature, PropValue};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match habit_bench::BinArgs::parse_env() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e} (supported: --out-dir DIR)");
            return ExitCode::from(2);
        }
    };
    if args.render_only || args.md_out.is_some() {
        eprintln!(
            "error: --render-only/--md-out are `all_experiments` flags (supported here: --out-dir DIR)"
        );
        return ExitCode::from(2);
    }
    let kiel = habit_bench::kiel();
    let (report, cases) = match habit_bench::reports::fig6_report(&kiel, habit_bench::SEED, 3) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.to_markdown());
    if let Some(dir) = &args.out_dir {
        match habit_bench::write_report_json(&report, dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write JSON baseline: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // GIS side artifact: every truth/imputed polyline as a LineString.
    let mut features: Vec<String> = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        let mut series: Vec<(&str, &[geo_kernel::GeoPoint])> =
            vec![("original", case.truth.as_slice())];
        for (label, path) in &case.paths {
            series.push((label.as_str(), path.as_slice()));
        }
        for (label, path) in &series {
            features.push(linestring_feature(
                path,
                &[
                    ("example", PropValue::Int(i as i64 + 1)),
                    ("trip", PropValue::Int(case.trip_id as i64)),
                    ("method", (*label).into()),
                ],
            ));
        }
    }
    let doc = feature_collection(features);
    match std::fs::write("fig6.geojson", &doc) {
        Ok(()) => eprintln!("wrote fig6.geojson ({} bytes)", doc.len()),
        Err(e) => eprintln!("could not write fig6.geojson: {e}"),
    }
    ExitCode::SUCCESS
}
