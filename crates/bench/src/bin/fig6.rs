//! Regenerates **Figure 6** — indicative imputation results: original
//! path vs HABIT vs GTI vs SLI, rendered as ASCII maps (symbols: o =
//! original, H = HABIT, G = GTI, S = SLI) plus machine-readable CSV
//! polylines on stdout, and a GeoJSON `FeatureCollection` written next
//! to the working directory (`fig6.geojson`) for GIS inspection.

use eval::experiments::fig6;
use geo_kernel::geojson::{feature_collection, linestring_feature, PropValue};
use habit_bench::ascii_map;

fn main() {
    println!("# Figure 6 — Indicative imputation results [KIEL]\n");
    let bench = habit_bench::kiel();
    let cases = fig6(&bench, habit_bench::SEED, 3);
    let mut features: Vec<String> = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        println!("## Example {} (trip {})\n", i + 1, case.trip_id);
        let mut series: Vec<(&str, &[geo_kernel::GeoPoint])> =
            vec![("original", case.truth.as_slice())];
        for (label, path) in &case.paths {
            series.push((label.as_str(), path.as_slice()));
        }
        println!("```\n{}```", ascii_map(&series, 72, 20));
        println!("\npolylines (lon lat per vertex):\n");
        for (label, path) in &series {
            let coords: Vec<String> = path
                .iter()
                .map(|p| format!("{:.5},{:.5}", p.lon, p.lat))
                .collect();
            println!("{label}: {}", coords.join(" "));
            features.push(linestring_feature(
                path,
                &[
                    ("example", PropValue::Int(i as i64 + 1)),
                    ("trip", PropValue::Int(case.trip_id as i64)),
                    ("method", (*label).into()),
                ],
            ));
        }
        println!();
    }
    let doc = feature_collection(features);
    match std::fs::write("fig6.geojson", &doc) {
        Ok(()) => eprintln!("wrote fig6.geojson ({} bytes)", doc.len()),
        Err(e) => eprintln!("could not write fig6.geojson: {e}"),
    }
}
