//! CI perf tracking: compare freshly measured experiment wall clocks
//! against a committed baseline and fail on regressions.
//!
//! ```text
//! perf_check --baseline reports/smoke --fresh $TMP/smoke-reports [--threshold 2.0]
//! ```
//!
//! Both directories must hold `habit-experiment-report/v1` JSON
//! documents (one per canonical experiment id). An experiment regresses
//! when its fresh `provenance.wall_clock_s` exceeds `threshold ×` the
//! baseline **and** the absolute growth is above a small noise floor
//! (50 ms) — smoke-scale experiments finish in milliseconds, where pure
//! scheduler noise can exceed any ratio.
//!
//! Exit codes follow the `habit` convention: 0 no regression, 1 at
//! least one regression (or unreadable reports), 2 usage error.

use eval::ExperimentReport;
use habit_bench::reports::EXPERIMENT_ORDER;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Absolute wall-clock growth below which a ratio breach is noise, s.
const NOISE_FLOOR_S: f64 = 0.05;

struct CheckArgs {
    baseline: PathBuf,
    fresh: PathBuf,
    threshold: f64,
}

fn parse_args() -> Result<CheckArgs, String> {
    let mut baseline = None;
    let mut fresh = None;
    let mut threshold = 2.0f64;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    iter.next().ok_or("--baseline needs a directory")?,
                ))
            }
            "--fresh" => {
                fresh = Some(PathBuf::from(
                    iter.next().ok_or("--fresh needs a directory")?,
                ))
            }
            "--threshold" => {
                threshold = iter
                    .next()
                    .ok_or("--threshold needs a number")?
                    .parse()
                    .map_err(|_| "--threshold needs a number".to_string())?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(CheckArgs {
        baseline: baseline.ok_or("--baseline DIR is required")?,
        fresh: fresh.ok_or("--fresh DIR is required")?,
        threshold,
    })
}

fn load(dir: &Path, id: &str) -> Result<ExperimentReport, String> {
    let path = dir.join(format!("{id}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("could not read {}: {e}", path.display()))?;
    ExperimentReport::from_json(&text).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e} (usage: perf_check --baseline DIR --fresh DIR [--threshold X])");
            return ExitCode::from(2);
        }
    };

    let mut regressions = 0usize;
    println!("experiment           baseline_s    fresh_s    ratio   verdict");
    for id in EXPERIMENT_ORDER {
        let (base, fresh) = match (load(&args.baseline, id), load(&args.fresh, id)) {
            (Ok(b), Ok(f)) => (b, f),
            (b, f) => {
                for err in [b.err(), f.err()].into_iter().flatten() {
                    eprintln!("error: {err}");
                }
                regressions += 1;
                continue;
            }
        };
        let (b_s, f_s) = (base.provenance.wall_clock_s, fresh.provenance.wall_clock_s);
        let ratio = f_s / b_s.max(1e-9);
        let regressed = ratio > args.threshold && (f_s - b_s) > NOISE_FLOOR_S;
        if regressed {
            regressions += 1;
        }
        println!(
            "{id:20} {b_s:10.3} {f_s:10.3} {ratio:8.2}   {}",
            if regressed { "REGRESSED" } else { "ok" }
        );
    }

    if regressions > 0 {
        eprintln!(
            "error: {regressions} experiment(s) regressed beyond {}x wall clock",
            args.threshold
        );
        return ExitCode::FAILURE;
    }
    println!(
        "perf ok: no experiment beyond {}x baseline wall clock",
        args.threshold
    );
    ExitCode::SUCCESS
}
