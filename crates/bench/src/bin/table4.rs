//! Regenerates **Table 4** — average and maximum query latency (seconds)
//! for HABIT (r, t) and GTI (rm, rd) configurations on KIEL and SAR.
//!
//! Paper shape to verify: HABIT stays well under GTI at every
//! configuration; latency grows with resolution (HABIT) and rd (GTI);
//! SAR is slower than KIEL for GTI.

use eval::experiments::table4;
use eval::report::{fmt_s, MarkdownTable};

fn main() {
    println!("# Table 4 — Query latency (seconds)\n");
    for bench in [habit_bench::kiel(), habit_bench::sar()] {
        let rows = table4(&bench, habit_bench::SEED);
        println!(
            "## {} ({} gaps)\n",
            bench.name,
            rows.first().map_or(0, |r| r.gaps)
        );
        let mut table = MarkdownTable::new(vec!["Method", "Avg", "Max"]);
        for r in rows {
            table.row(vec![r.method, fmt_s(r.avg_s), fmt_s(r.max_s)]);
        }
        println!("{}", table.render());
    }
}
