//! Regenerates **Table 4** — average and maximum query latency (seconds)
//! for HABIT (r, t) and GTI (rm, rd) configurations on KIEL and SAR.
//!
//! Paper shape to verify: HABIT stays well under GTI at every
//! configuration; latency grows with resolution (HABIT) and rd (GTI);
//! SAR is slower than KIEL for GTI.

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| {
        let kiel = habit_bench::kiel();
        let sar = habit_bench::sar();
        habit_bench::reports::table4_report(&kiel, &sar, habit_bench::SEED)
    })
}
