//! Regenerates **Figure 7** — HABIT accuracy (DTW) for gaps of 1, 2 and
//! 4 hours, configurations (r|t) ∈ {9|100, 9|250, 10|100, 10|250}, on
//! KIEL and SAR.
//!
//! Paper shape to verify: error grows with gap duration but less than
//! proportionally; the config ranking stays consistent; SAR shows
//! pronounced outliers (max column).

use eval::experiments::fig7;
use eval::report::{fmt_m, MarkdownTable};

fn main() {
    println!("# Figure 7 — HABIT DTW vs gap duration [KIEL & SAR]\n");
    for bench in [habit_bench::kiel(), habit_bench::sar()] {
        println!("## {}\n", bench.name);
        let rows = fig7(&bench, habit_bench::SEED);
        let mut table = MarkdownTable::new(vec![
            "Config (r|t)",
            "Gap (h)",
            "Median (m)",
            "P25 (m)",
            "P75 (m)",
            "Max (m)",
            "Imputed",
        ]);
        for r in rows {
            table.row(vec![
                r.config,
                format!("{:.0}", r.gap_hours),
                fmt_m(r.median_dtw_m),
                fmt_m(r.p25_m),
                fmt_m(r.p75_m),
                fmt_m(r.max_m),
                r.imputed.to_string(),
            ]);
        }
        println!("{}", table.render());
    }
}
