//! Regenerates **Figure 7** — HABIT accuracy (DTW) for gaps of 1, 2 and
//! 4 hours, configurations (r|t) ∈ {9|100, 9|250, 10|100, 10|250}, on
//! KIEL and SAR.
//!
//! Paper shape to verify: error grows with gap duration but less than
//! proportionally; the config ranking stays consistent; SAR shows
//! pronounced outliers (max column).

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| {
        let kiel = habit_bench::kiel();
        let sar = habit_bench::sar();
        habit_bench::reports::fig7_report(&kiel, &sar, habit_bench::SEED)
    })
}
