//! Regenerates **Table 3** — effect of simplification on the imputed
//! trajectories (DAN): position count, average/max rate of turn, turns
//! over 45°, for tolerances t ∈ {0, 100, 250, 500, 1000} at r ∈ {9, 10}.
//!
//! Paper shape to verify: larger t shrinks position counts drastically
//! and nearly eliminates >45° turns; t in 100–250 is the sweet spot.

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| {
        let dan = habit_bench::dan();
        habit_bench::reports::table3_report(&dan, habit_bench::SEED)
    })
}
