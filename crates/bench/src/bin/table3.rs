//! Regenerates **Table 3** — effect of simplification on the imputed
//! trajectories (DAN): position count, average/max rate of turn, turns
//! over 45°, for tolerances t ∈ {0, 100, 250, 500, 1000} at r ∈ {9, 10}.
//!
//! Paper shape to verify: larger t shrinks position counts drastically
//! and nearly eliminates >45° turns; t in 100–250 is the sweet spot.

use eval::experiments::table3;
use eval::report::MarkdownTable;

fn main() {
    println!("# Table 3 — Effect of simplification on imputed trajectories [DAN]\n");
    let bench = habit_bench::dan();
    let (rows, original) = table3(&bench, habit_bench::SEED);
    let mut table = MarkdownTable::new(vec!["r", "t", "cnt", "Avg rot", "Max rot", ">45deg"]);
    for r in rows {
        table.row(vec![
            r.resolution.to_string(),
            format!("{:.0}", r.tolerance_m),
            r.stats.count.to_string(),
            format!("{:.2}", r.stats.avg_rot_deg),
            format!("{:.2}", r.stats.max_rot_deg),
            format!("{:.2}", r.stats.turns_over_45),
        ]);
    }
    table.row(vec![
        "Original".to_string(),
        "-".to_string(),
        original.count.to_string(),
        format!("{:.2}", original.avg_rot_deg),
        format!("{:.2}", original.max_rot_deg),
        format!("{:.2}", original.turns_over_45),
    ]);
    print!("{}", table.render());
}
