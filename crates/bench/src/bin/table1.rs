//! Regenerates **Table 1** — characteristics of the AIS datasets.
//!
//! Paper reference rows (real feeds): DAN 786 MB / 4,384,003 positions /
//! 1,292 trips / 16 ships; KIEL 145 MB / 806,498 / 86 / 2; SAR 141 MB /
//! 1,171,162 / 20,778 / 2,579. Our synthetic analogues are ~1:40 scale
//! with the same structural ratios.

use eval::experiments::table1;
use eval::report::{fmt_mb, MarkdownTable};

fn main() {
    println!("# Table 1 — Characteristics of the AIS datasets\n");
    let rows = table1(habit_bench::SEED);
    let mut table = MarkdownTable::new(vec![
        "Dataset",
        "Type",
        "Size (MB)",
        "Positions",
        "Trips",
        "Ships",
    ]);
    for r in rows {
        table.row(vec![
            r.name,
            r.vessel_types.to_string(),
            fmt_mb(r.size_bytes),
            r.positions.to_string(),
            r.trips.to_string(),
            r.ships.to_string(),
        ]);
    }
    print!("{}", table.render());
}
