//! Regenerates **Table 1** — characteristics of the AIS datasets.
//!
//! Paper reference rows (real feeds): DAN 786 MB / 4,384,003 positions /
//! 1,292 trips / 16 ships; KIEL 145 MB / 806,498 / 86 / 2; SAR 141 MB /
//! 1,171,162 / 20,778 / 2,579. Our synthetic analogues are ~1:40 scale
//! with the same structural ratios.

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| habit_bench::reports::table1_report(habit_bench::SEED))
}
