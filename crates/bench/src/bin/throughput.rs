//! Regenerates the **throughput** experiment — `habit-engine` batched
//! imputation serving on KIEL: sequential single-query loop vs
//! `BatchImputer` at 1/2/4 threads (route dedup + LRU cache), route
//! cache behaviour across repeated serving ticks, and the sharded-fit
//! wall clock with its byte-identical-model check.
//!
//! Shape to verify: batch serving beats the one-at-a-time loop by ≥2x
//! on recurring traffic, with a warm cache answering repeat ticks
//! without any A* search — while every answer stays identical.

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| {
        let kiel = habit_bench::kiel();
        eprintln!(
            "kiel: {} train trips, {} test trips",
            kiel.train.len(),
            kiel.test.len()
        );
        habit_bench::reports::throughput_report(&kiel, habit_bench::SEED)
    })
}
