//! Regenerates **Figure 5** — sensitivity analysis of imputation accuracy
//! (mean & median DTW) across GTI (rm, rd), HABIT (r, t) and SLI on the
//! KIEL and SAR datasets, 60-minute gaps.
//!
//! Paper shape to verify: on the confined KIEL route GTI is the most
//! accurate and both methods beat SLI clearly; on the heterogeneous SAR
//! dataset HABIT is stable while GTI's mean degrades from outlier paths.

use eval::experiments::fig5;
use eval::report::{fmt_m, MarkdownTable};

fn main() {
    println!("# Figure 5 — Accuracy sensitivity: HABIT vs GTI vs SLI [KIEL & SAR]\n");
    for bench in [habit_bench::kiel(), habit_bench::sar()] {
        let rows = fig5(&bench, habit_bench::SEED);
        println!("## {}\n", bench.name);
        let mut table = MarkdownTable::new(vec![
            "Method",
            "Mean DTW (m)",
            "Median DTW (m)",
            "Failures",
            "Gaps",
        ]);
        for r in rows {
            table.row(vec![
                r.method,
                fmt_m(r.mean_dtw_m),
                fmt_m(r.median_dtw_m),
                r.failures.to_string(),
                r.total.to_string(),
            ]);
        }
        println!("{}", table.render());
    }
}
