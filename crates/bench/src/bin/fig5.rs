//! Regenerates **Figure 5** — sensitivity analysis of imputation accuracy
//! (mean & median DTW) across GTI (rm, rd), HABIT (r, t) and SLI on the
//! KIEL and SAR datasets, 60-minute gaps.
//!
//! Paper shape to verify: on the confined KIEL route GTI is the most
//! accurate and both methods beat SLI clearly; on the heterogeneous SAR
//! dataset HABIT is stable while GTI's mean degrades from outlier paths.

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| {
        let kiel = habit_bench::kiel();
        let sar = habit_bench::sar();
        habit_bench::reports::fig5_report(&kiel, &sar, habit_bench::SEED)
    })
}
