//! Ablation (DESIGN.md §5.1) — A* edge-weight schemes.
//!
//! The paper minimizes the number of transitions (uniform hop weights)
//! and argues this "effectively reveals the most frequent path". This
//! ablation compares the hop scheme against two frequency-aware weights
//! on accuracy and latency.

use eval::experiments::{accuracy_dtw, latency, Bench};
use eval::methods::Imputer;
use eval::report::{fmt_m, fmt_s, mean, median, MarkdownTable};
use habit_core::{HabitConfig, WeightScheme};

fn main() {
    println!("# Ablation — A* edge-weight schemes [KIEL & SAR]\n");
    let seed = habit_bench::SEED;
    for bench in [Bench::kiel(seed), Bench::sar(seed)] {
        println!("## {}\n", bench.name);
        let cases = bench.gap_cases(3600, seed);
        let mut table = MarkdownTable::new(vec![
            "Weight scheme",
            "Mean DTW (m)",
            "Median DTW (m)",
            "Avg lat (s)",
            "Max lat (s)",
        ]);
        for (scheme, label) in [
            (WeightScheme::Hops, "Hops (paper)"),
            (WeightScheme::InverseTransitions, "1/transitions"),
            (WeightScheme::NegLogFrequency, "ln(1+max/transitions)"),
        ] {
            let config = HabitConfig {
                weight_scheme: scheme,
                ..HabitConfig::with_r_t(9, 100.0)
            };
            let Ok(imputer) = Imputer::fit_habit(&bench.train, config) else {
                continue;
            };
            let errors = accuracy_dtw(&imputer, &cases);
            let (avg, max, _) = latency(&imputer, &cases);
            table.row(vec![
                label.to_string(),
                fmt_m(mean(&errors)),
                fmt_m(median(&errors)),
                fmt_s(avg),
                fmt_s(max),
            ]);
        }
        println!("{}", table.render());
    }
}
