//! Ablation (DESIGN.md §5.1) — A* edge-weight schemes.
//!
//! The paper minimizes the number of transitions (uniform hop weights)
//! and argues this "effectively reveals the most frequent path". This
//! ablation compares the hop scheme against two frequency-aware weights
//! on accuracy and latency.

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| {
        let kiel = habit_bench::kiel();
        let sar = habit_bench::sar();
        habit_bench::reports::ablation_weights_report(&kiel, &sar, habit_bench::SEED)
    })
}
