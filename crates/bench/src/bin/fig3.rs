//! Regenerates **Figure 3** — HABIT accuracy (DTW) at different H3
//! resolutions r ∈ {6..10} and projection options p ∈ {center, median}
//! on the DAN dataset, 60-minute gaps.
//!
//! Paper shape to verify: finer resolutions are more accurate, and the
//! data-driven median projection beats the geometric center, especially
//! at coarse resolutions.

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| {
        let dan = habit_bench::dan();
        eprintln!(
            "dan: {} train trips, {} test trips",
            dan.train.len(),
            dan.test.len()
        );
        habit_bench::reports::fig3_report(&dan, habit_bench::SEED)
    })
}
