//! Regenerates **Figure 3** — HABIT accuracy (DTW) at different H3
//! resolutions r ∈ {6..10} and projection options p ∈ {center, median}
//! on the DAN dataset, 60-minute gaps.
//!
//! Paper shape to verify: finer resolutions are more accurate, and the
//! data-driven median projection beats the geometric center, especially
//! at coarse resolutions.

use eval::experiments::fig3;
use eval::report::{fmt_m, MarkdownTable};

fn main() {
    println!("# Figure 3 — HABIT DTW vs resolution x projection [DAN]\n");
    let bench = habit_bench::dan();
    eprintln!(
        "dan: {} train trips, {} test trips",
        bench.train.len(),
        bench.test.len()
    );
    let rows = fig3(&bench, habit_bench::SEED);
    let mut table = MarkdownTable::new(vec![
        "r",
        "p",
        "Mean DTW (m)",
        "Median DTW (m)",
        "Imputed/Total",
    ]);
    for r in rows {
        table.row(vec![
            r.resolution.to_string(),
            r.projection.to_string(),
            fmt_m(r.mean_dtw_m),
            fmt_m(r.median_dtw_m),
            format!("{}/{}", r.imputed, r.total),
        ]);
    }
    print!("{}", table.render());
}
