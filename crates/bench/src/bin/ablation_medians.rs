//! Ablation (DESIGN.md §5.4–5.5) — aggregation accuracy/cost trade-offs
//! inside the analytics substrate:
//!
//! * exact quickselect medians vs the P² streaming estimator;
//! * HyperLogLog precision vs distinct-count error.
//!
//! These are the substrate choices behind HABIT's per-cell statistics.

use aggdb::quantile::{median_exact, P2Quantile};
use aggdb::HyperLogLog;
use eval::report::MarkdownTable;
use std::time::Instant;

fn main() {
    println!("# Ablation — median algorithms and HLL precision\n");

    // ---- Medians: exact vs P² on a heavy-tailed sample.
    println!("## Exact median vs P² streaming estimator\n");
    let mut table = MarkdownTable::new(vec!["n", "exact", "p2", "abs err", "exact us", "p2 us"]);
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for n in [100usize, 1_000, 10_000, 100_000] {
        let values: Vec<f64> = (0..n).map(|_| next().powi(3) * 1000.0).collect();
        let t0 = Instant::now();
        let mut v = values.clone();
        let exact = median_exact(&mut v).expect("non-empty");
        let exact_us = t0.elapsed().as_micros();

        let t1 = Instant::now();
        let mut p2 = P2Quantile::median();
        for x in &values {
            p2.insert(*x);
        }
        let approx = p2.estimate().expect("non-empty");
        let p2_us = t1.elapsed().as_micros();

        table.row(vec![
            n.to_string(),
            format!("{exact:.2}"),
            format!("{approx:.2}"),
            format!("{:.2}", (approx - exact).abs()),
            exact_us.to_string(),
            p2_us.to_string(),
        ]);
    }
    println!("{}", table.render());

    // ---- HLL precision sweep.
    println!("## HyperLogLog precision vs error (n = 50,000 distinct)\n");
    let mut hll_table = MarkdownTable::new(vec![
        "precision",
        "registers",
        "bytes",
        "estimate",
        "rel err %",
    ]);
    let n = 50_000u64;
    for p in [8u8, 10, 12, 14, 16] {
        let mut h = HyperLogLog::new(p);
        for v in 0..n {
            h.insert_u64(v);
        }
        let est = h.estimate();
        hll_table.row(vec![
            p.to_string(),
            (1u32 << p).to_string(),
            h.byte_size().to_string(),
            format!("{est:.0}"),
            format!("{:.2}", (est - n as f64).abs() / n as f64 * 100.0),
        ]);
    }
    println!("{}", hll_table.render());
}
