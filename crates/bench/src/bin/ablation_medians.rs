//! Ablation (DESIGN.md §5.4–5.5) — aggregation accuracy/cost trade-offs
//! inside the analytics substrate:
//!
//! * exact quickselect medians vs the P² streaming estimator;
//! * HyperLogLog precision vs distinct-count error.
//!
//! These are the substrate choices behind HABIT's per-cell statistics.

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| habit_bench::reports::ablation_medians_report(habit_bench::SEED))
}
