//! Incremental refit vs from-scratch fit: wall clocks, fit-state
//! storage cost, and the byte-identity check (beyond the paper).

use habit_bench::{kiel, report_main, reports, SEED};
use std::process::ExitCode;

fn main() -> ExitCode {
    report_main(|| reports::incremental_report(&kiel(), SEED))
}
