//! Generates the repository `README.md` from live sources (the
//! quickstart example and the `habit` CLI help text are embedded
//! verbatim), so the front page cannot drift from the code.
//!
//! ```text
//! cargo run -p habit-bench --release --bin gen_readme            # write README.md
//! cargo run -p habit-bench --release --bin gen_readme -- --check # fail if stale
//! ```
//!
//! Exit codes: 0 fresh/written, 1 stale or unwritable, 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut out: PathBuf = "README.md".into();
    let mut check = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(path) => out = path.into(),
                None => {
                    eprintln!("error: --out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--check" => check = true,
            other => {
                eprintln!("error: unknown flag `{other}` (supported: --out PATH, --check)");
                return ExitCode::from(2);
            }
        }
    }

    let rendered = habit_bench::docs::render_readme();
    if check {
        match std::fs::read_to_string(&out) {
            Ok(committed) if committed == rendered => {
                eprintln!("{} is fresh", out.display());
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!(
                    "error: {} is stale — regenerate with `cargo run -p habit-bench --bin gen_readme`",
                    out.display()
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("error: could not read {}: {e}", out.display());
                ExitCode::FAILURE
            }
        }
    } else {
        match std::fs::write(&out, rendered) {
            Ok(()) => {
                eprintln!("wrote {}", out.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: could not write {}: {e}", out.display());
                ExitCode::FAILURE
            }
        }
    }
}
