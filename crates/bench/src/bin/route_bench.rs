//! Regenerates the **route_bench** experiment — the route-engine hot
//! path (frozen CSR adjacency, pooled `SearchArena` A*, in-place RDP)
//! benchmarked stage by stage against the retained naive reference
//! (`impute_naive` → pointer-graph A* with per-call allocations →
//! recursive sub-path-cloning RDP) on KIEL.
//!
//! Shape to verify: every imputation byte-identical across the two
//! paths at any scale, and a ≥2x end-to-end speedup on the full-scale
//! committed run.

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| {
        let kiel = habit_bench::kiel();
        eprintln!(
            "kiel: {} train trips, {} test trips",
            kiel.train.len(),
            kiel.test.len()
        );
        habit_bench::reports::route_bench_report(&kiel, habit_bench::SEED)
    })
}
