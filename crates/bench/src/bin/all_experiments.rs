//! Runs every experiment (Tables 1–4, Figures 3–7, four ablations) and
//! emits the consolidated report — the generator behind the committed
//! `EXPERIMENTS.md` and `reports/*.json` baselines.
//!
//! ```text
//! # Re-run everything; write reports/<id>.json + EXPERIMENTS.md:
//! cargo run -p habit-bench --release --bin all_experiments -- --out-dir reports/
//!
//! # Re-render EXPERIMENTS.md from existing JSON without re-running
//! # (CI's freshness check):
//! cargo run -p habit-bench --release --bin all_experiments -- \
//!     --render-only --out-dir reports/ --md-out /tmp/EXPERIMENTS.md
//! ```
//!
//! Without `--out-dir` the markdown goes to stdout and nothing is
//! persisted. Expect ~2 minutes at full scale in release mode; set
//! `HABIT_EVAL_SCALE=0.05` for a smoke run.

use eval::report::{render_experiments_md, ExperimentReport};
use habit_bench::{reports, BinArgs};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match BinArgs::parse_env() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e} (supported: --out-dir DIR, --md-out PATH, --render-only)");
            return ExitCode::from(2);
        }
    };

    let built: Vec<ExperimentReport> = if args.render_only {
        let Some(dir) = &args.out_dir else {
            eprintln!("error: --render-only needs --out-dir pointing at existing JSON reports");
            return ExitCode::from(2);
        };
        match load_reports(dir) {
            Ok(reports) => reports,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let reports = match reports::all_reports(habit_bench::SEED) {
            Ok(reports) => reports,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(dir) = &args.out_dir {
            for report in &reports {
                match habit_bench::write_report_json(report, dir) {
                    Ok(path) => eprintln!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("error: could not write JSON baseline: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        reports
    };

    let refs: Vec<&ExperimentReport> = built.iter().collect();
    let md = render_experiments_md(&refs);
    // With --out-dir the document lands in a file (EXPERIMENTS.md unless
    // --md-out overrides); without it, on stdout.
    let target = match (&args.md_out, &args.out_dir) {
        (Some(path), _) => Some(path.clone()),
        (None, Some(_)) => Some("EXPERIMENTS.md".into()),
        (None, None) => None,
    };
    match target {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &md) {
                eprintln!("error: could not write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} ({} experiments)", path.display(), built.len());
        }
        None => print!("{md}"),
    }
    ExitCode::SUCCESS
}

/// Loads every canonical report from `<dir>/<id>.json`.
fn load_reports(dir: &Path) -> Result<Vec<ExperimentReport>, String> {
    let mut out = Vec::new();
    for id in reports::EXPERIMENT_ORDER {
        let path = dir.join(format!("{id}.json"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("could not read {}: {e}", path.display()))?;
        out.push(ExperimentReport::from_json(&text).map_err(|e| e.to_string())?);
    }
    Ok(out)
}
