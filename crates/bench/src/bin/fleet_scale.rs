//! Fleet scale (beyond the paper): sharded serving via `habit-fleet` —
//! per-shard model blobs behind the scatter/gather router vs the
//! single-blob baseline, quality and throughput at 1/2/4/8 shards.

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| {
        let kiel = habit_bench::kiel();
        habit_bench::reports::fleet_scale_report(&kiel, habit_bench::SEED)
    })
}
