//! Ablation (DESIGN.md §5): vessel-type-conditioned models vs the global
//! model, on the heterogeneous SAR dataset — the paper's future-work
//! extension quantified.

use eval::experiments::accuracy_dtw;
use eval::report::{fmt_m, fmt_mb, mean, median, MarkdownTable};
use eval::Imputer;
use habit_core::{FleetConfig, FleetModel, GapQuery, HabitConfig, ServedBy};

fn main() {
    let bench = habit_bench::sar();
    let cases = bench.gap_cases(3600, habit_bench::SEED);
    println!(
        "# Ablation — vessel-type conditioning [SAR, {} gaps]\n",
        cases.len()
    );

    let config = HabitConfig::with_r_t(9, 100.0);
    let global = Imputer::fit_habit(&bench.train, config).expect("global fit");
    let fleet = FleetModel::fit(
        &bench.train,
        &bench.dataset.vessels,
        FleetConfig {
            habit: config,
            min_trips_per_type: 8,
        },
    )
    .expect("fleet fit");
    println!("dedicated class models: {:?}\n", fleet.modeled_types());

    // Global accuracy via the shared harness.
    let global_errors = accuracy_dtw(&global, &cases);

    // Fleet accuracy: route each case through the type dispatcher. The
    // gap cases carry trip ids; recover the vessel through the test trip.
    let mut fleet_errors = Vec::new();
    let mut class_served = 0usize;
    for case in &cases {
        let mmsi = bench
            .test
            .iter()
            .find(|t| t.trip_id == case.trip_id)
            .map(|t| t.mmsi)
            .unwrap_or(0);
        let query = GapQuery {
            start: case.query.start,
            end: case.query.end,
        };
        if let Ok((imp, served)) = fleet.impute_for_mmsi(mmsi, &query) {
            if matches!(served, ServedBy::TypeModel(_)) {
                class_served += 1;
            }
            let pts: Vec<geo_kernel::GeoPoint> = imp.points.iter().map(|p| p.pos).collect();
            let truth: Vec<geo_kernel::GeoPoint> = case.truth.iter().map(|p| p.pos).collect();
            if let Some(d) = eval::resampled_dtw_m(&pts, &truth) {
                fleet_errors.push(d);
            }
        }
    }

    let mut table = MarkdownTable::new(vec![
        "Model",
        "Mean DTW (m)",
        "Median DTW (m)",
        "Imputed",
        "Storage (MB)",
    ]);
    table.row(vec![
        "Global (paper)".to_string(),
        fmt_m(mean(&global_errors)),
        fmt_m(median(&global_errors)),
        format!("{}/{}", global_errors.len(), cases.len()),
        fmt_mb(global.storage_bytes()),
    ]);
    table.row(vec![
        "Fleet (per-type)".to_string(),
        fmt_m(mean(&fleet_errors)),
        fmt_m(median(&fleet_errors)),
        format!("{}/{}", fleet_errors.len(), cases.len()),
        fmt_mb(fleet.storage_bytes()),
    ]);
    println!("{}", table.render());
    println!(
        "{class_served}/{} gaps answered by a dedicated class model",
        cases.len()
    );
}
