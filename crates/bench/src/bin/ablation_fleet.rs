//! Ablation (DESIGN.md §5): vessel-type-conditioned models vs the global
//! model, on the heterogeneous SAR dataset — the paper's future-work
//! extension quantified.

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| {
        let sar = habit_bench::sar();
        habit_bench::reports::ablation_fleet_report(&sar, habit_bench::SEED)
    })
}
