//! Ablation: PaLMTO on the paper's protocol.
//!
//! The paper initially included PaLMTO \[11\] because its models were
//! "comparable in size to the most refined HABIT configuration", but
//! dropped it after inference "frequently exceeded the time limit and
//! fell into a timeout". This binary reproduces that finding: it fits
//! PaLMTO next to HABIT on KIEL and SAR, compares model sizes, and
//! reports the per-query outcome breakdown (success / timeout / dead end
//! / step limit) under the same generation budget.

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| {
        let kiel = habit_bench::kiel();
        let sar = habit_bench::sar();
        habit_bench::reports::ablation_palmto_report(&kiel, &sar, habit_bench::SEED)
    })
}
