//! Ablation: PaLMTO on the paper's protocol.
//!
//! The paper initially included PaLMTO \[11\] because its models were
//! "comparable in size to the most refined HABIT configuration", but
//! dropped it after inference "frequently exceeded the time limit and
//! fell into a timeout". This binary reproduces that finding: it fits
//! PaLMTO next to HABIT on KIEL and SAR, compares model sizes, and
//! reports the per-query outcome breakdown (success / timeout / dead end
//! / step limit) under the same generation budget.

use baselines::{PalmtoConfig, PalmtoError, PalmtoModel};
use eval::experiments::accuracy_dtw;
use eval::report::{fmt_m, fmt_mb, mean, median, MarkdownTable};
use eval::Imputer;
use habit_core::HabitConfig;
use std::time::Duration;

fn main() {
    println!("# Ablation — PaLMTO vs HABIT (the paper's dropped competitor)\n");
    for bench in [habit_bench::kiel(), habit_bench::sar()] {
        let cases = bench.gap_cases(3600, habit_bench::SEED);
        println!("## {} ({} gaps)\n", bench.name, cases.len());

        let habit =
            Imputer::fit_habit(&bench.train, HabitConfig::with_r_t(10, 100.0)).expect("habit fit");
        let palmto_config = PalmtoConfig {
            resolution: 10,
            n: 3,
            time_budget: Duration::from_millis(250),
            ..PalmtoConfig::default()
        };
        let palmto = PalmtoModel::fit(&bench.train, palmto_config).expect("palmto fit");

        // Per-query outcome breakdown.
        let mut ok = 0usize;
        let mut timeout = 0usize;
        let mut dead_end = 0usize;
        let mut step_limit = 0usize;
        let mut errors = Vec::new();
        for case in &cases {
            match palmto.impute(case.query.start, case.query.end) {
                Ok(path) => {
                    ok += 1;
                    let pts: Vec<geo_kernel::GeoPoint> = path.iter().map(|p| p.pos).collect();
                    let truth: Vec<geo_kernel::GeoPoint> =
                        case.truth.iter().map(|p| p.pos).collect();
                    if let Some(d) = eval::resampled_dtw_m(&pts, &truth) {
                        errors.push(d);
                    }
                }
                Err(PalmtoError::Timeout) => timeout += 1,
                Err(PalmtoError::DeadEnd) => dead_end += 1,
                Err(PalmtoError::StepLimit) => step_limit += 1,
                Err(PalmtoError::EmptyModel) => unreachable!("model fitted"),
            }
        }

        let mut table = MarkdownTable::new(vec![
            "Method",
            "Model (MB)",
            "Imputed",
            "Timeout",
            "DeadEnd",
            "StepLimit",
            "Mean DTW (m)",
            "Median DTW (m)",
        ]);
        let habit_errors = accuracy_dtw(&habit, &cases);
        table.row(vec![
            "HABIT r=10,t=100".to_string(),
            fmt_mb(habit.storage_bytes()),
            habit_errors.len().to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            fmt_m(mean(&habit_errors)),
            fmt_m(median(&habit_errors)),
        ]);
        table.row(vec![
            "PaLMTO n=3,r=10".to_string(),
            fmt_mb(palmto.storage_bytes()),
            ok.to_string(),
            timeout.to_string(),
            dead_end.to_string(),
            step_limit.to_string(),
            fmt_m(mean(&errors)),
            fmt_m(median(&errors)),
        ]);
        println!("{}", table.render());
        let failed = timeout + dead_end + step_limit;
        println!(
            "PaLMTO failed {failed}/{} queries ({} by timeout) — the behaviour that\n\
             excluded it from the paper's reported results.\n",
            cases.len(),
            timeout
        );
    }
}
