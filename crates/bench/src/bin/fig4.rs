//! Regenerates **Figure 4** — HABIT accuracy (DTW) for simplification
//! tolerances t ∈ {0, 100, 250, 500, 1000} at r ∈ {9, 10} on DAN.
//!
//! Paper shape to verify: accuracy is essentially flat in t (RDP removes
//! points, not geometry).

use std::process::ExitCode;

fn main() -> ExitCode {
    habit_bench::report_main(|| {
        let dan = habit_bench::dan();
        habit_bench::reports::fig4_report(&dan, habit_bench::SEED)
    })
}
