//! Regenerates **Figure 4** — HABIT accuracy (DTW) for simplification
//! tolerances t ∈ {0, 100, 250, 500, 1000} at r ∈ {9, 10} on DAN.
//!
//! Paper shape to verify: accuracy is essentially flat in t (RDP removes
//! points, not geometry).

use eval::experiments::fig4;
use eval::report::{fmt_m, MarkdownTable};

fn main() {
    println!("# Figure 4 — HABIT DTW vs simplification tolerance [DAN]\n");
    let bench = habit_bench::dan();
    let rows = fig4(&bench, habit_bench::SEED);
    let mut table = MarkdownTable::new(vec!["r", "t", "Mean DTW (m)", "Median DTW (m)"]);
    for r in rows {
        table.row(vec![
            r.resolution.to_string(),
            format!("{:.0}", r.tolerance_m),
            fmt_m(r.mean_dtw_m),
            fmt_m(r.median_dtw_m),
        ]);
    }
    print!("{}", table.render());
}
