//! # habit-bench — the benchmark harness
//!
//! One runnable binary per table/figure of the paper's evaluation
//! (`cargo run -p habit-bench --release --bin <target>`):
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `table1` | Table 1 — dataset characteristics |
//! | `table2` | Table 2 — framework storage size |
//! | `table3` | Table 3 — simplification effect |
//! | `table4` | Table 4 — query latency |
//! | `fig3`   | Figure 3 — accuracy vs resolution × projection |
//! | `fig4`   | Figure 4 — accuracy vs tolerance |
//! | `fig5`   | Figure 5 — accuracy sensitivity vs GTI/SLI |
//! | `fig6`   | Figure 6 — qualitative examples (ASCII map + GeoJSON) |
//! | `fig7`   | Figure 7 — accuracy vs gap duration |
//! | `ablation_weights` | DESIGN.md §5 — A* edge-weight schemes |
//! | `ablation_medians` | DESIGN.md §5 — exact vs P² medians, HLL precision |
//! | `ablation_palmto`  | the paper's dropped competitor, reproduced |
//! | `ablation_fleet`   | vessel-type conditioning (paper future work) |
//! | `throughput`       | batched imputation serving via `habit-engine` (beyond the paper) |
//! | `incremental`      | incremental refit vs from-scratch fit via the persistable `FitState` (beyond the paper) |
//! | `route_bench`      | route-engine hot path: CSR + arena A* + in-place RDP vs the naive reference (beyond the paper) |
//! | `fleet_scale`      | sharded serving via `habit-fleet`: per-shard blobs + seam-stitched routing vs single-blob (beyond the paper) |
//! | `all_experiments`  | everything above; writes `reports/*.json` + `EXPERIMENTS.md` |
//! | `perf_check`       | CI perf gate: fresh vs committed wall clocks (`--baseline`/`--fresh`) |
//!
//! Every binary builds a structured [`eval::ExperimentReport`] via
//! [`reports`], prints its markdown, and with `--out-dir DIR` persists
//! the JSON baseline. `all_experiments --out-dir reports/` regenerates
//! the committed `EXPERIMENTS.md`; `--render-only` re-renders it from
//! the checked-in JSON without re-running anything (the CI freshness
//! check). [`docs`] generates `README.md` the same way (`gen_readme`).
//!
//! Criterion micro-benchmarks live in `benches/` (`cargo bench`).
//!
//! Set `HABIT_EVAL_SCALE` (default 1.0) to shrink datasets for quick
//! runs; seeds are fixed so outputs are reproducible.

use eval::experiments::Bench;
use eval::report::{ExperimentReport, ReportError};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

pub mod docs;
pub mod reports;

/// Common seed for all experiment binaries.
pub const SEED: u64 = 42;

/// Prepares the DAN bench with the shared seed.
pub fn dan() -> Bench {
    Bench::dan(SEED)
}

/// Prepares the KIEL bench with the shared seed.
pub fn kiel() -> Bench {
    Bench::kiel(SEED)
}

/// Prepares the SAR bench with the shared seed.
pub fn sar() -> Bench {
    Bench::sar(SEED)
}

/// Flags shared by every experiment binary.
#[derive(Debug, Default)]
pub struct BinArgs {
    /// `--out-dir DIR` — persist `<id>.json` baselines here.
    pub out_dir: Option<PathBuf>,
    /// `--render-only` — re-render from existing JSON, run nothing
    /// (`all_experiments` only).
    pub render_only: bool,
    /// `--md-out PATH` — where `all_experiments` writes the generated
    /// `EXPERIMENTS.md` (default `EXPERIMENTS.md` when `--out-dir` is
    /// given).
    pub md_out: Option<PathBuf>,
}

impl BinArgs {
    /// Parses the process arguments; errors on anything unrecognized.
    pub fn parse_env() -> Result<Self, String> {
        let mut out = BinArgs::default();
        let mut iter = std::env::args().skip(1);
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--out-dir" => {
                    let dir = iter.next().ok_or("--out-dir needs a directory")?;
                    out.out_dir = Some(PathBuf::from(dir));
                }
                "--md-out" => {
                    let path = iter.next().ok_or("--md-out needs a path")?;
                    out.md_out = Some(PathBuf::from(path));
                }
                "--render-only" => out.render_only = true,
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(out)
    }
}

/// Writes one report's JSON baseline as `<out_dir>/<id>.json`.
pub fn write_report_json(report: &ExperimentReport, out_dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("{}.json", report.id));
    std::fs::write(&path, report.to_json())?;
    Ok(path)
}

/// Shared `main` for single-experiment binaries: builds the report,
/// prints its markdown to stdout, and honours `--out-dir`. Exit codes
/// follow the `habit` CLI convention: 0 success, 1 experiment failure,
/// 2 usage error.
pub fn report_main<F>(build: F) -> ExitCode
where
    F: FnOnce() -> Result<ExperimentReport, ReportError>,
{
    let args = match BinArgs::parse_env() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e} (supported: --out-dir DIR)");
            return ExitCode::from(2);
        }
    };
    if args.render_only || args.md_out.is_some() {
        eprintln!(
            "error: --render-only/--md-out are `all_experiments` flags (supported here: --out-dir DIR)"
        );
        return ExitCode::from(2);
    }
    match build() {
        Ok(report) => {
            print!("{}", report.to_markdown());
            if let Some(dir) = &args.out_dir {
                match write_report_json(&report, dir) {
                    Ok(path) => eprintln!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("error: could not write JSON baseline: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Renders a polyline set as a coarse ASCII map (used by `fig6`).
pub fn ascii_map(
    series: &[(&str, &[geo_kernel::GeoPoint])],
    width: usize,
    height: usize,
) -> String {
    let mut min_lon = f64::INFINITY;
    let mut max_lon = f64::NEG_INFINITY;
    let mut min_lat = f64::INFINITY;
    let mut max_lat = f64::NEG_INFINITY;
    for (_, pts) in series {
        for p in *pts {
            min_lon = min_lon.min(p.lon);
            max_lon = max_lon.max(p.lon);
            min_lat = min_lat.min(p.lat);
            max_lat = max_lat.max(p.lat);
        }
    }
    if !min_lon.is_finite() {
        return String::new();
    }
    let pad_lon = ((max_lon - min_lon) * 0.05).max(1e-6);
    let pad_lat = ((max_lat - min_lat) * 0.05).max(1e-6);
    min_lon -= pad_lon;
    max_lon += pad_lon;
    min_lat -= pad_lat;
    max_lat += pad_lat;

    let mut canvas = vec![vec![b' '; width]; height];
    let symbols = [b'o', b'H', b'G', b'S', b'P'];
    for (si, (_, pts)) in series.iter().enumerate() {
        let sym = symbols[si.min(symbols.len() - 1)];
        for p in *pts {
            let x = ((p.lon - min_lon) / (max_lon - min_lon) * (width - 1) as f64) as usize;
            let y = ((max_lat - p.lat) / (max_lat - min_lat) * (height - 1) as f64) as usize;
            canvas[y.min(height - 1)][x.min(width - 1)] = sym;
        }
    }
    let mut out = String::with_capacity(height * (width + 1));
    for row in canvas {
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_kernel::GeoPoint;

    #[test]
    fn ascii_map_draws_symbols() {
        let a = vec![GeoPoint::new(10.0, 56.0), GeoPoint::new(10.5, 56.2)];
        let b = vec![GeoPoint::new(10.2, 56.1)];
        let map = ascii_map(&[("truth", &a), ("habit", &b)], 40, 12);
        assert_eq!(map.lines().count(), 12);
        assert!(map.contains('o'));
        assert!(map.contains('H'));
        assert!(ascii_map(&[], 10, 5).is_empty());
    }
}
