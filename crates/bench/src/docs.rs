//! Generated repository documentation.
//!
//! `README.md` is generated, not hand-written, so it cannot drift from
//! the code: the quickstart section embeds `examples/quickstart.rs`
//! verbatim via `include_str!`, the CLI section embeds the `habit`
//! binary's live `help_text()`, and CI re-renders the file and fails if
//! the committed copy is stale (`gen_readme --check`).

/// The `examples/quickstart.rs` source, embedded at compile time.
pub const QUICKSTART_SRC: &str = include_str!("../../../examples/quickstart.rs");

/// Renders the repository `README.md`.
pub fn render_readme() -> String {
    format!(
        r#"# HABIT — Data-Driven Trajectory Imputation for Vessel Mobility Analysis

<!-- GENERATED FILE — do not edit by hand.
Regenerate:

    cargo run -p habit-bench --release --bin gen_readme

CI runs `gen_readme --check` and fails when this file is stale. -->

A from-scratch Rust reproduction of **"Data-Driven Trajectory Imputation
for Vessel Mobility Analysis"** (EDBT 2026): HABIT fills AIS
communication gaps by aggregating historical vessel traffic into an
H3-style hexagonal cell graph and A*-searching the habitually most
frequent path between the gap endpoints, then projecting cells back to
coordinates with a data-driven median projection and RDP simplification.

The workspace builds fully offline — external dependencies (`rand`,
`proptest`, `criterion`) are vendored as API-compatible stubs under
`vendor/`, and report/GeoJSON serialization is hand-rolled (no serde).

## Architecture

Seventeen crates in eight layers, plus the `habit` umbrella crate
re-exporting a prelude:

```text
             ┌──────────────────────────────────────────────────┐
             │          habit — umbrella crate + prelude        │
             └──────────────────────────────────────────────────┘
 apps        habit-cli (`habit` binary)   habit-bench (19 experiment bins)
             habit-lint (workspace static analysis — see LINTS.md)
             ────────────────────────────────────────────────────
 facade      habit-service (typed request/response API, unified
             error taxonomy, `habit serve` line-JSON TCP daemon)
             ────────────────────────────────────────────────────
 serving     habit-engine (thread pool,   habit-obs (zero-dep spans,
             sharded + incremental fit    metrics registry, plaintext
             over FitState, batched       + span-JSON renderers)
             imputation with LRU cache)
             habit-fleet (per-shard model blobs, versioned shard
             manifest, scatter/gather routing front)
             ────────────────────────────────────────────────────
 evaluation  eval (DTW, gap injection,    density (traffic density
             splits, experiment reports)  maps & rendering)
             ────────────────────────────────────────────────────
 methods     habit-core (HABIT model:     baselines (SLI, GTI,
             fit / impute / repair)       PaLMTO competitors)
             ────────────────────────────────────────────────────
 substrate   aggdb (columnar group-by,    mobgraph (cell transition
             HLL, P² quantiles)           graph + A* search)
             ────────────────────────────────────────────────────
 kernel      geo-kernel (geodesy, DTW,    hexgrid (H3-style hexagonal
             RDP, GeoJSON)                indexing)
             ────────────────────────────────────────────────────
 data        ais (cleaning, events,       synth (synthetic AIS worlds:
             trip segmentation)           DAN / KIEL / SAR analogues)
```

| crate | role |
|-------|------|
| `crates/geo` (`geo-kernel`) | geodesic primitives: haversine, bearings, RDP simplification, polylines, GeoJSON writers |
| `crates/hexgrid` | H3-style hexagonal grid: cell ids, lat/lon↔cell, neighbors, polygon cover |
| `crates/aggdb` | columnar aggregation substrate: tables, group-by, HyperLogLog, P² quantiles |
| `crates/mobgraph` | mobility graph: per-cell stats, transition edges, A* search, compact codec |
| `crates/ais` | AIS data model, cleaning filters, mobility events, trip segmentation |
| `crates/synth` | seeded synthetic AIS datasets mirroring the paper's DAN / KIEL / SAR feeds |
| `crates/core` (`habit-core`) | the HABIT method: fit, gap imputation, track repair, fleet models, persistable `FitState` (v2 model container) |
| `crates/engine` (`habit-engine`) | parallel serving: hand-rolled thread pool, tile-sharded fit as `accumulate → merge → finalize` over `FitState` (byte-identical to sequential), incremental refit, batched imputation with route dedup + LRU cache |
| `crates/obs` (`habit-obs`) | dependency-free observability substrate: monotonic span recorder, deterministic metrics registry (counters / gauges / fixed-bucket histograms), plaintext and span-JSON renderers |
| `crates/fleet` (`habit-fleet`) | sharded serving: per-shard model blobs, the versioned `fleet.hfm` manifest, and the scatter/gather `FleetRouter` — in-shard dispatch, tile-seam stitching, global fallback, per-shard hot-swap |
| `crates/service` (`habit-service`) | unified service facade: typed `Request`/`Response` API, `ServiceError` taxonomy with stable codes, shared CSV converters, line-JSON wire codec + TCP server |
| `crates/baselines` | competitors: SLI straight-line, GTI point-graph, PaLMTO N-gram |
| `crates/density` | traffic density maps and exports built on the same substrate |
| `crates/eval` | experiment harness: DTW accuracy, gap cases, experiment runners, `ExperimentReport` |
| `crates/cli` (`habit-cli`) | the `habit` command-line tool — thin adapters over `habit-service` |
| `crates/bench` (`habit-bench`) | experiment binaries, criterion benches, report/README generators |
| `crates/lint` (`habit-lint`) | hand-rolled static analysis (lexer + scanner, no `syn`): the pinned L001–L005 registry enforcing determinism, unsafe-audit, and wire-taxonomy invariants |

## Quickstart

```sh
cargo run --release --example quickstart
```

<details>
<summary><code>examples/quickstart.rs</code> — dataset → fit → impute → evaluate (embedded verbatim)</summary>

```rust
{quickstart}```

</details>

More examples: `compare_methods`, `density_map`, `fleet_types`,
`port_traffic` (`cargo run --release --example <name>`).

### Incremental refit

Fitting normally re-scans the whole history. With the persistable
**fit state** (the fit's partial aggregates — counts, HLL sketches,
median buffers — as a versioned binary blob embedded in a v2 model
container), each new day of trips merges in **byte-identically** to a
from-scratch fit over history ∪ delta (property-tested at every
shard/thread count), without re-reading the history:

```sh
habit fit   --input day1.csv --out kiel.habit --save-state
habit refit --model kiel.habit --input day2.csv       # updates in place
habit refit --model kiel.habit --input day3.csv
habit info  --model kiel.habit    # blob version, state size, fit provenance
```

The delta must contain whole, *new* trips (new vessels / new days —
trip and vessel streams must not straddle the boundary). Lean v1 blobs
(`fit` without `--save-state`) stay the default — smaller, read-only —
and still load everywhere. The running daemon accepts the same
operation over the wire (`{{"v":1,"op":"refit","input":"day2.csv"}}`)
and hot-swaps the refitted model without dropping connections; the
`incremental` experiment below reports refit-vs-full-fit wall clocks
plus the byte-identity check.

## The `habit` CLI

Every model-touching command is a thin adapter over
`habit_service::Service` — the same facade the daemon serves over TCP —
so the CLI, the daemon, and the tests exercise one code path.

```text
{help}
```

## The `habit serve` daemon

`habit serve --model kiel.habit --port 4740` exposes the full service
over **habit-wire/v1**: line-delimited JSON over TCP (hand-rolled, no
serde/tokio), one request per line, one response line per request.
Requests carry the protocol version and an operation
(`health`, `model_info`, `impute`, `impute_batch`, `repair`, `fit`,
`refit`, `metrics`, `shutdown`); gap endpoints are `[lon,lat,t]`, track
points `[t,lon,lat]`, cell ids hex strings. A worked netcat session:

```sh
habit serve --model kiel.habit --port 4740 &
printf '%s\n' '{{"v":1,"op":"health"}}' | nc 127.0.0.1 4740
# {{"v":1,"ok":true,"op":"health","data":{{"status":"serving",...}}}}
printf '%s\n' '{{"v":1,"op":"impute","from":[10.30,57.10,0],"to":[10.85,57.45,3600]}}' \
    | nc 127.0.0.1 4740
# {{"v":1,"ok":true,"op":"impute","data":{{"points":[[0,10.3,57.1],...],...}}}}
printf '%s\n' '{{"v":1,"op":"shutdown"}}' | nc 127.0.0.1 4740
# {{"v":1,"ok":true,"op":"shutdown","data":{{"stopping":true}}}}
```

Failures come back as `{{"ok":false,"error":{{"code":...,"message":...}}}}`
with a stable machine-readable code; the CLI derives its exit codes from
the same taxonomy (`bad_request` exits 2, every other code exits 1):

| code | exit | meaning |
|------|------|---------|
| `bad_request` | 2 | malformed request: unknown op/flag, bad value, wrong protocol version |
| `io` | 1 | file or socket I/O failure |
| `csv` | 1 | CSV input could not be parsed |
| `bad_input` | 1 | input rows/columns have the wrong shape or type |
| `grid` | 1 | invalid coordinate or grid resolution |
| `no_model` | 1 | the operation needs a model but none is loaded |
| `empty_model` | 1 | fit produced (or the model has) no transition graph |
| `no_path` | 1 | no historical path between the snapped gap endpoints |
| `snap_failed` | 1 | a gap endpoint could not be snapped onto the model |
| `bad_model_blob` | 1 | a serialized model file is corrupt or incompatible |
| `unsorted_input` | 1 | a track was not sorted by timestamp |
| `config_mismatch` | 1 | models with incompatible configurations |
| `state_version` | 1 | fit-state version unsupported, or the model embeds no state (refit needs one) |
| `config_drift` | 1 | refit delta accumulated under a different fit configuration |
| `shard_miss` | 1 | a gap endpoint's owning shard has no blob loaded in the serving fleet |
| `overloaded` | 1 | the admission queue is full — back off and retry |
| `internal` | 1 | unexpected internal failure |

The daemon answers `impute`/`impute_batch` through the engine's batch
imputer, so recurring routes are served from a warm LRU cache across
requests and connections; `fit` and `refit` hot-swap the serving model
in place (a refit snapshots the state, accumulates the delta off the
request path, and swaps at the end, so imputations keep flowing).
Graceful shutdown: the `shutdown` op, or start with `--watch-stdin` and
close the daemon's stdin pipe (supervisor-friendly; no signal handler
needed in the std-only build); either way the admission queue is
drained first, so every already-accepted request is answered before the
listener stops. Request lines are capped at `--max-line-bytes`
(default 16 MiB); oversized lines are rejected with `bad_request` and
counted under their own `op="oversized_line"` metrics label.

### Admission batching & SLOs

By default the daemon **coalesces concurrent impute traffic across
connections**: every in-flight `impute`/`impute_batch` gap is submitted
to a bounded admission queue, and a flusher drains the queue into one
shared engine batch whenever `--batch-max-gaps` gaps are waiting or the
oldest has waited `--batch-window-us` microseconds (defaults: 128 gaps,
1000 µs). One flush makes a single dedup + route-cache pass over every
connection's gaps — N connections asking for the same uncached route
cost one A* search instead of N — and the per-gap results scatter back
to their originating connections **byte-identical** to the direct path
(pinned by unit tests, a scatter/gather proptest, and a concurrent
end-to-end test against the real binary). When the queue is full the
daemon answers with the typed `overloaded` error instead of blocking
the accept loop; `--no-coalesce` restores the per-connection direct
path. The `health` payload reports the admission state — `queue_depth`,
`queue_capacity`, and per-op `p50_us`/`p95_us`/`p99_us` latency
quantiles derived from the pinned-bucket histograms — and the metrics
endpoint exports `habit_admission_queue_depth`, flush/rejection
counters, and a flush batch-size histogram. The committed `throughput`
report's concurrent-clients table tracks what coalescing buys at 1–16
connections, cold and warm.

## Sharded serving — `habit-fleet`

One refittable model blob per tile shard instead of one global blob:
`fit --shards-out` partitions the fit by tile ownership (`cell → tile →
hash(tile) % shards`, the engine's own sharded-fit partitioner) and
writes each shard's v2 blob next to a versioned manifest; `serve
--shards` puts the scatter/gather `FleetRouter` in front of the same
service facade, so the wire protocol, error taxonomy, and metrics are
unchanged:

```sh
habit fit   --input kiel.csv --shards-out fleet/ --fleet-shards 4
habit serve --shards fleet/ --model kiel.habit --port 4740 &
habit refit --shards fleet/ --shard 2 --input day2.csv   # one shard, in place
```

**The manifest** (`fleet/fleet.hfm`, magic `HFM1`) pins what the fleet
serves: the fit-config fingerprint, grid resolution and tile level, the
shard modulus, the tile→shard ownership map, and one `{{path, fnv1a64}}`
record per shard blob. Loading re-verifies every blob hash against it —
a fleet never silently serves mixed tunings or stale bytes — and
`health`/`model_info` report the shard count plus the manifest hash,
which moves on every per-shard hot-swap (`refit --shard N`).

**Routing.** Each gap is classified by its endpoint tiles: an in-shard
gap runs the exact single-blob code path on its owning shard (answers
are byte-identical — property-tested, and re-checked per release by the
`fleet_scale` experiment); a cross-shard gap is stitched from two
per-shard legs joined at a seam cell on the shard boundary; an endpoint
owned by a shard with no blob is a typed `shard_miss`, never a silent
reroute. Ownership is a tile hash, so shards interleave geographically:
a stitch only succeeds when both legs stay inside one shard's tiles
plus the one-cell boundary halo — every other cross-shard gap (and
`repair`, which needs the whole graph) is served by the global fallback
blob passed via `--model`. The committed `fleet_scale` experiment gates
both paths: overall mean DTW ≤1.5x the single blob, stitched seam
routes ≤3x.

## Observability

The whole stack is instrumented through `habit-obs`, a dependency-free
tracing/metrics substrate (monotonic microsecond span clock, never
`SystemTime`, so serialized output stays deterministic). Every request
records per-stage spans (`parse → handle → route → impute → render`;
`fit`/`refit` phases likewise) and feeds a deterministic metrics
registry — per-op request/error counters, latency histograms with
pinned buckets, route-cache hit/miss counters, a live connection gauge.
The same numbers are exposed three ways:

```sh
# 1. The `metrics` wire op — a structured snapshot over habit-wire/v1:
printf '%s\n' '{{"v":1,"op":"metrics"}}' | nc 127.0.0.1 4740

# 2. The extended `health` payload: uptime_ticks, requests_total, and
#    route-cache hit/miss counters, monotonic across requests.

# 3. A plaintext HTTP endpoint (Prometheus-style lines, stable layout):
habit serve --model kiel.habit --port 4740 --metrics-port 9464 &
curl -s 127.0.0.1:9464/        # habit_requests_total{{op="impute"}} 2 ...
curl -s 127.0.0.1:9464/spans   # recent spans, one JSON object per line
```

Failed requests are spanned too — a malformed line shows up under
`habit_errors_total{{code="bad_request",op="unknown"}}`, so error rates
are first-class, not inferred.

**Per-point repair provenance** explains *how* each imputed point was
produced. Opt-in (`"provenance":true` on `impute`/`impute_batch`/
`repair`, or `habit impute --provenance`); the imputed points are
byte-identical with and without it, and the off path adds zero work:

```sh
habit impute --model kiel.habit --provenance \
    --from 10.30,57.10,0 --to 10.85,57.45,3600
# t,lon,lat,kind,cell,from_cell,cell_msgs,edge_transitions,cost_share,confidence
# 0,10.300000,57.100000,observed,0x8900...,,6,0,0.000000,1.000000
# 503,10.317000,57.130000,route,0x8900...,0x8900...,2,1,0.034483,0.500000
```

`kind` is `observed` (a gap endpoint), `route` (projected from the
habitual cell path), or `synthesized` (densified between route points);
`cell_msgs` is the historical support under the point's cell,
`cost_share` its share of the A* path cost, `confidence` a
support-derived [0,1] score. Run-to-run byte identity of this CSV is
pinned by a committed golden under `crates/cli/tests/golden/`.

## Reproducing the paper's evaluation

Every table and figure of the paper's §4 (plus four ablations) has a
runnable binary; [`EXPERIMENTS.md`](EXPERIMENTS.md) is the committed
baseline, generated — never hand-edited:

```sh
# Re-run everything and regenerate reports/*.json + EXPERIMENTS.md
# (~2 minutes in release mode at full scale):
cargo run -p habit-bench --release --bin all_experiments -- --out-dir reports/

# Re-render EXPERIMENTS.md from the committed JSON without re-running:
cargo run -p habit-bench --release --bin all_experiments -- --render-only --out-dir reports/

# One experiment, e.g. Figure 5, the batched-serving throughput, or
# the incremental-refit comparison (report id `incremental`):
cargo run -p habit-bench --release --bin fig5
cargo run -p habit-bench --release --bin throughput
cargo run -p habit-bench --release --bin incremental_refit

# CI perf tracking: fresh smoke-scale wall clocks vs the committed
# baseline (reports/smoke/), failing on >2x regressions:
cargo run -p habit-bench --release --bin perf_check -- \
    --baseline reports/smoke --fresh /tmp/smoke-reports

# Criterion micro-benchmarks (set CRITERION_SUMMARY_FILE=out.tsv for a
# machine-readable name/min/med/mean-ns line per benchmark):
cargo bench
```

Each `reports/<id>.json` is a versioned `habit-experiment-report/v1`
document carrying the experiment's paper reference, parameters, metric
tables, and wall-clock / peak-RSS provenance; CI re-renders
`EXPERIMENTS.md` from them and fails on drift, so the committed numbers
always match the committed generator.

Set `HABIT_EVAL_SCALE` (default `1.0`) to shrink the synthetic datasets
for quick smoke runs, e.g. `HABIT_EVAL_SCALE=0.05`. Datasets are seeded
synthetic analogues of the paper's real AIS feeds, so absolute numbers
differ from the paper while the comparative shapes it argues from are
preserved (see the paper-vs-reproduction table in `EXPERIMENTS.md`).

## Static analysis — `habit-lint`

A hand-rolled lint pass (comment/string-aware lexer + token scanner, no
`syn`) enforcing the invariants the test suite can only probe
dynamically. The registry is pinned and documented in
[`LINTS.md`](LINTS.md) (generated — CI fails when stale):

| id | name | enforces |
|----|------|----------|
{lint_rows}
```sh
cargo run -p habit-lint --release -- --check          # CI gate: any violation fails
cargo run -p habit-lint --release -- --json reports/lint.json
```

Silencing is inline only — `// habit-lint: allow(Lxxx) -- reason` — and
itself audited (L005): every suppression lands in the committed
[`reports/lint.json`](reports/lint.json), which CI diffs, so the
suppression count cannot grow without showing up in review.

## Development

```sh
cargo build --release && cargo test -q   # tier-1 gate
cargo fmt --all --check && cargo clippy --workspace --all-targets
cargo run -p habit-lint --release -- --check
```

See [ROADMAP.md](ROADMAP.md) for open items, [PAPER.md](PAPER.md) for
the source paper's abstract, [PAPERS.md](PAPERS.md) for related work,
and [CHANGES.md](CHANGES.md) for the PR history.
"#,
        quickstart = QUICKSTART_SRC,
        help = habit_cli::commands::help_text(),
        lint_rows = lint_table_rows(),
    )
}

/// The habit-lint registry rendered as markdown table rows, so the
/// README's lint table cannot drift from the registry it documents.
fn lint_table_rows() -> String {
    habit_lint::ALL
        .iter()
        .map(|l| {
            format!(
                "| [`{}`](LINTS.md) | `{}` | {} |\n",
                l.id, l.name, l.summary
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readme_embeds_live_sources() {
        let md = render_readme();
        assert!(md.starts_with("# HABIT"));
        assert!(md.contains("GENERATED FILE"));
        // Quickstart is embedded verbatim, so README freshness tracks it.
        assert!(md.contains("fn main()"));
        assert!(md.contains(QUICKSTART_SRC));
        // The CLI section embeds the live help text.
        assert!(md.contains("USAGE: habit <command>"));
        // The daemon section documents the wire protocol, a worked nc
        // example, and the full error-code table.
        assert!(md.contains("habit-wire/v1"));
        assert!(md.contains("nc 127.0.0.1 4740"));
        assert!(md.contains("| `bad_request` | 2 |"));
        assert!(md.contains("| `no_path` | 1 |"));
        assert!(md.contains("| `state_version` | 1 |"));
        assert!(md.contains("| `config_drift` | 1 |"));
        assert!(md.contains("| `shard_miss` | 1 |"));
        assert!(md.contains("| `overloaded` | 1 |"));
        // The admission-batching section documents the coalescing
        // flags, the backpressure error, and the SLO health fields.
        assert!(md.contains("### Admission batching & SLOs"));
        assert!(md.contains("--batch-window-us"));
        assert!(md.contains("--batch-max-gaps"));
        assert!(md.contains("--no-coalesce"));
        assert!(md.contains("--max-line-bytes"));
        assert!(md.contains("habit_admission_queue_depth"));
        assert!(md.contains("oversized_line"));
        // The sharded-serving section documents the manifest, the
        // routing semantics, and the worked fleet command sequence.
        assert!(md.contains("## Sharded serving — `habit-fleet`"));
        assert!(md.contains("fleet/fleet.hfm"));
        assert!(md.contains("HFM1"));
        assert!(md.contains("--shards-out fleet/"));
        assert!(md.contains("habit refit --shards fleet/ --shard 2"));
        // The incremental-refit workflow is documented with a worked
        // command sequence and the wire op.
        assert!(md.contains("### Incremental refit"));
        assert!(md.contains("habit refit --model kiel.habit"));
        assert!(md.contains("\"op\":\"refit\""));
        // The static-analysis section renders the live lint registry.
        assert!(md.contains("## Static analysis — `habit-lint`"));
        for lint in habit_lint::ALL.iter() {
            assert!(md.contains(lint.name), "README must mention {}", lint.name);
        }
        assert!(md.contains("habit-lint: allow(Lxxx) -- reason"));
        // The observability section documents all three metrics
        // surfaces and the provenance CSV schema.
        assert!(md.contains("## Observability"));
        assert!(md.contains("\"op\":\"metrics\""));
        assert!(md.contains("--metrics-port 9464"));
        assert!(md.contains("curl -s 127.0.0.1:9464/spans"));
        assert!(md.contains(
            "t,lon,lat,kind,cell,from_cell,cell_msgs,edge_transitions,cost_share,confidence"
        ));
        assert!(md.contains("habit impute --model kiel.habit --provenance"));
        // All 17 crates appear in the table.
        for krate in [
            "geo-kernel",
            "hexgrid",
            "aggdb",
            "mobgraph",
            "ais",
            "synth",
            "habit-core",
            "habit-engine",
            "habit-obs",
            "habit-fleet",
            "habit-service",
            "baselines",
            "density",
            "eval",
            "habit-cli",
            "habit-bench",
            "habit-lint",
        ] {
            assert!(md.contains(krate), "README must mention {krate}");
        }
        // Deterministic render.
        assert_eq!(md, render_readme());
    }
}
