//! Generated repository documentation.
//!
//! `README.md` is generated, not hand-written, so it cannot drift from
//! the code: the quickstart section embeds `examples/quickstart.rs`
//! verbatim via `include_str!`, the CLI section embeds the `habit`
//! binary's live `help_text()`, and CI re-renders the file and fails if
//! the committed copy is stale (`gen_readme --check`).

/// The `examples/quickstart.rs` source, embedded at compile time.
pub const QUICKSTART_SRC: &str = include_str!("../../../examples/quickstart.rs");

/// Renders the repository `README.md`.
pub fn render_readme() -> String {
    format!(
        r#"# HABIT — Data-Driven Trajectory Imputation for Vessel Mobility Analysis

<!-- GENERATED FILE — do not edit by hand.
Regenerate:

    cargo run -p habit-bench --release --bin gen_readme

CI runs `gen_readme --check` and fails when this file is stale. -->

A from-scratch Rust reproduction of **"Data-Driven Trajectory Imputation
for Vessel Mobility Analysis"** (EDBT 2026): HABIT fills AIS
communication gaps by aggregating historical vessel traffic into an
H3-style hexagonal cell graph and A*-searching the habitually most
frequent path between the gap endpoints, then projecting cells back to
coordinates with a data-driven median projection and RDP simplification.

The workspace builds fully offline — external dependencies (`rand`,
`proptest`, `criterion`) are vendored as API-compatible stubs under
`vendor/`, and report/GeoJSON serialization is hand-rolled (no serde).

## Architecture

Thirteen crates in seven layers, plus the `habit` umbrella crate
re-exporting a prelude:

```text
             ┌──────────────────────────────────────────────────┐
             │          habit — umbrella crate + prelude        │
             └──────────────────────────────────────────────────┘
 apps        habit-cli (`habit` binary)   habit-bench (16 experiment bins)
             ────────────────────────────────────────────────────
 serving     habit-engine (thread pool, sharded fit, batched
             imputation with an LRU route cache)
             ────────────────────────────────────────────────────
 evaluation  eval (DTW, gap injection,    density (traffic density
             splits, experiment reports)  maps & rendering)
             ────────────────────────────────────────────────────
 methods     habit-core (HABIT model:     baselines (SLI, GTI,
             fit / impute / repair)       PaLMTO competitors)
             ────────────────────────────────────────────────────
 substrate   aggdb (columnar group-by,    mobgraph (cell transition
             HLL, P² quantiles)           graph + A* search)
             ────────────────────────────────────────────────────
 kernel      geo-kernel (geodesy, DTW,    hexgrid (H3-style hexagonal
             RDP, GeoJSON)                indexing)
             ────────────────────────────────────────────────────
 data        ais (cleaning, events,       synth (synthetic AIS worlds:
             trip segmentation)           DAN / KIEL / SAR analogues)
```

| crate | role |
|-------|------|
| `crates/geo` (`geo-kernel`) | geodesic primitives: haversine, bearings, RDP simplification, polylines, GeoJSON writers |
| `crates/hexgrid` | H3-style hexagonal grid: cell ids, lat/lon↔cell, neighbors, polygon cover |
| `crates/aggdb` | columnar aggregation substrate: tables, group-by, HyperLogLog, P² quantiles |
| `crates/mobgraph` | mobility graph: per-cell stats, transition edges, A* search, compact codec |
| `crates/ais` | AIS data model, cleaning filters, mobility events, trip segmentation |
| `crates/synth` | seeded synthetic AIS datasets mirroring the paper's DAN / KIEL / SAR feeds |
| `crates/core` (`habit-core`) | the HABIT method: fit, gap imputation, track repair, fleet models |
| `crates/engine` (`habit-engine`) | parallel serving: hand-rolled thread pool, tile-sharded fit (byte-identical to sequential), batched imputation with route dedup + LRU cache |
| `crates/baselines` | competitors: SLI straight-line, GTI point-graph, PaLMTO N-gram |
| `crates/density` | traffic density maps and exports built on the same substrate |
| `crates/eval` | experiment harness: DTW accuracy, gap cases, experiment runners, `ExperimentReport` |
| `crates/cli` (`habit-cli`) | the `habit` command-line tool |
| `crates/bench` (`habit-bench`) | experiment binaries, criterion benches, report/README generators |

## Quickstart

```sh
cargo run --release --example quickstart
```

<details>
<summary><code>examples/quickstart.rs</code> — dataset → fit → impute → evaluate (embedded verbatim)</summary>

```rust
{quickstart}```

</details>

More examples: `compare_methods`, `density_map`, `fleet_types`,
`port_traffic` (`cargo run --release --example <name>`).

## The `habit` CLI

```text
{help}
```

## Reproducing the paper's evaluation

Every table and figure of the paper's §4 (plus four ablations) has a
runnable binary; [`EXPERIMENTS.md`](EXPERIMENTS.md) is the committed
baseline, generated — never hand-edited:

```sh
# Re-run everything and regenerate reports/*.json + EXPERIMENTS.md
# (~2 minutes in release mode at full scale):
cargo run -p habit-bench --release --bin all_experiments -- --out-dir reports/

# Re-render EXPERIMENTS.md from the committed JSON without re-running:
cargo run -p habit-bench --release --bin all_experiments -- --render-only --out-dir reports/

# One experiment, e.g. Figure 5 or the batched-serving throughput:
cargo run -p habit-bench --release --bin fig5
cargo run -p habit-bench --release --bin throughput

# CI perf tracking: fresh smoke-scale wall clocks vs the committed
# baseline (reports/smoke/), failing on >2x regressions:
cargo run -p habit-bench --release --bin perf_check -- \
    --baseline reports/smoke --fresh /tmp/smoke-reports

# Criterion micro-benchmarks:
cargo bench
```

Each `reports/<id>.json` is a versioned `habit-experiment-report/v1`
document carrying the experiment's paper reference, parameters, metric
tables, and wall-clock / peak-RSS provenance; CI re-renders
`EXPERIMENTS.md` from them and fails on drift, so the committed numbers
always match the committed generator.

Set `HABIT_EVAL_SCALE` (default `1.0`) to shrink the synthetic datasets
for quick smoke runs, e.g. `HABIT_EVAL_SCALE=0.05`. Datasets are seeded
synthetic analogues of the paper's real AIS feeds, so absolute numbers
differ from the paper while the comparative shapes it argues from are
preserved (see the paper-vs-reproduction table in `EXPERIMENTS.md`).

## Development

```sh
cargo build --release && cargo test -q   # tier-1 gate
cargo fmt --all --check && cargo clippy --workspace --all-targets
```

See [ROADMAP.md](ROADMAP.md) for open items, [PAPER.md](PAPER.md) for
the source paper's abstract, [PAPERS.md](PAPERS.md) for related work,
and [CHANGES.md](CHANGES.md) for the PR history.
"#,
        quickstart = QUICKSTART_SRC,
        help = habit_cli::commands::help_text(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readme_embeds_live_sources() {
        let md = render_readme();
        assert!(md.starts_with("# HABIT"));
        assert!(md.contains("GENERATED FILE"));
        // Quickstart is embedded verbatim, so README freshness tracks it.
        assert!(md.contains("fn main()"));
        assert!(md.contains(QUICKSTART_SRC));
        // The CLI section embeds the live help text.
        assert!(md.contains("USAGE: habit <command>"));
        // All 13 crates appear in the table.
        for krate in [
            "geo-kernel",
            "hexgrid",
            "aggdb",
            "mobgraph",
            "ais",
            "synth",
            "habit-core",
            "habit-engine",
            "baselines",
            "density",
            "eval",
            "habit-cli",
            "habit-bench",
        ] {
            assert!(md.contains(krate), "README must mention {krate}");
        }
        // Deterministic render.
        assert_eq!(md, render_readme());
    }
}
