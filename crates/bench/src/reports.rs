//! Report builders — one [`ExperimentReport`] per experiment binary.
//!
//! Each builder runs the corresponding `eval::experiments` runner (or
//! the ablation logic that used to live in a binary's `main`), formats
//! the rows into tables, computes a one-sentence reproduction summary
//! for the paper-vs-reproduction comparison, and stamps wall-clock +
//! peak-RSS provenance. The binaries in `src/bin/` are thin wrappers:
//! they call a builder, print the markdown, and optionally persist the
//! JSON (`--out-dir`).

use aggdb::quantile::{median_exact, P2Quantile};
use aggdb::HyperLogLog;
use baselines::{PalmtoConfig, PalmtoError, PalmtoModel};
use eval::experiments::{self, accuracy_dtw, latency, Bench, Fig6Case};
use eval::report::{
    fmt_m, fmt_mb, fmt_s, mean, median, peak_rss_bytes, ExperimentReport, MarkdownTable,
    Provenance, ReportError, ReportSection,
};
use eval::Imputer;
use geo_kernel::{
    rdp_indices_reference, rdp_timed_in_place, resample_timed_max_spacing, GeoPoint, RdpScratch,
    TimedPoint,
};
use habit_core::{
    FleetConfig, FleetModel, GapQuery, HabitConfig, HabitModel, ServedBy, WeightScheme,
};
use habit_engine::{fit_sharded, refit_model, BatchImputer, ThreadPool};
use habit_fleet::{fit_fleet, load_fleet, Dispatch, FleetRouter};
use std::time::{Duration, Instant};

/// Canonical experiment order: `reports/<id>.json` file stems and the
/// section order of the generated `EXPERIMENTS.md`.
pub const EXPERIMENT_ORDER: [&str; 17] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "ablation_weights",
    "ablation_medians",
    "ablation_palmto",
    "ablation_fleet",
    "throughput",
    "incremental",
    "route_bench",
    "fleet_scale",
];

type Result<T> = std::result::Result<T, eval::ReportError>;

fn provenance(seed: u64, t0: Instant) -> Provenance {
    Provenance {
        generator: format!("habit-bench {}", env!("CARGO_PKG_VERSION")),
        seed,
        scale: experiments::eval_scale(),
        wall_clock_s: t0.elapsed().as_secs_f64(),
        peak_rss_bytes: peak_rss_bytes(),
    }
}

fn param(k: &str, v: impl ToString) -> (String, String) {
    (k.to_string(), v.to_string())
}

/// Table 1 — characteristics of the AIS datasets.
pub fn table1_report(seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let rows = experiments::table1(seed);
    let mut table = MarkdownTable::new(vec![
        "Dataset",
        "Type",
        "Size (MB)",
        "Positions",
        "Trips",
        "Ships",
    ])
    .with_context("table1");
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            r.vessel_types.to_string(),
            fmt_mb(r.size_bytes),
            r.positions.to_string(),
            r.trips.to_string(),
            r.ships.to_string(),
        ])?;
    }
    let per_dataset: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{} {} positions / {} trips / {} ships",
                r.name, r.positions, r.trips, r.ships
            )
        })
        .collect();
    Ok(ExperimentReport {
        id: "table1".into(),
        title: "Table 1 — characteristics of the AIS datasets".into(),
        paper_ref: "Table 1".into(),
        paper_expected: "Real feeds: DAN 786 MB / 4,384,003 positions / 1,292 trips / 16 ships; \
                         KIEL 145 MB / 806,498 / 86 / 2; SAR 141 MB / 1,171,162 / 20,778 / 2,579. \
                         The synthetic analogues keep the structural ratios (KIEL: 2 ferries on one \
                         corridor; SAR: a large heterogeneous fleet)."
            .into(),
        reproduction: format!("Structure preserved — {}.", per_dataset.join("; ")),
        params: vec![param("seed", seed), param("scale", experiments::eval_scale())],
        sections: vec![ReportSection::table(table)],
        provenance: provenance(seed, t0),
    })
}

/// Table 2 — framework storage size on KIEL & SAR.
pub fn table2_report(kiel: &Bench, sar: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let rows = experiments::table2(kiel, sar);
    let mut table =
        MarkdownTable::new(vec!["Method", "Configuration", "KIEL", "SAR"]).with_context("table2");
    for r in &rows {
        table.row(vec![
            r.method.to_string(),
            r.config.clone(),
            fmt_mb(r.kiel_bytes),
            fmt_mb(r.sar_bytes),
        ])?;
    }
    let habit_max = rows
        .iter()
        .filter(|r| r.method == "HABIT")
        .map(|r| r.kiel_bytes.max(r.sar_bytes))
        .max()
        .unwrap_or(0);
    let gti_max = rows
        .iter()
        .filter(|r| r.method == "GTI")
        .map(|r| r.kiel_bytes.max(r.sar_bytes))
        .max()
        .unwrap_or(0);
    let ratio = gti_max as f64 / habit_max.max(1) as f64;
    Ok(ExperimentReport {
        id: "table2".into(),
        title: "Table 2 — framework storage size (MB)".into(),
        paper_ref: "Table 2".into(),
        paper_expected: "HABIT sizes grow with resolution but stay tiny (0.06–57 MB); GTI models \
                         are orders of magnitude larger and explode with rd."
            .into(),
        reproduction: format!(
            "Largest HABIT model {} MB vs largest GTI model {} MB — GTI is {:.0}x larger; HABIT \
             grows monotonically with r.",
            fmt_mb(habit_max),
            fmt_mb(gti_max),
            ratio
        ),
        params: vec![
            param("habit_r", "6..=10"),
            param("gti_rd_deg", "1e-4|5e-4|1e-3"),
            param("seed", seed),
        ],
        sections: vec![ReportSection::table(table)],
        provenance: provenance(seed, t0),
    })
}

/// Table 3 — effect of simplification on imputed trajectories (DAN).
pub fn table3_report(dan: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let (rows, original) = experiments::table3(dan, seed);
    let mut table = MarkdownTable::new(vec!["r", "t", "cnt", "Avg rot", "Max rot", ">45deg"])
        .with_context("table3");
    for r in &rows {
        table.row(vec![
            r.resolution.to_string(),
            format!("{:.0}", r.tolerance_m),
            r.stats.count.to_string(),
            format!("{:.2}", r.stats.avg_rot_deg),
            format!("{:.2}", r.stats.max_rot_deg),
            format!("{:.2}", r.stats.turns_over_45),
        ])?;
    }
    table.row(vec![
        "Original".to_string(),
        "-".to_string(),
        original.count.to_string(),
        format!("{:.2}", original.avg_rot_deg),
        format!("{:.2}", original.max_rot_deg),
        format!("{:.2}", original.turns_over_45),
    ])?;
    let at = |res: u8, tol: f64| {
        rows.iter()
            .find(|r| r.resolution == res && r.tolerance_m == tol)
    };
    let repro = match (at(9, 0.0), at(9, 1000.0)) {
        (Some(t0r), Some(t1k)) => format!(
            "At r=9, t=1000 shrinks imputed paths from {} to {} points and cuts >45° turns from \
             {:.2} to {:.2} per path.",
            t0r.stats.count, t1k.stats.count, t0r.stats.turns_over_45, t1k.stats.turns_over_45
        ),
        _ => "Sweep incomplete (model fit failed for some configurations).".to_string(),
    };
    Ok(ExperimentReport {
        id: "table3".into(),
        title: "Table 3 — effect of simplification on imputed trajectories [DAN]".into(),
        paper_ref: "Table 3".into(),
        paper_expected: "Larger t shrinks position counts drastically and nearly eliminates >45° \
                         turns; t in 100–250 is the sweet spot."
            .into(),
        reproduction: repro,
        params: vec![
            param("r", "9|10"),
            param("t_m", "0|100|250|500|1000"),
            param("gap_s", 3600),
            param("seed", seed),
        ],
        sections: vec![ReportSection::table(table)],
        provenance: provenance(seed, t0),
    })
}

/// Table 4 — query latency on KIEL & SAR.
pub fn table4_report(kiel: &Bench, sar: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let mut sections = Vec::new();
    let mut clauses = Vec::new();
    for bench in [kiel, sar] {
        let rows = experiments::table4(bench, seed);
        let gaps = rows.first().map_or(0, |r| r.gaps);
        let mut table = MarkdownTable::new(vec!["Method", "Avg", "Max"]).with_context("table4");
        for r in &rows {
            table.row(vec![r.method.clone(), fmt_s(r.avg_s), fmt_s(r.max_s)])?;
        }
        sections.push(ReportSection::titled(
            format!("{} ({} gaps)", bench.name, gaps),
            table,
        ));
        let worst = |prefix: &str| {
            rows.iter()
                .filter(|r| r.method.starts_with(prefix))
                .map(|r| r.avg_s)
                .fold(0.0f64, f64::max)
        };
        clauses.push(format!(
            "{}: HABIT avg ≤ {} s, GTI avg up to {} s",
            bench.name,
            fmt_s(worst("HABIT")),
            fmt_s(worst("GTI"))
        ));
    }
    Ok(ExperimentReport {
        id: "table4".into(),
        title: "Table 4 — query latency (seconds)".into(),
        paper_ref: "Table 4".into(),
        paper_expected: "HABIT stays well under GTI at every configuration; latency grows with \
                         resolution (HABIT) and rd (GTI); SAR is slower than KIEL for GTI."
            .into(),
        reproduction: format!("{}.", clauses.join("; ")),
        params: vec![
            param("habit", "r=9|10, t=100|250"),
            param("gti_rd_deg", "1e-4|5e-4|1e-3"),
            param("gap_s", 3600),
            param("seed", seed),
        ],
        sections,
        provenance: provenance(seed, t0),
    })
}

/// Figure 3 — accuracy vs resolution × projection (DAN).
pub fn fig3_report(dan: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let rows = experiments::fig3(dan, seed);
    let mut table = MarkdownTable::new(vec![
        "r",
        "p",
        "Mean DTW (m)",
        "Median DTW (m)",
        "Imputed/Total",
    ])
    .with_context("fig3");
    for r in &rows {
        table.row(vec![
            r.resolution.to_string(),
            r.projection.to_string(),
            fmt_m(r.mean_dtw_m),
            fmt_m(r.median_dtw_m),
            format!("{}/{}", r.imputed, r.total),
        ])?;
    }
    let mut median_wins = 0usize;
    let mut pairs = 0usize;
    for res in 6..=10u8 {
        let get = |p: &str| {
            rows.iter()
                .find(|r| r.resolution == res && r.projection == p)
                .map(|r| r.mean_dtw_m)
        };
        if let (Some(c), Some(m)) = (get("center"), get("median")) {
            pairs += 1;
            if m <= c {
                median_wins += 1;
            }
        }
    }
    let best = rows
        .iter()
        .filter(|r| r.imputed > 0)
        .min_by(|a, b| a.mean_dtw_m.total_cmp(&b.mean_dtw_m));
    let repro = match best {
        Some(b) => format!(
            "Median projection beats center at {median_wins}/{pairs} resolutions (mean DTW); best \
             mean DTW {} m at r={}, p={}.",
            fmt_m(b.mean_dtw_m),
            b.resolution,
            b.projection
        ),
        None => "No configuration imputed any gap.".to_string(),
    };
    Ok(ExperimentReport {
        id: "fig3".into(),
        title: "Figure 3 — HABIT DTW vs resolution x projection [DAN]".into(),
        paper_ref: "Figure 3".into(),
        paper_expected: "Finer resolutions are more accurate, and the data-driven median \
                         projection beats the geometric center, especially at coarse resolutions."
            .into(),
        reproduction: repro,
        params: vec![
            param("r", "6..=10"),
            param("p", "center|median"),
            param("t_m", 100),
            param("gap_s", 3600),
            param("seed", seed),
        ],
        sections: vec![ReportSection::table(table)],
        provenance: provenance(seed, t0),
    })
}

/// Figure 4 — accuracy vs simplification tolerance (DAN).
pub fn fig4_report(dan: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let rows = experiments::fig4(dan, seed);
    let mut table =
        MarkdownTable::new(vec!["r", "t", "Mean DTW (m)", "Median DTW (m)"]).with_context("fig4");
    for r in &rows {
        table.row(vec![
            r.resolution.to_string(),
            format!("{:.0}", r.tolerance_m),
            fmt_m(r.mean_dtw_m),
            fmt_m(r.median_dtw_m),
        ])?;
    }
    let r9: Vec<f64> = rows
        .iter()
        .filter(|r| r.resolution == 9)
        .map(|r| r.mean_dtw_m)
        .collect();
    let (lo, hi) = (
        r9.iter().copied().fold(f64::INFINITY, f64::min),
        r9.iter().copied().fold(0.0f64, f64::max),
    );
    Ok(ExperimentReport {
        id: "fig4".into(),
        title: "Figure 4 — HABIT DTW vs simplification tolerance [DAN]".into(),
        paper_ref: "Figure 4".into(),
        paper_expected: "Accuracy is essentially flat in t (RDP removes points, not geometry)."
            .into(),
        reproduction: if r9.is_empty() {
            "Sweep incomplete.".to_string()
        } else {
            format!(
                "Mean DTW at r=9 spans only {}–{} m across t=0..1000 — flat in t.",
                fmt_m(lo),
                fmt_m(hi)
            )
        },
        params: vec![
            param("r", "9|10"),
            param("t_m", "0|100|250|500|1000"),
            param("gap_s", 3600),
            param("seed", seed),
        ],
        sections: vec![ReportSection::table(table)],
        provenance: provenance(seed, t0),
    })
}

/// Figure 5 — accuracy sensitivity, HABIT vs GTI vs SLI (KIEL & SAR).
pub fn fig5_report(kiel: &Bench, sar: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let mut sections = Vec::new();
    let mut clauses = Vec::new();
    for bench in [kiel, sar] {
        let rows = experiments::fig5(bench, seed);
        let mut table = MarkdownTable::new(vec![
            "Method",
            "Mean DTW (m)",
            "Median DTW (m)",
            "Failures",
            "Gaps",
        ])
        .with_context("fig5");
        for r in &rows {
            table.row(vec![
                r.method.clone(),
                fmt_m(r.mean_dtw_m),
                fmt_m(r.median_dtw_m),
                r.failures.to_string(),
                r.total.to_string(),
            ])?;
        }
        sections.push(ReportSection::titled(bench.name.clone(), table));
        let best = rows
            .iter()
            .filter(|r| r.failures < r.total)
            .min_by(|a, b| a.mean_dtw_m.total_cmp(&b.mean_dtw_m));
        let sli = rows.iter().find(|r| r.method == "SLI");
        if let (Some(best), Some(sli)) = (best, sli) {
            clauses.push(format!(
                "{}: best {} at {} m mean DTW (SLI {} m)",
                bench.name,
                best.method,
                fmt_m(best.mean_dtw_m),
                fmt_m(sli.mean_dtw_m)
            ));
        }
    }
    Ok(ExperimentReport {
        id: "fig5".into(),
        title: "Figure 5 — accuracy sensitivity: HABIT vs GTI vs SLI [KIEL & SAR]".into(),
        paper_ref: "Figure 5".into(),
        paper_expected: "On the confined KIEL route GTI is the most accurate and both methods \
                         beat SLI clearly; on the heterogeneous SAR dataset HABIT is stable while \
                         GTI's mean degrades from outlier paths."
            .into(),
        reproduction: format!("{}.", clauses.join("; ")),
        params: vec![
            param("habit", "r=9|10, t=100|250"),
            param("gti_rd_deg", "1e-4|5e-4|1e-3"),
            param("gap_s", 3600),
            param("seed", seed),
        ],
        sections,
        provenance: provenance(seed, t0),
    })
}

/// Figure 6 — indicative imputation examples (KIEL). Also returns the
/// raw cases so the `fig6` binary can write a GeoJSON side artifact.
pub fn fig6_report(kiel: &Bench, seed: u64, n: usize) -> Result<(ExperimentReport, Vec<Fig6Case>)> {
    let t0 = Instant::now();
    let cases = experiments::fig6(kiel, seed, n);
    let mut sections = Vec::new();
    let mut with_all_methods = 0usize;
    for (i, case) in cases.iter().enumerate() {
        let mut series: Vec<(&str, &[geo_kernel::GeoPoint])> =
            vec![("original", case.truth.as_slice())];
        for (label, path) in &case.paths {
            series.push((label.as_str(), path.as_slice()));
        }
        if case.paths.len() >= 3 {
            with_all_methods += 1;
        }
        let mut notes = vec![format!("```\n{}```", crate::ascii_map(&series, 72, 20))];
        let mut polylines = String::from("Polylines (lon,lat per vertex):\n");
        for (label, path) in &series {
            let coords: Vec<String> = path
                .iter()
                .map(|p| format!("{:.5},{:.5}", p.lon, p.lat))
                .collect();
            polylines.push_str(&format!("\n- `{label}`: {}", coords.join(" ")));
        }
        notes.push(polylines);
        sections.push(ReportSection::notes(
            format!("Example {} (trip {})", i + 1, case.trip_id),
            notes,
        ));
    }
    let report = ExperimentReport {
        id: "fig6".into(),
        title: "Figure 6 — indicative imputation results [KIEL]".into(),
        paper_ref: "Figure 6".into(),
        paper_expected: "Qualitatively, HABIT follows the habitual corridor while SLI cuts \
                         corners; GTI tracks the route closely on the confined KIEL corridor. \
                         (Symbols: o = original, H = HABIT, G = GTI, S = SLI.)"
            .into(),
        reproduction: format!(
            "{} example gaps rendered; {}/{} produced paths from all three methods.",
            cases.len(),
            with_all_methods,
            cases.len()
        ),
        params: vec![
            param("examples", n),
            param("gap_s", 3600),
            param("seed", seed),
        ],
        sections,
        provenance: provenance(seed, t0),
    };
    Ok((report, cases))
}

/// Figure 7 — accuracy vs gap duration (KIEL & SAR).
pub fn fig7_report(kiel: &Bench, sar: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let mut sections = Vec::new();
    let mut clauses = Vec::new();
    for bench in [kiel, sar] {
        let rows = experiments::fig7(bench, seed);
        let mut table = MarkdownTable::new(vec![
            "Config (r|t)",
            "Gap (h)",
            "Median (m)",
            "P25 (m)",
            "P75 (m)",
            "Max (m)",
            "Imputed",
        ])
        .with_context("fig7");
        for r in &rows {
            table.row(vec![
                r.config.clone(),
                format!("{:.0}", r.gap_hours),
                fmt_m(r.median_dtw_m),
                fmt_m(r.p25_m),
                fmt_m(r.p75_m),
                fmt_m(r.max_m),
                r.imputed.to_string(),
            ])?;
        }
        sections.push(ReportSection::titled(bench.name.clone(), table));
        let med_at = |hours: f64| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.gap_hours == hours)
                .map(|r| r.median_dtw_m)
                .collect();
            median(&v)
        };
        clauses.push(format!(
            "{}: median DTW (across configs) {} m at 1 h → {} m at 4 h",
            bench.name,
            fmt_m(med_at(1.0)),
            fmt_m(med_at(4.0))
        ));
    }
    Ok(ExperimentReport {
        id: "fig7".into(),
        title: "Figure 7 — HABIT DTW vs gap duration [KIEL & SAR]".into(),
        paper_ref: "Figure 7".into(),
        paper_expected: "Error grows with gap duration but less than proportionally; the config \
                         ranking stays consistent; SAR shows pronounced outliers (max column)."
            .into(),
        reproduction: format!("{}.", clauses.join("; ")),
        params: vec![
            param("config_r_t", "9|100, 9|250, 10|100, 10|250"),
            param("gap_h", "1|2|4"),
            param("seed", seed),
        ],
        sections,
        provenance: provenance(seed, t0),
    })
}

/// Ablation — A* edge-weight schemes (KIEL & SAR), DESIGN.md §5.1.
pub fn ablation_weights_report(kiel: &Bench, sar: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let mut sections = Vec::new();
    let mut clauses = Vec::new();
    for bench in [kiel, sar] {
        let cases = bench.gap_cases(3600, seed);
        let mut table = MarkdownTable::new(vec![
            "Weight scheme",
            "Mean DTW (m)",
            "Median DTW (m)",
            "Avg lat (s)",
            "Max lat (s)",
        ])
        .with_context("ablation_weights");
        let mut best: Option<(String, f64)> = None;
        for (scheme, label) in [
            (WeightScheme::Hops, "Hops (paper)"),
            (WeightScheme::InverseTransitions, "1/transitions"),
            (WeightScheme::NegLogFrequency, "ln(1+max/transitions)"),
        ] {
            let config = HabitConfig {
                weight_scheme: scheme,
                ..HabitConfig::with_r_t(9, 100.0)
            };
            let Ok(imputer) = Imputer::fit_habit(&bench.train, config) else {
                continue;
            };
            let errors = accuracy_dtw(&imputer, &cases);
            let (avg, max, _) = latency(&imputer, &cases);
            let m = mean(&errors);
            if best.as_ref().is_none_or(|(_, b)| m < *b) {
                best = Some((label.to_string(), m));
            }
            table.row(vec![
                label.to_string(),
                fmt_m(m),
                fmt_m(median(&errors)),
                fmt_s(avg),
                fmt_s(max),
            ])?;
        }
        sections.push(ReportSection::titled(bench.name.clone(), table));
        if let Some((label, m)) = best {
            clauses.push(format!(
                "{}: best scheme {} at {} m mean DTW",
                bench.name,
                label,
                fmt_m(m)
            ));
        }
    }
    Ok(ExperimentReport {
        id: "ablation_weights".into(),
        title: "Ablation — A* edge-weight schemes [KIEL & SAR]".into(),
        paper_ref: "DESIGN.md §5.1 (beyond the paper)".into(),
        paper_expected: "The paper minimizes the number of transitions (uniform hop weights), \
                         arguing this effectively reveals the most frequent path; frequency-aware \
                         weights should not dramatically beat it."
            .into(),
        reproduction: format!("{}.", clauses.join("; ")),
        params: vec![
            param("r", 9),
            param("t_m", 100),
            param("gap_s", 3600),
            param("seed", seed),
        ],
        sections,
        provenance: provenance(seed, t0),
    })
}

/// Ablation — exact vs P² medians and HLL precision, DESIGN.md §5.4–5.5.
pub fn ablation_medians_report(seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();

    // Medians: exact quickselect vs the P² streaming estimator on a
    // heavy-tailed sample from a fixed xorshift stream.
    let mut table = MarkdownTable::new(vec!["n", "exact", "p2", "abs err", "exact us", "p2 us"])
        .with_context("ablation_medians");
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut worst_err = 0.0f64;
    for n in [100usize, 1_000, 10_000, 100_000] {
        let values: Vec<f64> = (0..n).map(|_| next().powi(3) * 1000.0).collect();
        let te = Instant::now();
        let mut v = values.clone();
        let exact = median_exact(&mut v).expect("non-empty");
        let exact_us = te.elapsed().as_micros();

        let tp = Instant::now();
        let mut p2 = P2Quantile::median();
        for x in &values {
            p2.insert(*x);
        }
        let approx = p2.estimate().expect("non-empty");
        let p2_us = tp.elapsed().as_micros();

        worst_err = worst_err.max((approx - exact).abs());
        table.row(vec![
            n.to_string(),
            format!("{exact:.2}"),
            format!("{approx:.2}"),
            format!("{:.2}", (approx - exact).abs()),
            exact_us.to_string(),
            p2_us.to_string(),
        ])?;
    }

    // HLL precision sweep.
    let mut hll_table = MarkdownTable::new(vec![
        "precision",
        "registers",
        "bytes",
        "estimate",
        "rel err %",
    ])
    .with_context("ablation_medians");
    let n = 50_000u64;
    let mut err_p12 = 0.0f64;
    for p in [8u8, 10, 12, 14, 16] {
        let mut h = HyperLogLog::new(p);
        for v in 0..n {
            h.insert_u64(v);
        }
        let est = h.estimate();
        let rel = (est - n as f64).abs() / n as f64 * 100.0;
        if p == 12 {
            err_p12 = rel;
        }
        hll_table.row(vec![
            p.to_string(),
            (1u32 << p).to_string(),
            h.byte_size().to_string(),
            format!("{est:.0}"),
            format!("{rel:.2}"),
        ])?;
    }

    Ok(ExperimentReport {
        id: "ablation_medians".into(),
        title: "Ablation — median algorithms and HLL precision".into(),
        paper_ref: "DESIGN.md §5.4–5.5 (beyond the paper)".into(),
        paper_expected: "The P² streaming estimator tracks the exact median at a fraction of the \
                         cost on heavy-tailed samples; HyperLogLog error shrinks with precision \
                         at ~1.04/√m."
            .into(),
        reproduction: format!(
            "Worst P² absolute error {:.2} across n=100..100k; HLL relative error {:.2}% at \
             precision 12 (n=50k distinct).",
            worst_err, err_p12
        ),
        params: vec![
            param("median_n", "100|1k|10k|100k"),
            param("hll_precision", "8|10|12|14|16"),
            param("seed", seed),
        ],
        sections: vec![
            ReportSection::titled("Exact median vs P² streaming estimator", table),
            ReportSection::titled(
                "HyperLogLog precision vs error (n = 50,000 distinct)",
                hll_table,
            ),
        ],
        provenance: provenance(seed, t0),
    })
}

/// Ablation — PaLMTO on the paper's protocol (the dropped competitor).
pub fn ablation_palmto_report(kiel: &Bench, sar: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let mut sections = Vec::new();
    let mut clauses = Vec::new();
    for bench in [kiel, sar] {
        let cases = bench.gap_cases(3600, seed);
        let habit = Imputer::fit_habit(&bench.train, HabitConfig::with_r_t(10, 100.0))
            .map_err(|e| ReportError::experiment("ablation_palmto", format!("HABIT fit: {e}")))?;
        let palmto_config = PalmtoConfig {
            resolution: 10,
            n: 3,
            time_budget: Duration::from_millis(250),
            ..PalmtoConfig::default()
        };
        let palmto = PalmtoModel::fit(&bench.train, palmto_config).map_err(|e| {
            ReportError::experiment("ablation_palmto", format!("PaLMTO fit: {e:?}"))
        })?;

        let mut ok = 0usize;
        let mut timeout = 0usize;
        let mut dead_end = 0usize;
        let mut step_limit = 0usize;
        let mut errors = Vec::new();
        for case in &cases {
            match palmto.impute(case.query.start, case.query.end) {
                Ok(path) => {
                    ok += 1;
                    let pts: Vec<geo_kernel::GeoPoint> = path.iter().map(|p| p.pos).collect();
                    let truth: Vec<geo_kernel::GeoPoint> =
                        case.truth.iter().map(|p| p.pos).collect();
                    if let Some(d) = eval::resampled_dtw_m(&pts, &truth) {
                        errors.push(d);
                    }
                }
                Err(PalmtoError::Timeout) => timeout += 1,
                Err(PalmtoError::DeadEnd) => dead_end += 1,
                Err(PalmtoError::StepLimit) => step_limit += 1,
                Err(PalmtoError::EmptyModel) => unreachable!("model fitted"),
            }
        }

        let mut table = MarkdownTable::new(vec![
            "Method",
            "Model (MB)",
            "Imputed",
            "Timeout",
            "DeadEnd",
            "StepLimit",
            "Mean DTW (m)",
            "Median DTW (m)",
        ])
        .with_context("ablation_palmto");
        let habit_errors = accuracy_dtw(&habit, &cases);
        table.row(vec![
            "HABIT r=10,t=100".to_string(),
            fmt_mb(habit.storage_bytes()),
            habit_errors.len().to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            fmt_m(mean(&habit_errors)),
            fmt_m(median(&habit_errors)),
        ])?;
        table.row(vec![
            "PaLMTO n=3,r=10".to_string(),
            fmt_mb(palmto.storage_bytes()),
            ok.to_string(),
            timeout.to_string(),
            dead_end.to_string(),
            step_limit.to_string(),
            fmt_m(mean(&errors)),
            fmt_m(median(&errors)),
        ])?;
        let failed = timeout + dead_end + step_limit;
        let mut section =
            ReportSection::titled(format!("{} ({} gaps)", bench.name, cases.len()), table);
        section.notes.push(format!(
            "PaLMTO failed {failed}/{} queries ({timeout} by timeout) — the behaviour that \
             excluded it from the paper's reported results.",
            cases.len()
        ));
        sections.push(section);
        clauses.push(format!(
            "{}: PaLMTO failed {failed}/{} queries",
            bench.name,
            cases.len()
        ));
    }
    Ok(ExperimentReport {
        id: "ablation_palmto".into(),
        title: "Ablation — PaLMTO vs HABIT (the paper's dropped competitor)".into(),
        paper_ref: "Paper §4 (PaLMTO exclusion note)".into(),
        paper_expected: "PaLMTO models are comparable in size to the most refined HABIT \
                         configuration, but inference frequently exceeds the time limit and falls \
                         into a timeout — the reason the paper dropped it."
            .into(),
        reproduction: format!("{}; HABIT answered with no timeouts.", clauses.join("; ")),
        params: vec![
            param("palmto", "n=3, r=10, budget=250ms"),
            param("habit", "r=10, t=100"),
            param("gap_s", 3600),
            param("seed", seed),
        ],
        sections,
        provenance: provenance(seed, t0),
    })
}

/// Ablation — vessel-type-conditioned models vs the global model (SAR).
pub fn ablation_fleet_report(sar: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let cases = sar.gap_cases(3600, seed);
    let config = HabitConfig::with_r_t(9, 100.0);
    let global = Imputer::fit_habit(&sar.train, config)
        .map_err(|e| ReportError::experiment("ablation_fleet", format!("global fit: {e}")))?;
    let fleet = FleetModel::fit(
        &sar.train,
        &sar.dataset.vessels,
        FleetConfig {
            habit: config,
            min_trips_per_type: 8,
        },
    )
    .map_err(|e| ReportError::experiment("ablation_fleet", format!("fleet fit: {e:?}")))?;

    let global_errors = accuracy_dtw(&global, &cases);

    // Fleet accuracy: route each case through the type dispatcher. The
    // gap cases carry trip ids; recover the vessel through the test trip.
    let mut fleet_errors = Vec::new();
    let mut class_served = 0usize;
    for case in &cases {
        let mmsi = sar
            .test
            .iter()
            .find(|t| t.trip_id == case.trip_id)
            .map(|t| t.mmsi)
            .unwrap_or(0);
        let query = GapQuery {
            start: case.query.start,
            end: case.query.end,
        };
        if let Ok((imp, served)) = fleet.impute_for_mmsi(mmsi, &query) {
            if matches!(served, ServedBy::TypeModel(_)) {
                class_served += 1;
            }
            let pts: Vec<geo_kernel::GeoPoint> = imp.points.iter().map(|p| p.pos).collect();
            let truth: Vec<geo_kernel::GeoPoint> = case.truth.iter().map(|p| p.pos).collect();
            if let Some(d) = eval::resampled_dtw_m(&pts, &truth) {
                fleet_errors.push(d);
            }
        }
    }

    let mut table = MarkdownTable::new(vec![
        "Model",
        "Mean DTW (m)",
        "Median DTW (m)",
        "Imputed",
        "Storage (MB)",
    ])
    .with_context("ablation_fleet");
    table.row(vec![
        "Global (paper)".to_string(),
        fmt_m(mean(&global_errors)),
        fmt_m(median(&global_errors)),
        format!("{}/{}", global_errors.len(), cases.len()),
        fmt_mb(global.storage_bytes()),
    ])?;
    table.row(vec![
        "Fleet (per-type)".to_string(),
        fmt_m(mean(&fleet_errors)),
        fmt_m(median(&fleet_errors)),
        format!("{}/{}", fleet_errors.len(), cases.len()),
        fmt_mb(fleet.storage_bytes()),
    ])?;
    let mut section = ReportSection::table(table);
    section.notes.push(format!(
        "Dedicated class models: {:?}. {class_served}/{} gaps answered by a dedicated class model.",
        fleet.modeled_types(),
        cases.len()
    ));
    Ok(ExperimentReport {
        id: "ablation_fleet".into(),
        title: "Ablation — vessel-type conditioning [SAR]".into(),
        paper_ref: "Paper §6 future work, quantified (DESIGN.md §5)".into(),
        paper_expected: "Conditioning models on vessel type should help on the heterogeneous SAR \
                         fleet, at the cost of extra per-type storage — the paper's future-work \
                         extension."
            .into(),
        reproduction: format!(
            "Fleet mean DTW {} m vs global {} m; {class_served}/{} gaps served by class models; \
             storage {} vs {} MB.",
            fmt_m(mean(&fleet_errors)),
            fmt_m(mean(&global_errors)),
            cases.len(),
            fmt_mb(fleet.storage_bytes()),
            fmt_mb(global.storage_bytes()),
        ),
        params: vec![
            param("r", 9),
            param("t_m", 100),
            param("min_trips_per_type", 8),
            param("gap_s", 3600),
            param("seed", seed),
        ],
        sections: vec![section],
        provenance: provenance(seed, t0),
    })
}

/// Throughput — `habit-engine` batched imputation serving (KIEL).
///
/// Models a serving tick: every eligible KIEL test gap queried
/// repeatedly (recurring corridor traffic), answered three ways — a
/// sequential one-query-at-a-time loop (the pre-engine baseline), and
/// `BatchImputer` batches at 1/2/4 threads with route dedup and a
/// bounded LRU route cache. Also times and verifies the sharded fit.
pub fn throughput_report(kiel: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    const REPEAT: usize = 40;
    const CACHE: usize = 4096;
    const TICKS: usize = 3;
    const SHARDS: usize = 4;
    let config = HabitConfig::with_r_t(9, 100.0);
    let id = "throughput";

    // -- Fit: sequential vs sharded (must be byte-identical).
    let train_table = ais::trips_to_table(&kiel.train);
    let fit_t0 = Instant::now();
    let model = HabitModel::fit(&train_table, config)
        .map_err(|e| ReportError::experiment(id, format!("sequential fit: {e}")))?;
    let fit_seq_s = fit_t0.elapsed().as_secs_f64();
    let pool4 = ThreadPool::new(4);
    let fit_t1 = Instant::now();
    let sharded = fit_sharded(&train_table, config, SHARDS, &pool4)
        .map_err(|e| ReportError::experiment(id, format!("sharded fit: {e}")))?;
    let fit_shard_s = fit_t1.elapsed().as_secs_f64();
    let identical = sharded.to_bytes() == model.to_bytes();
    if !identical {
        return Err(ReportError::experiment(
            id,
            "sharded fit produced different model bytes than the sequential fit",
        ));
    }

    // -- The serving stream: each gap case repeated REPEAT times with
    //    shifted timestamps (routes recur; absolute time does not matter
    //    to the search).
    let cases = kiel.gap_cases(3600, seed);
    if cases.is_empty() {
        return Err(ReportError::experiment(id, "no gap cases on KIEL"));
    }
    let mut queries: Vec<GapQuery> = Vec::with_capacity(cases.len() * REPEAT);
    for r in 0..REPEAT {
        for case in &cases {
            let mut q = case.query;
            q.start.t += r as i64;
            q.end.t += r as i64;
            queries.push(q);
        }
    }

    // -- Baseline: the pre-engine path, one query at a time.
    let seq_t0 = Instant::now();
    let mut seq_ok = 0usize;
    for q in &queries {
        if model.impute(q).is_ok() {
            seq_ok += 1;
        }
    }
    let seq_s = seq_t0.elapsed().as_secs_f64();
    let seq_qps = queries.len() as f64 / seq_s.max(1e-9);
    let model = std::sync::Arc::new(model);

    // -- Batched serving at 1 / 2 / 4 threads (cold cache per run).
    let mut table = MarkdownTable::new(vec![
        "Mode",
        "Threads",
        "Queries",
        "Imputed",
        "Wall (s)",
        "Queries/s",
        "Speedup",
    ])
    .with_context(id);
    table.row(vec![
        "sequential impute()".to_string(),
        "1".to_string(),
        queries.len().to_string(),
        seq_ok.to_string(),
        fmt_s(seq_s),
        format!("{seq_qps:.1}"),
        "1.00x".to_string(),
    ])?;
    let mut speedup_at_4 = 0.0f64;
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::new(threads);
        let imputer = BatchImputer::new(std::sync::Arc::clone(&model), CACHE);
        let b_t0 = Instant::now();
        let (_, stats) = imputer.impute_batch(&queries, &pool);
        let b_s = b_t0.elapsed().as_secs_f64();
        let qps = queries.len() as f64 / b_s.max(1e-9);
        let speedup = qps / seq_qps;
        if threads == 4 {
            speedup_at_4 = speedup;
        }
        table.row(vec![
            "batch (dedup + cache)".to_string(),
            threads.to_string(),
            stats.queries.to_string(),
            stats.ok.to_string(),
            fmt_s(b_s),
            format!("{qps:.1}"),
            format!("{speedup:.2}x"),
        ])?;
    }

    // -- Route cache across serving ticks: the same traffic arriving
    //    again is answered from the LRU without any search.
    let mut ticks = MarkdownTable::new(vec![
        "Tick",
        "Unique routes",
        "Searched",
        "Cache hits",
        "Hit rate",
        "Queries/s",
    ])
    .with_context(id);
    let imputer = BatchImputer::new(std::sync::Arc::clone(&model), CACHE);
    let mut warm_hit_rate = 0.0f64;
    for tick in 1..=TICKS {
        let tick_t0 = Instant::now();
        let (_, stats) = imputer.impute_batch(&queries, &pool4);
        let tick_s = tick_t0.elapsed().as_secs_f64();
        let hit_rate = if stats.unique_routes > 0 {
            stats.cache_hits as f64 / stats.unique_routes as f64 * 100.0
        } else {
            0.0
        };
        if tick == TICKS {
            warm_hit_rate = hit_rate;
        }
        ticks.row(vec![
            tick.to_string(),
            stats.unique_routes.to_string(),
            stats.routes_computed.to_string(),
            stats.cache_hits.to_string(),
            format!("{hit_rate:.1}%"),
            format!("{:.1}", queries.len() as f64 / tick_s.max(1e-9)),
        ])?;
    }

    // -- Concurrent clients: N client threads over one `Service` (the
    //    exact facade the daemon serves), each issuing single-gap
    //    `Impute` requests over the shared route set — the admission
    //    layer coalescing them into shared engine flushes vs the
    //    per-request direct path. Cold = first wave on a fresh service,
    //    warm = second wave over the now-resident route cache.
    let model_bytes = model.to_bytes();
    // Every client sweeps the same corridor (overlapping routes — the
    // recurring-traffic shape the daemon sees): the cold wave is one
    // sweep per client over an empty cache, so concurrent connections
    // ask for the same uncached routes at the same time; the warm waves
    // repeat the sweep against the now-resident cache.
    let cold_set: Vec<GapQuery> = queries[..cases.len() * 2.min(REPEAT)].to_vec();
    let warm_set: Vec<GapQuery> = queries.clone();
    let mut concurrent = MarkdownTable::new(vec![
        "Clients",
        "Direct cold q/s",
        "Coalesced cold q/s",
        "Cold speedup",
        "Direct warm q/s",
        "Coalesced warm q/s",
        "Warm speedup",
        "Warm vs 1-conn direct",
    ])
    .with_context(id);
    let run_wave = |service: &std::sync::Arc<habit_service::Service>,
                    clients: usize,
                    per_client: &[GapQuery]|
     -> f64 {
        let barrier = std::sync::Barrier::new(clients);
        let wall_s = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        let t0 = Instant::now();
                        for q in per_client {
                            service
                                .handle(&habit_service::Request::Impute {
                                    gap: *q,
                                    provenance: false,
                                })
                                .expect("serving impute");
                        }
                        t0.elapsed().as_secs_f64()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .fold(0.0f64, f64::max)
        });
        (per_client.len() * clients) as f64 / wall_s.max(1e-9)
    };
    let serve_cell = |clients: usize, coalesce: bool| -> Result<(f64, f64)> {
        let svc = std::sync::Arc::new(habit_service::Service::with_model(
            habit_service::ServiceConfig {
                threads: 4,
                cache_capacity: CACHE,
            },
            HabitModel::from_bytes(&model_bytes)
                .map_err(|e| ReportError::experiment(id, format!("model round trip: {e}")))?,
        ));
        if coalesce {
            // Flush at three quarters of the in-flight population so a
            // flush never idles waiting for the last straggler to be
            // rescheduled; the window is only the backstop.
            svc.enable_admission(habit_service::AdmissionConfig {
                batch_window_us: 100,
                batch_max_gaps: (clients * 3 / 4).max(1),
            });
        }
        let cold = run_wave(&svc, clients, &cold_set);
        let warm = run_wave(&svc, clients, &warm_set);
        svc.shutdown_admission();
        Ok((cold, warm))
    };
    // Interleaved best-of-N rounds (the same discipline as
    // `route_bench`): every cell is measured once per round, so
    // machine-wide drift between cells cancels instead of landing on
    // whichever cell ran last.
    const CONCURRENT_ROUNDS: usize = 3;
    let client_counts = [1usize, 2, 4, 8, 16, 32];
    let mut cold_best = [[0.0f64; 2]; 6];
    let mut warm_best = [[0.0f64; 2]; 6];
    for _round in 0..CONCURRENT_ROUNDS {
        for (ci, &clients) in client_counts.iter().enumerate() {
            for (mi, coalesce) in [false, true].into_iter().enumerate() {
                let (cold, warm) = serve_cell(clients, coalesce)?;
                cold_best[ci][mi] = cold_best[ci][mi].max(cold);
                warm_best[ci][mi] = warm_best[ci][mi].max(warm);
            }
        }
    }
    let direct_warm_1conn = warm_best[0][0];
    let mut best_cold_speedup = (0usize, 0.0f64);
    let mut best_warm_vs_1conn = (0usize, 0.0f64);
    for (ci, &clients) in client_counts.iter().enumerate() {
        let (direct_cold, coalesced_cold) = (cold_best[ci][0], cold_best[ci][1]);
        let (direct_warm, coalesced_warm) = (warm_best[ci][0], warm_best[ci][1]);
        let cold_speedup = coalesced_cold / direct_cold.max(1e-9);
        let warm_speedup = coalesced_warm / direct_warm.max(1e-9);
        // The headline ratio the issue asks for: coalesced concurrent
        // throughput against the one-connection-at-a-time direct path.
        let warm_vs_1conn = coalesced_warm / direct_warm_1conn.max(1e-9);
        if clients >= 4 && cold_speedup > best_cold_speedup.1 {
            best_cold_speedup = (clients, cold_speedup);
        }
        if clients >= 4 && warm_vs_1conn > best_warm_vs_1conn.1 {
            best_warm_vs_1conn = (clients, warm_vs_1conn);
        }
        concurrent.row(vec![
            clients.to_string(),
            format!("{direct_cold:.1}"),
            format!("{coalesced_cold:.1}"),
            format!("{cold_speedup:.2}x"),
            format!("{direct_warm:.1}"),
            format!("{coalesced_warm:.1}"),
            format!("{warm_speedup:.2}x"),
            format!("{warm_vs_1conn:.2}x"),
        ])?;
    }

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut concurrent_section = ReportSection::titled(
        "Concurrent clients — admission coalescing vs per-request direct path",
        concurrent,
    );
    concurrent_section.notes.push(format!(
        "Each client thread drives single-gap `Impute` requests through one shared \
         `habit_service::Service` — the same facade `habit serve` answers from — and every \
         client sweeps the same route set (recurring corridor traffic). Coalesced cells enable \
         the daemon's admission layer (window 100 µs, flush at 3N/4 gaps so a flush never \
         idles on the last straggler), so concurrent \
         requests share one dedup + route-cache engine pass per flush; direct cells pay one \
         engine pass per request. Answers are byte-identical either way (pinned by the \
         service/engine suites and the serve e2e). Every cell is the best of \
         {CONCURRENT_ROUNDS} interleaved rounds on a fresh service (cold = first sweep, \
         warm = a full repeat sweep over the resident cache)."
    ));
    concurrent_section.notes.push(format!(
        "The cold column is where coalescing earns its keep: concurrent connections asking for \
         the same not-yet-cached route are deduplicated into a single A* search per flush, \
         while the direct path lets every connection that misses race its own search. On a warm \
         cache every request is an LRU hit either way, so what coalescing amortizes is the \
         per-pass engine overhead — the last column compares against the issue's baseline, \
         the one-connection-at-a-time direct path, and grows with concurrency as flushes get \
         fuller. Same-concurrency warm ratios carry the coalesced path's two extra context \
         switches per request (queue + wake) undiluted; this host exposes {cores} core(s), and \
         with more cores the shared flush also parallelizes across the engine pool, which the \
         direct single-gap path cannot."
    ));
    let mut fit_section = ReportSection::titled("Sharded fit", {
        let mut fit_table = MarkdownTable::new(vec![
            "Fit path",
            "Shards",
            "Wall (s)",
            "Model bytes identical",
        ])
        .with_context(id);
        fit_table.row(vec![
            "sequential".to_string(),
            "1".to_string(),
            fmt_s(fit_seq_s),
            "-".to_string(),
        ])?;
        fit_table.row(vec![
            "sharded (4 threads)".to_string(),
            SHARDS.to_string(),
            fmt_s(fit_shard_s),
            "yes".to_string(),
        ])?;
        fit_table
    });
    fit_section.notes.push(format!(
        "Host exposes {cores} core(s); on a single-core host the batch speedup comes from \
         route dedup and caching, and thread scaling is expected to be flat. The byte-identical \
         check means sharding is a pure execution detail: same model, any parallelism."
    ));

    Ok(ExperimentReport {
        id: id.into(),
        title: "Throughput — batched imputation serving [KIEL]".into(),
        paper_ref: "Table 4 scaled out (beyond the paper)".into(),
        paper_expected: "The paper reports sub-millisecond single-query latency; a serving layer \
                         should multiply that into batch throughput: deduplicating identical \
                         cell-pair searches and caching routes must beat the one-query-at-a-time \
                         loop by ≥2x on recurring traffic, without changing any answer."
            .into(),
        reproduction: format!(
            "Batch at 4 threads reached {speedup_at_4:.2}x the sequential throughput \
             ({} queries over {} routes); warm-cache ticks hit {warm_hit_rate:.0}% of routes in \
             the LRU; admission coalescing at {} concurrent connections served {:.2}x the \
             single-connection per-request throughput on a warm cache and {:.2}x the \
             same-concurrency direct path on a cold cache at {} connections \
             (cross-connection dedup); sharded fit byte-identical: {identical}.",
            queries.len(),
            cases.len(),
            best_warm_vs_1conn.0,
            best_warm_vs_1conn.1,
            best_cold_speedup.1,
            best_cold_speedup.0,
        ),
        params: vec![
            param("repeat", REPEAT),
            param("ticks", TICKS),
            param("threads", "1|2|4"),
            param("clients", "1|2|4|8|16|32"),
            param("concurrent_rounds", CONCURRENT_ROUNDS),
            param("batch_window_us", 100),
            param("cache_entries", CACHE),
            param("shards", SHARDS),
            param("gap_s", 3600),
            param("seed", seed),
        ],
        sections: vec![
            ReportSection::titled("Serving throughput (cold cache per run)", table),
            ReportSection::titled("Route cache across serving ticks (4 threads)", ticks),
            concurrent_section,
            fit_section,
        ],
        provenance: provenance(seed, t0),
    })
}

/// Incremental refit — persistable `FitState` vs from-scratch fit (KIEL).
///
/// Models the production "absorb a new day of trips" loop the daemon's
/// `refit` operation serves: the KIEL training trips are split into a
/// fitted history and a delta of the newest trips (by trip id, so the
/// split respects whole-trip boundaries), the history's fit state is
/// what a `fit --save-state` blob embeds, and the delta merges in
/// through `habit_engine::refit_model`. For each delta fraction the
/// refit wall-clock is compared against a from-scratch sharded fit over
/// history ∪ delta, and the refitted model's full (state-embedding)
/// serialization is checked **byte-identical** to the from-scratch one
/// — the same contract the engine's property tests pin at small scale.
pub fn incremental_report(kiel: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let id = "incremental";
    const SHARDS: usize = 4;
    let config = HabitConfig::with_r_t(9, 100.0);
    let pool = ThreadPool::new(4);

    let mut trips = kiel.train.clone();
    if trips.len() < 2 {
        return Err(ReportError::experiment(
            id,
            "need at least 2 KIEL trips to split into history and delta",
        ));
    }
    // Newest trips (highest ids) form the delta — "the new day".
    trips.sort_by_key(|t| t.trip_id);
    let union_table = ais::trips_to_table(&trips);

    let fit_err = |e: habit_core::HabitError| ReportError::experiment(id, format!("fit: {e}"));
    // Reference: one from-scratch sharded fit over everything.
    let full_t0 = Instant::now();
    let full = fit_sharded(&union_table, config, SHARDS, &pool).map_err(fit_err)?;
    let full_s = full_t0.elapsed().as_secs_f64();
    let full_bytes = full.to_bytes_full();
    let state_bytes = full.state().map_or(0, |s| s.storage_bytes());

    let mut table = MarkdownTable::new(vec![
        "Delta",
        "Delta trips",
        "Delta reports",
        "Fit history (s)",
        "Refit delta (s)",
        "Full fit (s)",
        "Refit speedup",
        "Byte-identical",
    ])
    .with_context(id);

    let mut speedup_at_10 = 0.0f64;
    let mut refit_s_at_10 = 0.0f64;
    let mut all_identical = true;
    for delta_frac in [0.05f64, 0.10, 0.20] {
        let delta_n =
            ((trips.len() as f64 * delta_frac).round() as usize).clamp(1, trips.len() - 1);
        let split = trips.len() - delta_n;
        let history_table = ais::trips_to_table(&trips[..split]);
        let delta_table = ais::trips_to_table(&trips[split..]);
        let delta_reports = delta_table.num_rows();

        // Setup: the saved state a production system would already hold.
        let hist_t0 = Instant::now();
        let history_model = fit_sharded(&history_table, config, SHARDS, &pool).map_err(fit_err)?;
        let hist_s = hist_t0.elapsed().as_secs_f64();

        // The measured operation: absorb the delta and re-finalize.
        let refit_t0 = Instant::now();
        let (refitted, outcome) =
            refit_model(&history_model, &delta_table, SHARDS, &pool).map_err(fit_err)?;
        let refit_s = refit_t0.elapsed().as_secs_f64();

        let identical = refitted.to_bytes_full() == full_bytes;
        all_identical &= identical;
        let speedup = full_s / refit_s.max(1e-9);
        if (delta_frac - 0.10).abs() < 1e-9 {
            speedup_at_10 = speedup;
            refit_s_at_10 = refit_s;
        }
        table.row(vec![
            format!("{:.0}%", delta_frac * 100.0),
            outcome.trips_added.to_string(),
            delta_reports.to_string(),
            fmt_s(hist_s),
            fmt_s(refit_s),
            fmt_s(full_s),
            format!("{speedup:.2}x"),
            if identical { "yes" } else { "NO" }.to_string(),
        ])?;
    }
    if !all_identical {
        return Err(ReportError::experiment(
            id,
            "a refitted model diverged byte-wise from the from-scratch fit",
        ));
    }
    // The headline contract: refitting a small delta must beat the
    // from-scratch fit. Only enforced above a noise floor — at smoke
    // scale (HABIT_EVAL_SCALE ≈ 0.05) both sides are sub-millisecond
    // and pure scheduler jitter would decide the comparison.
    if refit_s_at_10 >= full_s && full_s > 0.05 {
        return Err(ReportError::experiment(
            id,
            format!(
                "refit of the 10% delta ({refit_s_at_10:.3}s) was not faster than the full fit \
                 ({full_s:.3}s) — the incremental seam regressed"
            ),
        ));
    }

    let mut storage = MarkdownTable::new(vec!["Artifact", "Bytes"]).with_context(id);
    storage.row(vec![
        "model blob (lean v1: graph only)".to_string(),
        full.to_bytes().len().to_string(),
    ])?;
    storage.row(vec![
        "embedded fit state (HFS1)".to_string(),
        state_bytes.to_string(),
    ])?;
    storage.row(vec![
        "refittable blob (v2 container)".to_string(),
        full_bytes.len().to_string(),
    ])?;
    let mut storage_section = ReportSection::titled("Fit-state storage cost", storage);
    storage_section.notes.push(
        "The fit state keeps every accumulator (median buffers, HLL registers) and so \
         dwarfs the finalized graph — the price of absorbing deltas without re-scanning \
         history. `fit` writes the lean v1 blob by default; `fit --save-state` opts into \
         the v2 container."
            .to_string(),
    );

    Ok(ExperimentReport {
        id: id.into(),
        title: "Incremental refit — persistable fit state vs full refit [KIEL]".into(),
        paper_ref: "§3.2 graph generation, operationalized (beyond the paper)".into(),
        paper_expected: "The paper rebuilds the habit graph from the full AIS history; a \
                         production daemon must absorb each new day of trips without \
                         re-scanning months of data, and the shortcut must not change the \
                         model by a single byte."
            .into(),
        reproduction: format!(
            "Refitting a 10% delta took {} vs {} for the from-scratch fit ({speedup_at_10:.1}x \
             faster); every refitted model was byte-identical to the full fit, state included.",
            fmt_s(refit_s_at_10),
            fmt_s(full_s),
        ),
        params: vec![
            param("r", 9),
            param("t_m", 100),
            param("delta_frac", "5%|10%|20%"),
            param("shards", SHARDS),
            param("threads", 4),
            param("seed", seed),
        ],
        sections: vec![
            ReportSection::titled("Refit vs full fit (wall clock)", table),
            storage_section,
        ],
        provenance: provenance(seed, t0),
    })
}

/// Route-engine hot path — CSR + arena A* + in-place RDP vs the
/// retained naive reference (KIEL).
///
/// ISSUE 7 tentpole experiment. The serving path (`impute` →
/// `route_between` on the frozen [`CsrGraph`] with a pooled
/// `SearchArena`, tail simplification via `rdp_timed_in_place` with a
/// pooled scratch) is benchmarked stage by stage against the retained
/// naive path (`impute_naive` → `route_between_naive` on the pointer
/// `DiGraph` with per-call `Vec` allocations, recursive sub-path-cloning
/// `rdp_indices_reference`). Before any timing, every gap case is
/// answered by both paths and checked **byte-identical** — cells, cost
/// bits, expanded count, and every output point — at any scale, so the
/// CI smoke run exercises the equivalence even when the timings are
/// noise.
///
/// The speed contract is shaped by that byte-identity pin: both search
/// backends are forced to settle nodes in exactly the same sequence, so
/// the route-search stage can only win per-visit constants over a naive
/// reference that already runs dense-array A* on a std binary heap. The
/// structural win lands on the impute *tail* (projection + timestamps +
/// RDP, the part the engine replays per query over cached routes),
/// where the in-place kernel replaces recursive sub-path cloning. The
/// full-scale committed run therefore enforces a ≥2x tail speedup plus
/// a no-regression floor on full end-to-end impute, above noise floors;
/// all timings are min-of-N sweeps.
///
/// [`CsrGraph`]: mobgraph::CsrGraph
pub fn route_bench_report(kiel: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let id = "route_bench";
    const REPEAT: usize = 30;
    const RDP_REPEAT: usize = 30;
    const RDP_SPACING_M: f64 = 25.0;
    let config = HabitConfig::with_r_t(9, 100.0);
    let tol_m = config.rdp_tolerance_m;

    let train_table = ais::trips_to_table(&kiel.train);
    let model = HabitModel::fit(&train_table, config)
        .map_err(|e| ReportError::experiment(id, format!("fit: {e}")))?;
    let cases = kiel.gap_cases(3600, seed);
    if cases.is_empty() {
        return Err(ReportError::experiment(id, "no gap cases on KIEL"));
    }

    // -- Equivalence gate (runs at any scale, including CI smoke): the
    //    hot path must answer every query byte-identically to the naive
    //    reference before its speed means anything.
    let mut imputable = 0usize;
    for case in &cases {
        match (model.impute(&case.query), model.impute_naive(&case.query)) {
            (Ok(fast), Ok(naive)) => {
                let identical = fast.cells == naive.cells
                    && fast.cost.to_bits() == naive.cost.to_bits()
                    && fast.expanded == naive.expanded
                    && fast.raw_point_count == naive.raw_point_count
                    && fast.points.len() == naive.points.len()
                    && fast.points.iter().zip(&naive.points).all(|(a, b)| {
                        a.pos.lon.to_bits() == b.pos.lon.to_bits()
                            && a.pos.lat.to_bits() == b.pos.lat.to_bits()
                            && a.t == b.t
                    });
                if !identical {
                    return Err(ReportError::experiment(
                        id,
                        format!(
                            "hot path diverged byte-wise from the naive reference on trip {}",
                            case.trip_id
                        ),
                    ));
                }
                imputable += 1;
            }
            (Err(_), Err(_)) => {}
            (fast, naive) => {
                return Err(ReportError::experiment(
                    id,
                    format!(
                        "outcome drift on trip {}: hot path ok={} vs naive ok={}",
                        case.trip_id,
                        fast.is_ok(),
                        naive.is_ok()
                    ),
                ));
            }
        }
    }
    if imputable == 0 {
        return Err(ReportError::experiment(
            id,
            "no imputable gap cases to compare",
        ));
    }

    // Interleaved min-of-N sweep timer: each round times one naive
    // sweep then one hot sweep over the full case set, and each side
    // keeps its best round. Taking minima defeats scheduler and
    // frequency jitter (round-to-round wall clock swings ±30% on a
    // shared box); interleaving defeats the slower systematic drift —
    // if the machine speeds up halfway through, both sides see it
    // instead of whichever happened to be timed second.
    fn best_pair(rounds: usize, mut naive: impl FnMut(), mut hot: impl FnMut()) -> (f64, f64) {
        let (mut best_naive, mut best_hot) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..rounds {
            let t = Instant::now();
            naive();
            best_naive = best_naive.min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            hot();
            best_hot = best_hot.min(t.elapsed().as_secs_f64());
        }
        (best_naive, best_hot)
    }

    // -- Stage 1: route search. Endpoints snapped once up front so the
    //    timings isolate A* (CSR + pooled arena + baked edge records vs
    //    pointer graph with three O(n) Vec allocations per call).
    let mut pairs = Vec::new();
    for case in &cases {
        if let (Ok((s, _)), Ok((g, _))) = (
            model.snap(&case.query.start.pos),
            model.snap(&case.query.end.pos),
        ) {
            pairs.push((s, g));
        }
    }
    if pairs.is_empty() {
        return Err(ReportError::experiment(id, "no snappable cell pairs"));
    }
    let mut naive_cost = 0.0f64;
    let mut fast_cost = 0.0f64;
    let mut fast_expanded = 0usize;
    let (search_naive_s, search_fast_s) = best_pair(
        REPEAT,
        || {
            for &(s, g) in &pairs {
                if let Ok(r) = model.route_between_naive(s, g) {
                    naive_cost += r.cost;
                }
            }
        },
        || {
            for &(s, g) in &pairs {
                if let Ok(r) = model.route_between(s, g) {
                    fast_cost += r.cost;
                    fast_expanded += r.expanded;
                }
            }
        },
    );
    if naive_cost.to_bits() != fast_cost.to_bits() {
        return Err(ReportError::experiment(
            id,
            "accumulated route costs differ between backends",
        ));
    }

    // -- Stage 2: trajectory simplification on dense vessel polylines
    //    (ground-truth gap interiors resampled to 25 m spacing, the
    //    density regime where RDP does real pruning work against the
    //    100 m tolerance). Both sides pay one buffer copy per path —
    //    the reference clones positions out of the timed points exactly
    //    as the old tail did; the kernel clones the timed points to
    //    simplify them in place.
    let dense: Vec<Vec<TimedPoint>> = cases
        .iter()
        .map(|c| resample_timed_max_spacing(&c.truth, RDP_SPACING_M))
        .filter(|p| p.len() >= 3)
        .collect();
    if dense.is_empty() {
        return Err(ReportError::experiment(
            id,
            "no dense polylines for the RDP stage",
        ));
    }
    let mut ref_kept = 0usize;
    let mut fast_kept = 0usize;
    let mut scratch = RdpScratch::new();
    let (rdp_naive_s, rdp_fast_s) = best_pair(
        RDP_REPEAT,
        || {
            for path in &dense {
                let positions: Vec<GeoPoint> = path.iter().map(|p| p.pos).collect();
                ref_kept += rdp_indices_reference(&positions, tol_m).len();
            }
        },
        || {
            for path in &dense {
                let mut pts = path.clone();
                rdp_timed_in_place(&mut pts, tol_m, &mut scratch);
                fast_kept += pts.len();
            }
        },
    );
    if ref_kept != fast_kept {
        return Err(ReportError::experiment(
            id,
            "RDP kept-vertex totals differ between the kernel and the reference",
        ));
    }

    // -- Stage 3: the impute tail end to end — projection, timestamp
    //    allocation, and RDP exactly as the engine replays a cached
    //    route for each query. Routes are resolved once up front; the
    //    two sides then run the retained naive tail (recursive
    //    sub-path-cloning RDP) vs the in-place kernel over them.
    let mut tail_inputs = Vec::new();
    for case in &cases {
        if let (Ok((s, _)), Ok((g, _))) = (
            model.snap(&case.query.start.pos),
            model.snap(&case.query.end.pos),
        ) {
            if let Ok(route) = model.route_between(s, g) {
                tail_inputs.push((&case.query, route, s, g));
            }
        }
    }
    if tail_inputs.is_empty() {
        return Err(ReportError::experiment(
            id,
            "no resolved routes for the tail stage",
        ));
    }
    // The tail is microseconds per call, so each sweep replays the case
    // set TAIL_INNER times to push the sweep into a robustly timeable
    // range (a couple of ms) before min-of-N picks the best sweep.
    const TAIL_INNER: usize = 20;
    let mut tail_naive_pts = 0usize;
    let mut tail_fast_pts = 0usize;
    let (tail_naive_s, tail_fast_s) = best_pair(
        REPEAT,
        || {
            for _ in 0..TAIL_INNER {
                for (gap, route, s, g) in &tail_inputs {
                    tail_naive_pts += model
                        .imputation_from_route_naive(gap, route, *s, *g)
                        .points
                        .len();
                }
            }
        },
        || {
            for _ in 0..TAIL_INNER {
                for (gap, route, s, g) in &tail_inputs {
                    tail_fast_pts += model.imputation_from_route(gap, route, *s, *g).points.len();
                }
            }
        },
    );
    if tail_naive_pts != tail_fast_pts {
        return Err(ReportError::experiment(
            id,
            "imputed point totals differ between the tail backends",
        ));
    }

    // -- Stage 4: end-to-end imputation, the serving hot path as the
    //    engine and daemon call it.
    let mut naive_ok = 0usize;
    let mut fast_ok = 0usize;
    let (e2e_naive_s, e2e_fast_s) = best_pair(
        REPEAT,
        || {
            for case in &cases {
                if model.impute_naive(&case.query).is_ok() {
                    naive_ok += 1;
                }
            }
        },
        || {
            for case in &cases {
                if model.impute(&case.query).is_ok() {
                    fast_ok += 1;
                }
            }
        },
    );
    if naive_ok != fast_ok {
        return Err(ReportError::experiment(
            id,
            "imputation success counts differ between backends",
        ));
    }

    let speedup = |naive: f64, fast: f64| naive / fast.max(1e-9);
    let tail_speedup = speedup(tail_naive_s, tail_fast_s);
    let e2e_speedup = speedup(e2e_naive_s, e2e_fast_s);
    // The headline contract, enforced only on the full-scale committed
    // run and above noise floors (at smoke scale both sides finish in
    // microseconds and jitter would decide it): the reworked impute
    // tail must beat the retained naive tail by ≥2x end to end, and the
    // full impute must not regress. Route search is deliberately NOT
    // gated at 2x: byte-identity pins both backends to the same settle
    // sequence, so against a reference that already runs dense-array A*
    // on a std binary heap only constant-factor per-visit wins exist
    // there.
    if experiments::eval_scale() >= 1.0 {
        if tail_naive_s > 5e-4 && tail_speedup < 2.0 {
            return Err(ReportError::experiment(
                id,
                format!(
                    "impute-tail speedup {tail_speedup:.2}x fell below the 2x contract \
                     (naive {tail_naive_s:.5}s vs hot {tail_fast_s:.5}s per sweep)"
                ),
            ));
        }
        if e2e_naive_s > 0.001 && e2e_speedup < 0.9 {
            return Err(ReportError::experiment(
                id,
                format!(
                    "end-to-end impute regressed: {e2e_speedup:.2}x \
                     (naive {e2e_naive_s:.4}s vs hot {e2e_fast_s:.4}s per sweep)"
                ),
            ));
        }
    }

    let mut table = MarkdownTable::new(vec![
        "Stage",
        "Naive path",
        "Hot path",
        "Calls/sweep",
        "Naive (s)",
        "Hot (s)",
        "Speedup",
    ])
    .with_context(id);
    table.row(vec![
        "route search".to_string(),
        "DiGraph A*, per-call Vecs".to_string(),
        "CSR A*, arena + baked edges".to_string(),
        pairs.len().to_string(),
        fmt_s(search_naive_s),
        fmt_s(search_fast_s),
        format!("{:.2}x", speedup(search_naive_s, search_fast_s)),
    ])?;
    table.row(vec![
        "RDP simplification".to_string(),
        "recursive, clones sub-paths".to_string(),
        "iterative, in-place".to_string(),
        dense.len().to_string(),
        fmt_s(rdp_naive_s),
        fmt_s(rdp_fast_s),
        format!("{:.2}x", speedup(rdp_naive_s, rdp_fast_s)),
    ])?;
    table.row(vec![
        "impute tail".to_string(),
        "project + naive RDP".to_string(),
        "project + in-place RDP".to_string(),
        (tail_inputs.len() * TAIL_INNER).to_string(),
        fmt_s(tail_naive_s),
        fmt_s(tail_fast_s),
        format!("{tail_speedup:.2}x"),
    ])?;
    table.row(vec![
        "end-to-end impute".to_string(),
        "impute_naive()".to_string(),
        "impute()".to_string(),
        cases.len().to_string(),
        fmt_s(e2e_naive_s),
        fmt_s(e2e_fast_s),
        format!("{e2e_speedup:.2}x"),
    ])?;
    let mut stage_section = ReportSection::titled("Stage-by-stage wall clock", table);
    stage_section.notes.push(format!(
        "Before timing, all {} gap cases ({imputable} imputable) were answered by both paths \
         and checked byte-identical: cells, cost bits, A* expansion counts, and every output \
         point. The speedup is a pure execution-plan change — the frontier order (estimate, \
         descending path cost, external node id) is a strict total order, so both backends \
         settle nodes in exactly the same sequence.",
        cases.len(),
    ));
    stage_section.notes.push(
        "That pin is also why route search sits near parity: the naive reference already \
         runs dense-array A* over a std binary heap, so with identical expansions the \
         CSR/arena/baked-edge kernel can only save per-visit constants (hash lookup, cell \
         decode, ln, allocation), not search work. The structural win is in the tail, \
         where the in-place RDP kernel replaces recursion that clones a sub-path per level."
            .to_string(),
    );
    stage_section.notes.push(format!(
        "Each timing is the best of {REPEAT} sweep rounds over the full case set, with \
         naive and hot sweeps interleaved within each round (min-of-N per side): minima \
         defeat scheduler/frequency jitter, interleaving defeats drift between the two \
         timed blocks. Workload: graph of {} nodes / {} edges; the route stage settled {} nodes per \
         search on average (identical on both backends by construction).",
        model.csr().node_count(),
        model.csr().edge_count(),
        fast_expanded / (pairs.len() * REPEAT).max(1),
    ));

    Ok(ExperimentReport {
        id: id.into(),
        title: "Route engine — CSR + arena A* + in-place RDP vs naive path [KIEL]".into(),
        paper_ref: "§3.3 routing + §3.4 simplification, engineered (beyond the paper)".into(),
        paper_expected: "The paper's imputation tail — A* over the habit graph, then \
                         projection and RDP simplification — is specified in textbook form. \
                         Reworking it (frozen CSR with baked per-edge costs, pooled search \
                         arena, iterative in-place RDP) must not change a single output byte; \
                         under that pin the search stage can only win constants, so the \
                         contract is a ≥2x speedup on the impute tail with no end-to-end \
                         regression."
            .into(),
        reproduction: format!(
            "The reworked impute tail ran {tail_speedup:.2}x faster than the retained naive \
             tail (RDP kernel alone {:.2}x, route search {:.2}x, full impute {e2e_speedup:.2}x \
             per sweep), with every answer byte-identical across {imputable} imputable gap \
             cases.",
            speedup(rdp_naive_s, rdp_fast_s),
            speedup(search_naive_s, search_fast_s),
        ),
        params: vec![
            param("r", 9),
            param("t_m", tol_m),
            param("repeat", REPEAT),
            param("rdp_repeat", RDP_REPEAT),
            param("rdp_spacing_m", RDP_SPACING_M),
            param("gap_s", 3600),
            param("seed", seed),
        ],
        sections: vec![stage_section],
        provenance: provenance(seed, t0),
    })
}

/// Fleet scale — sharded serving via `habit-fleet` (KIEL).
///
/// Fits the KIEL model as a fleet of per-shard blobs at 1/2/4/8 shards
/// (`habit fit --shards-out`), answers the same gap cases through the
/// scatter/gather [`FleetRouter`] each time, and compares quality and
/// throughput against the single-blob `BatchImputer` baseline. Two
/// contracts are enforced, not just reported: a **one-shard fleet is
/// byte-identical** to single-blob serving on every answer, and the
/// **seam-stitched cross-shard routes** (each leg only sees its shard's
/// subgraph, so the stitch is approximate) must stay within 1.5x of the
/// single-blob mean DTW — the quality gate the router's stitch
/// documentation points at.
pub fn fleet_scale_report(kiel: &Bench, seed: u64) -> Result<ExperimentReport> {
    let t0 = Instant::now();
    let id = "fleet_scale";
    const CACHE: usize = 4096;
    const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];
    let config = HabitConfig::with_r_t(9, 100.0);
    let pool = ThreadPool::new(4);
    let train_table = ais::trips_to_table(&kiel.train);

    let cases = kiel.gap_cases(3600, seed);
    if cases.is_empty() {
        return Err(ReportError::experiment(id, "no gap cases on KIEL"));
    }
    let queries: Vec<GapQuery> = cases.iter().map(|c| c.query).collect();
    let dtw_of = |i: usize, imp: &habit_core::Imputation| -> Option<f64> {
        let pts: Vec<GeoPoint> = imp.points.iter().map(|p| p.pos).collect();
        let truth: Vec<GeoPoint> = cases[i].truth.iter().map(|p| p.pos).collect();
        eval::resampled_dtw_m(&pts, &truth)
    };

    // -- Baseline: the single-blob batch imputer over the whole graph.
    let model = std::sync::Arc::new(
        fit_sharded(&train_table, config, 4, &pool)
            .map_err(|e| ReportError::experiment(id, format!("single fit: {e}")))?,
    );
    let imputer = BatchImputer::new(std::sync::Arc::clone(&model), CACHE);
    let s_t0 = Instant::now();
    let (single_results, _) = imputer.impute_batch(&queries, &pool);
    let single_s = s_t0.elapsed().as_secs_f64();
    let single_qps = queries.len() as f64 / single_s.max(1e-9);
    let single_errors: Vec<f64> = single_results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().ok().and_then(|imp| dtw_of(i, imp)))
        .collect();
    let single_ok = single_results.iter().filter(|r| r.is_ok()).count();
    let single_mean = mean(&single_errors);

    let mut table = MarkdownTable::new(vec![
        "Shards",
        "In-shard",
        "Cross",
        "Stitched",
        "Rescued",
        "Imputed",
        "Mean DTW (m)",
        "Seam DTW (m)",
        "Storage (MB)",
        "Queries/s",
    ])
    .with_context(id);
    table.row(vec![
        "1 blob (baseline)".to_string(),
        queries.len().to_string(),
        "0".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{single_ok}/{}", queries.len()),
        fmt_m(single_mean),
        "-".to_string(),
        fmt_mb(model.storage_bytes()),
        format!("{single_qps:.1}"),
    ])?;

    let root = std::env::temp_dir().join(format!("habit-fleet-scale-{}", std::process::id()));
    let mut one_shard_identical = true;
    let mut worst_ratio = 0.0f64;
    let mut stitched_total = 0u64;
    let mut all_seam_errors: Vec<f64> = Vec::new();
    for shards in SHARD_COUNTS {
        let dir = root.join(format!("s{shards}"));
        let fleet_err = |stage: &'static str| {
            move |e: habit_fleet::FleetError| {
                ReportError::experiment(id, format!("{stage} at {shards} shards: {e}"))
            }
        };
        let manifest =
            fit_fleet(&train_table, config, shards, &pool, &dir).map_err(fleet_err("fit"))?;
        let mut storage = manifest.to_bytes().len() as u64;
        for blob in manifest.blobs.values() {
            storage += std::fs::metadata(dir.join(&blob.path))
                .map(|m| m.len())
                .unwrap_or(0);
        }
        // Production topology: the fleet with the global blob as
        // fallback (`serve --shards DIR --model BLOB`). A second,
        // fallback-less router isolates what the shards alone answer —
        // the seam-stitch coverage and quality.
        let fleet_only =
            FleetRouter::new(load_fleet(&dir).map_err(fleet_err("load"))?, None, CACHE)
                .map_err(fleet_err("route"))?;
        let router = FleetRouter::new(
            load_fleet(&dir).map_err(fleet_err("load"))?,
            Some(std::sync::Arc::clone(&model)),
            CACHE,
        )
        .map_err(fleet_err("route"))?;

        let mut in_shard = 0usize;
        let mut cross: Vec<usize> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            match fleet_only.classify(q) {
                Ok(Dispatch::InShard(_)) => in_shard += 1,
                Ok(Dispatch::CrossShard { .. }) => cross.push(i),
                _ => {}
            }
        }
        let (nf_results, _, nf_stats) = fleet_only.impute_batch(&queries, &pool, false, None, id);
        let seam_errors: Vec<f64> = cross
            .iter()
            .filter_map(|&i| nf_results[i].as_ref().ok().and_then(|imp| dtw_of(i, imp)))
            .collect();
        stitched_total += nf_stats.seam_routes;
        all_seam_errors.extend(&seam_errors);

        let f_t0 = Instant::now();
        let (results, _, fleet_stats) = router.impute_batch(&queries, &pool, false, None, id);
        let wall_s = f_t0.elapsed().as_secs_f64();
        let qps = queries.len() as f64 / wall_s.max(1e-9);

        if shards == 1 {
            // The headline contract: one shard, same bytes.
            for (a, b) in results.iter().zip(&single_results) {
                let same = match (a, b) {
                    (Ok(x), Ok(y)) => {
                        x.points == y.points && x.cells == y.cells && x.cost == y.cost
                    }
                    (Err(_), Err(_)) => true,
                    _ => false,
                };
                if !same {
                    one_shard_identical = false;
                }
            }
            if !one_shard_identical {
                return Err(ReportError::experiment(
                    id,
                    "one-shard fleet answers differ from single-blob serving",
                ));
            }
        }

        let errors: Vec<f64> = results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().ok().and_then(|imp| dtw_of(i, imp)))
            .collect();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let fleet_mean = mean(&errors);
        if single_mean > 0.0 {
            worst_ratio = worst_ratio.max(fleet_mean / single_mean);
        }
        table.row(vec![
            format!("{shards} shard fleet"),
            in_shard.to_string(),
            cross.len().to_string(),
            if cross.is_empty() {
                "-".to_string()
            } else {
                format!("{}/{}", nf_stats.seam_routes, cross.len())
            },
            fleet_stats.fallbacks.to_string(),
            format!("{ok}/{}", queries.len()),
            fmt_m(fleet_mean),
            if seam_errors.is_empty() {
                "-".to_string()
            } else {
                fmt_m(mean(&seam_errors))
            },
            fmt_mb(storage as usize),
            format!("{qps:.1}"),
        ])?;
    }
    std::fs::remove_dir_all(&root).ok();

    // The quality gates: approximate routes are acceptable, silent
    // degradation is not. Enforced only at full scale — smoke runs
    // have too few cross-shard cases for stable means.
    if experiments::eval_scale() >= 1.0 && worst_ratio > 1.5 {
        return Err(ReportError::experiment(
            id,
            format!(
                "fleet mean DTW degraded to {worst_ratio:.2}x the single-blob mean \
                 (gate: 1.5x) — the fallback rescue is losing too much quality"
            ),
        ));
    }
    if experiments::eval_scale() >= 1.0 && all_seam_errors.len() >= 5 && single_mean > 0.0 {
        let seam_ratio = mean(&all_seam_errors) / single_mean;
        if seam_ratio > 3.0 {
            return Err(ReportError::experiment(
                id,
                format!(
                    "seam-stitched routes degraded to {seam_ratio:.2}x the single-blob \
                     mean DTW (gate: 3.0x) — the two-leg stitch is drifting"
                ),
            ));
        }
    }

    let mut section = ReportSection::titled("Quality and throughput vs shard count", table);
    section.notes.push(format!(
        "One-shard fleet answers were checked byte-identical (points, cells, cost bits) to \
         single-blob serving across all {} gap cases — the router is a pure dispatch layer \
         when there is nothing to scatter. Tile→shard ownership is a hash, so a fleet's \
         shards interleave geographically rather than tile contiguously: the two-leg seam \
         stitch only answers cross-shard gaps whose legs stay inside one shard's tiles plus \
         the one-cell boundary halo, and `Stitched` counts exactly those (their DTW is gated \
         ≤3x the single-blob mean at full scale, not byte-pinned). Every other cross-shard \
         gap is rescued by the global fallback blob — the production topology of `habit \
         serve --shards DIR --model BLOB` — keeping the overall mean DTW within 1.5x of the \
         single blob (worst observed here: {worst_ratio:.2}x).",
        queries.len(),
    ));
    Ok(ExperimentReport {
        id: id.into(),
        title: "Fleet scale — sharded serving with seam-stitched routing [KIEL]".into(),
        paper_ref: "Serving architecture beyond the paper (habit-fleet)".into(),
        paper_expected: "Partitioning the habit graph into per-shard model blobs should leave \
                         in-shard answers bit-exact (each shard holds its tiles' full subgraph) \
                         while cross-shard gaps pay a bounded quality cost — a tile-seam \
                         stitch when both legs stay shard-local, the global fallback blob \
                         otherwise; storage and routing overhead should grow mildly with the \
                         shard count."
            .into(),
        reproduction: format!(
            "One-shard fleet byte-identical to single-blob serving: {one_shard_identical}; \
             with the global blob as fallback, worst fleet/single mean-DTW ratio \
             {worst_ratio:.2}x across {SHARD_COUNTS:?} shards; the shards alone stitched \
             {stitched_total} cross-shard routes (mean seam DTW {}).",
            if all_seam_errors.is_empty() {
                "n/a".to_string()
            } else {
                fmt_m(mean(&all_seam_errors))
            },
        ),
        params: vec![
            param("r", 9),
            param("t_m", 100),
            param("shard_counts", "1|2|4|8"),
            param("cache_entries", CACHE),
            param("gap_s", 3600),
            param("seed", seed),
        ],
        sections: vec![section],
        provenance: provenance(seed, t0),
    })
}

/// Runs every experiment in canonical order, sharing one prepared bench
/// per dataset; logs progress to stderr.
pub fn all_reports(seed: u64) -> Result<Vec<ExperimentReport>> {
    let t0 = Instant::now();
    let mut out = Vec::new();
    let log = |label: &str, t0: &Instant| eprintln!("[{}s] {label} done", t0.elapsed().as_secs());

    out.push(table1_report(seed)?);
    log("table1", &t0);
    let dan = Bench::dan(seed);
    let kiel = Bench::kiel(seed);
    let sar = Bench::sar(seed);
    log("bench preparation", &t0);
    out.push(table2_report(&kiel, &sar, seed)?);
    log("table2", &t0);
    out.push(table3_report(&dan, seed)?);
    log("table3", &t0);
    out.push(table4_report(&kiel, &sar, seed)?);
    log("table4", &t0);
    out.push(fig3_report(&dan, seed)?);
    log("fig3", &t0);
    out.push(fig4_report(&dan, seed)?);
    log("fig4", &t0);
    out.push(fig5_report(&kiel, &sar, seed)?);
    log("fig5", &t0);
    out.push(fig6_report(&kiel, seed, 3)?.0);
    log("fig6", &t0);
    out.push(fig7_report(&kiel, &sar, seed)?);
    log("fig7", &t0);
    out.push(ablation_weights_report(&kiel, &sar, seed)?);
    log("ablation_weights", &t0);
    out.push(ablation_medians_report(seed)?);
    log("ablation_medians", &t0);
    out.push(ablation_palmto_report(&kiel, &sar, seed)?);
    log("ablation_palmto", &t0);
    out.push(ablation_fleet_report(&sar, seed)?);
    log("ablation_fleet", &t0);
    out.push(throughput_report(&kiel, seed)?);
    log("throughput", &t0);
    out.push(incremental_report(&kiel, seed)?);
    log("incremental", &t0);
    out.push(route_bench_report(&kiel, seed)?);
    log("route_bench", &t0);
    out.push(fleet_scale_report(&kiel, seed)?);
    log("fleet_scale", &t0);

    debug_assert_eq!(out.len(), EXPERIMENT_ORDER.len());
    for (report, id) in out.iter().zip(EXPERIMENT_ORDER) {
        debug_assert_eq!(report.id, id, "EXPERIMENT_ORDER out of sync");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_report_round_trips() {
        std::env::set_var("HABIT_EVAL_SCALE", "0.05");
        let report = table1_report(42).expect("build");
        std::env::remove_var("HABIT_EVAL_SCALE");
        assert_eq!(report.id, "table1");
        assert_eq!(report.sections.len(), 1);
        assert_eq!(report.sections[0].table.as_ref().unwrap().len(), 3);
        assert!(report.provenance.wall_clock_s > 0.0);
        let back = ExperimentReport::from_json(&report.to_json()).expect("parse");
        assert_eq!(back, report);
    }

    #[test]
    fn medians_report_needs_no_bench() {
        let report = ablation_medians_report(42).expect("build");
        assert_eq!(report.sections.len(), 2);
        assert!(report.reproduction.contains("precision 12"));
    }
}
