//! End-to-end tests of the `habit` executable itself: the full
//! synth → fit → info → impute → repair → export workflow through real
//! process invocations, files and exit codes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn habit(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_habit"))
        .args(args)
        .output()
        .expect("spawn habit binary")
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("habit-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

#[test]
fn full_workflow_through_the_binary() {
    let dir = tmpdir();
    let csv = dir.join("kiel.csv");
    let model = dir.join("kiel.habit");
    let imputed = dir.join("imputed.csv");
    let density = dir.join("density.geojson");

    // synth
    let out = habit(&[
        "synth",
        "--dataset",
        "kiel",
        "--scale",
        "0.05",
        "--seed",
        "7",
        "--out",
        csv.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "synth: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(csv.exists());

    // fit
    let out = habit(&[
        "fit",
        "--input",
        csv.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
        "--resolution",
        "9",
        "--tolerance",
        "100",
    ]);
    assert!(
        out.status.success(),
        "fit: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cells"), "{stdout}");

    // info
    let out = habit(&["info", "--model", model.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resolution r      : 9"), "{stdout}");

    // impute: endpoints on the corridor (read them out of the synth CSV).
    let text = std::fs::read_to_string(&csv).unwrap();
    let mut rows = text.lines().skip(1).filter(|l| !l.is_empty());
    let first: Vec<&str> = rows.next().unwrap().split(',').collect();
    let (lon, lat) = (first[2], first[3]);
    let out = habit(&[
        "impute",
        "--model",
        model.to_str().unwrap(),
        "--from",
        &format!("{lon},{lat},0"),
        "--to",
        &format!("{},{},3600", lon.parse::<f64>().unwrap() + 0.15, lat),
        "--out",
        imputed.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "impute: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&imputed).unwrap();
    assert!(body.starts_with("t,lon,lat"));
    assert!(body.lines().count() >= 3);

    // batch: the same gap three times plus a shifted one, through the
    // concurrent path. Exit 0, non-empty output, a throughput summary.
    let gaps = dir.join("gaps.csv");
    let (lon_f, lat_f) = (lon.parse::<f64>().unwrap(), lat.parse::<f64>().unwrap());
    let mut gap_rows = String::from("lon1,lat1,t1,lon2,lat2,t2\n");
    for k in 0..3 {
        gap_rows.push_str(&format!(
            "{lon_f},{lat_f},{},{},{lat_f},{}\n",
            k * 10,
            lon_f + 0.15,
            3600 + k * 10
        ));
    }
    gap_rows.push_str(&format!(
        "{},{lat_f},0,{},{lat_f},3600\n",
        lon_f + 0.02,
        lon_f + 0.17
    ));
    std::fs::write(&gaps, gap_rows).unwrap();
    let batched = dir.join("batched.csv");
    let out = habit(&[
        "batch",
        "--model",
        model.to_str().unwrap(),
        "--input",
        gaps.to_str().unwrap(),
        "--out",
        batched.to_str().unwrap(),
        "--threads",
        "2",
    ]);
    assert!(
        out.status.success(),
        "batch: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stdout);
    assert!(summary.contains("queries/s"), "{summary}");
    assert!(summary.contains("routes:"), "{summary}");
    let batch_body = std::fs::read_to_string(&batched).unwrap();
    assert!(batch_body.starts_with("gap,t,lon,lat"));
    assert!(batch_body.lines().count() >= 4, "{batch_body}");

    // repair the imputed track with an artificial hole.
    let holed = dir.join("holed.csv");
    let mut kept = String::from("t,lon,lat\n");
    for (i, line) in body.lines().skip(1).enumerate() {
        if i % 7 != 3 {
            kept.push_str(line);
            kept.push('\n');
        }
    }
    std::fs::write(&holed, kept).unwrap();
    let repaired = dir.join("repaired.csv");
    let out = habit(&[
        "repair",
        "--model",
        model.to_str().unwrap(),
        "--input",
        holed.to_str().unwrap(),
        "--out",
        repaired.to_str().unwrap(),
        "--threshold",
        "600",
    ]);
    assert!(
        out.status.success(),
        "repair: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(repaired.exists());

    // export a density map with repair.
    let out = habit(&[
        "export",
        "--input",
        csv.to_str().unwrap(),
        "--out",
        density.to_str().unwrap(),
        "--model",
        model.to_str().unwrap(),
        "--resolution",
        "8",
    ]);
    assert!(
        out.status.success(),
        "export: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let geo = std::fs::read_to_string(&density).unwrap();
    assert!(geo.starts_with("{\"type\":\"FeatureCollection\""));
    assert!(geo.contains("\"Polygon\""));

    std::fs::remove_dir_all(&dir).ok();
}

/// Pins the unified exit-code table (0 success / 1 runtime / 2 usage)
/// at the process boundary: exit codes derive from the service error
/// taxonomy in one place, so every command fails the same way.
#[test]
fn helpful_failures_and_exit_codes() {
    // No arguments: usage on stderr, exit code 2.
    let out = habit(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    // Unknown command: a usage error (exit 2, `bad_request`) with a
    // pointer to help — as the EXIT CODES table documents.
    let out = habit(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // help: exit 0.
    let out = habit(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("impute"));

    // Missing required flag: usage error, exit 2.
    let out = habit(&["fit", "--input", "/nonexistent.csv"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));

    // Unknown flag: usage error, exit 2.
    let out = habit(&[
        "synth",
        "--dataset",
        "kiel",
        "--out",
        "x.csv",
        "--sale",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));

    // Unreadable input reported cleanly, not a panic: runtime failure,
    // exit 1, carrying the machine-readable taxonomy code.
    let out = habit(&["info", "--model", "/does/not/exist.habit"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
    assert!(err.contains("[io]"), "taxonomy code shown: {err}");
}

/// `--input -` streams a gap CSV from stdin (`batch` and `impute`),
/// matching the daemon's streaming shape.
#[test]
fn batch_and_impute_read_gaps_from_stdin() {
    use std::io::Write as _;
    use std::process::Stdio;

    let dir = std::env::temp_dir().join(format!("habit-e2e-stdin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("kiel.csv");
    let model = dir.join("kiel.habit");
    let out = habit(&[
        "synth",
        "--dataset",
        "kiel",
        "--scale",
        "0.05",
        "--seed",
        "7",
        "--out",
        csv.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = habit(&[
        "fit",
        "--input",
        csv.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&csv).unwrap();
    let first: Vec<&str> = text.lines().nth(1).unwrap().split(',').collect();
    let (lon, lat) = (first[2].parse::<f64>().unwrap(), first[3]);
    let gap_rows = format!(
        "lon1,lat1,t1,lon2,lat2,t2\n{lon},{lat},0,{},{lat},3600\n",
        lon + 0.15
    );

    for command in ["batch", "impute"] {
        let out_csv = dir.join(format!("{command}-stdin.csv"));
        let mut child = Command::new(env!("CARGO_BIN_EXE_habit"))
            .args([
                command,
                "--model",
                model.to_str().unwrap(),
                "--input",
                "-",
                "--out",
                out_csv.to_str().unwrap(),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn habit");
        child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(gap_rows.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "{command} --input -: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let body = std::fs::read_to_string(&out_csv).unwrap();
        assert!(body.starts_with("gap,t,lon,lat"), "{command}: {body}");
        assert!(body.lines().count() >= 3, "{command}: {body}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
