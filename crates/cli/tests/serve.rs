//! End-to-end test of the `habit serve` daemon: spawns the real binary
//! on an ephemeral port, speaks habit-wire/v1 over a real TCP socket
//! (`Health`, `Impute`, `ImputeBatch`, `Shutdown`), and asserts the
//! TCP path produces **byte-identical** imputation output to the
//! `habit impute` CLI adapter on the same model and gap — the
//! acceptance check that both frontends share one code path.

use habit_service::{wire, Request, Response};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn habit(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_habit"))
        .args(args)
        .output()
        .expect("spawn habit binary")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("habit-serve-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// Builds a small model through the real binary; returns (csv, model).
fn build_model(dir: &Path) -> (PathBuf, PathBuf) {
    let csv = dir.join("kiel.csv");
    let model = dir.join("kiel.habit");
    let out = habit(&[
        "synth",
        "--dataset",
        "kiel",
        "--scale",
        "0.05",
        "--seed",
        "7",
        "--out",
        csv.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = habit(&[
        "fit",
        "--input",
        csv.to_str().unwrap(),
        "--resolution",
        "9",
        "--tolerance",
        "100",
        "--out",
        model.to_str().unwrap(),
        // Embed the fit state so the daemon under test is refittable.
        "--save-state",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (csv, model)
}

/// Spawns `habit serve --port 0` and parses the bound address from its
/// first stdout line (guarded by a timeout so a hung daemon fails the
/// test instead of wedging CI).
fn spawn_daemon(model: &Path) -> (Child, String) {
    spawn_daemon_with_args(model, &[])
}

/// [`spawn_daemon`] with extra `habit serve` flags appended.
fn spawn_daemon_with_args(model: &Path, extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_habit"))
        .args([
            "serve",
            "--model",
            model.to_str().unwrap(),
            "--port",
            "0",
            "--threads",
            "2",
            "--conn-threads",
            "2",
        ])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn habit serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut first = String::new();
    reader.read_line(&mut first).expect("read banner line");
    let addr = first
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner: {first:?}"))
        .to_string();
    // Keep draining stdout in the background so the daemon never blocks
    // on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    (child, addr)
}

/// Spawns `habit serve --port 0 --metrics-port 0` and parses both the
/// wire address and the metrics endpoint address from the banner.
fn spawn_daemon_with_metrics(model: &Path) -> (Child, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_habit"))
        .args([
            "serve",
            "--model",
            model.to_str().unwrap(),
            "--port",
            "0",
            "--threads",
            "2",
            "--conn-threads",
            "2",
            "--metrics-port",
            "0",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn habit serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut addr = String::new();
    let mut metrics_addr = String::new();
    while addr.is_empty() || metrics_addr.is_empty() {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read banner line") > 0,
            "daemon exited before printing both addresses"
        );
        if let Some(rest) = line.split("listening on ").nth(1) {
            addr = rest.split_whitespace().next().unwrap_or("").to_string();
        }
        if let Some(rest) = line.split("metrics on http://").nth(1) {
            metrics_addr = rest.split_whitespace().next().unwrap_or("").to_string();
        }
    }
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    (child, addr, metrics_addr)
}

/// One plaintext HTTP GET against the metrics endpoint.
fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut page = String::new();
    stream.read_to_string(&mut page).expect("read metrics page");
    page
}

/// Sends one request line and reads one response line.
fn round_trip(stream: &TcpStream, reader: &mut BufReader<TcpStream>, request: &Request) -> String {
    let mut s = stream;
    s.write_all(wire::encode_request(request).as_bytes())
        .unwrap();
    s.write_all(b"\n").unwrap();
    s.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read response line");
    assert!(!reply.is_empty(), "daemon closed the connection early");
    reply
}

/// Waits for the daemon to exit, failing the test on a hang.
fn wait_with_timeout(child: &mut Child, limit: Duration) -> std::process::ExitStatus {
    let t0 = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if t0.elapsed() > limit {
            let _ = child.kill();
            panic!("habit serve did not exit within {limit:?} after Shutdown");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn daemon_round_trip_matches_the_cli_byte_for_byte() {
    let dir = tmpdir("roundtrip");
    let (csv, model) = build_model(&dir);

    // A gap along the corridor, from the dataset's own coordinates.
    let text = std::fs::read_to_string(&csv).unwrap();
    let first: Vec<&str> = text.lines().nth(1).unwrap().split(',').collect();
    let (lon, lat): (f64, f64) = (first[2].parse().unwrap(), first[3].parse().unwrap());
    let (lon2, t2) = (lon + 0.15, 3600i64);
    let gap = habit_core::GapQuery::new(lon, lat, 0, lon2, lat, t2);

    let (mut child, addr) = spawn_daemon(&model);
    let stream = TcpStream::connect(&addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // -- Health: model loaded, graph populated.
    let reply = round_trip(&stream, &mut reader, &Request::Health);
    let Ok(Response::Health(health)) = wire::decode_response(&reply).unwrap() else {
        panic!("health reply: {reply}");
    };
    assert!(health.model_loaded);
    assert!(health.cells > 0);

    // -- Impute over TCP.
    let reply = round_trip(
        &stream,
        &mut reader,
        &Request::Impute {
            gap,
            provenance: false,
        },
    );
    let Ok(Response::Imputation(tcp_imputation)) = wire::decode_response(&reply).unwrap() else {
        panic!("impute reply: {reply}");
    };
    assert!(tcp_imputation.points.len() >= 2);

    // -- ImputeBatch over TCP: same gap twice — identical answers, one
    //    unique route.
    let reply = round_trip(
        &stream,
        &mut reader,
        &Request::ImputeBatch {
            gaps: vec![gap, gap],
            provenance: false,
        },
    );
    let Ok(Response::Batch(batch)) = wire::decode_response(&reply).unwrap() else {
        panic!("batch reply: {reply}");
    };
    assert_eq!(batch.stats.queries, 2);
    assert_eq!(batch.stats.ok, 2);
    assert_eq!(batch.stats.unique_routes, 1, "route dedup over TCP");
    for result in &batch.results {
        let imp = result.as_ref().expect("batch result");
        assert_eq!(imp.points, tcp_imputation.points, "batch == single");
    }

    // -- The byte-identical acceptance check: render the TCP answer
    //    through the same CSV writer the CLI uses and diff the files.
    let cli_out = dir.join("cli-imputed.csv");
    let out = habit(&[
        "impute",
        "--model",
        model.to_str().unwrap(),
        "--from",
        &format!("{lon},{lat},0"),
        "--to",
        &format!("{lon2},{lat},{t2}"),
        "--out",
        cli_out.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let tcp_out = dir.join("tcp-imputed.csv");
    habit_cli::io::write_track_csv(&tcp_imputation.points, &tcp_out).unwrap();
    let cli_bytes = std::fs::read(&cli_out).unwrap();
    let tcp_bytes = std::fs::read(&tcp_out).unwrap();
    assert!(!cli_bytes.is_empty());
    assert_eq!(
        cli_bytes, tcp_bytes,
        "TCP daemon and CLI adapter must produce byte-identical imputation output"
    );

    // -- Refit over TCP: a delta of the same corridor under new vessel
    //    ids hot-swaps the serving model without a restart.
    let delta = dir.join("delta.csv");
    let mut delta_body = String::from("mmsi,t,lon,lat,sog,cog,heading\n");
    for line in text.lines().skip(1) {
        let (mmsi, rest) = line.split_once(',').expect("csv row");
        let mmsi: u64 = mmsi.parse().expect("mmsi");
        delta_body.push_str(&format!("{},{rest}\n", mmsi + 1_000_000));
    }
    std::fs::write(&delta, delta_body).unwrap();
    let reply = round_trip(
        &stream,
        &mut reader,
        &Request::Refit(habit_service::RefitSpec {
            input: delta.to_str().unwrap().to_string(),
            save_to: None,
            shard: None,
        }),
    );
    let Ok(Response::Refitted(refit)) = wire::decode_response(&reply).unwrap() else {
        panic!("refit reply: {reply}");
    };
    assert!(refit.trips_added > 0);
    assert_eq!(
        refit.trips_total,
        refit.trips_added * 2,
        "the delta duplicates the history's traffic trip for trip"
    );
    // The refitted model serves immediately on the same connection, and
    // the duplicated corridor does not change the answer's geometry
    // (medians over duplicated positions are unchanged).
    let reply = round_trip(
        &stream,
        &mut reader,
        &Request::Impute {
            gap,
            provenance: false,
        },
    );
    let Ok(Response::Imputation(after_refit)) = wire::decode_response(&reply).unwrap() else {
        panic!("impute-after-refit reply: {reply}");
    };
    assert_eq!(after_refit.points, tcp_imputation.points);

    // -- Shutdown: acknowledged, then the process exits cleanly (0).
    let reply = round_trip(&stream, &mut reader, &Request::Shutdown);
    assert!(matches!(
        wire::decode_response(&reply).unwrap(),
        Ok(Response::ShuttingDown)
    ));
    let status = wait_with_timeout(&mut child, Duration::from_secs(30));
    assert!(status.success(), "clean exit after Shutdown: {status:?}");

    std::fs::remove_dir_all(&dir).ok();
}

/// ISSUE 7 satellite: N clients hammer one daemon **concurrently** with
/// overlapping routes (same corridor, per-client gap durations), and
/// every answer — rendered through the CLI's own CSV writer — must be
/// byte-identical to a sequential `habit impute` run on the same model.
/// This pins the pooled per-thread search arenas and RDP scratch
/// buffers under real contention: a cross-request state leak (a stale
/// generation counter, a dirty scratch buffer) would show up as a
/// one-bit diff in some client's CSV.
#[test]
fn concurrent_clients_match_sequential_cli_byte_for_byte() {
    const CLIENTS: usize = 4;
    const GAPS_PER_CLIENT: usize = 3;

    let dir = tmpdir("concurrent");
    let (csv, model) = build_model(&dir);

    // Gaps along the dataset's own corridor: identical geometry (so the
    // clients' routes overlap and contend for the same pooled state)
    // with a distinct duration per (client, round), which changes the
    // allocated timestamps and therefore every CSV body.
    let text = std::fs::read_to_string(&csv).unwrap();
    let first: Vec<&str> = text.lines().nth(1).unwrap().split(',').collect();
    let (lon, lat): (f64, f64) = (first[2].parse().unwrap(), first[3].parse().unwrap());
    let lon2 = lon + 0.15;
    let gap_for = |client: usize, round: usize| {
        let t2 = 3600 + (client * GAPS_PER_CLIENT + round) as i64 * 600;
        habit_core::GapQuery::new(lon, lat, 0, lon2, lat, t2)
    };

    let (mut child, addr) = spawn_daemon(&model);

    // -- Concurrent phase: each client opens its own connection and
    //    imputes its gaps; a barrier lines all clients up so the
    //    requests genuinely overlap instead of accidentally serializing.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(CLIENTS));
    let answers: Vec<Vec<habit_core::Imputation>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let addr = addr.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                scope.spawn(move || {
                    let stream = TcpStream::connect(&addr).expect("connect client");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    barrier.wait();
                    (0..GAPS_PER_CLIENT)
                        .map(|round| {
                            let gap = gap_for(client, round);
                            let reply = round_trip(
                                &stream,
                                &mut reader,
                                &Request::Impute {
                                    gap,
                                    provenance: false,
                                },
                            );
                            match wire::decode_response(&reply).unwrap() {
                                Ok(Response::Imputation(imp)) => imp,
                                other => panic!("client {client} round {round}: {other:?}"),
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    // -- Shutdown before the sequential phase so the daemon cannot
    //    interfere with the CLI runs' timing.
    let stream = TcpStream::connect(&addr).expect("connect for shutdown");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let reply = round_trip(&stream, &mut reader, &Request::Shutdown);
    assert!(matches!(
        wire::decode_response(&reply).unwrap(),
        Ok(Response::ShuttingDown)
    ));
    let status = wait_with_timeout(&mut child, Duration::from_secs(30));
    assert!(status.success(), "clean exit after Shutdown: {status:?}");

    // -- Sequential reference: one `habit impute` process per gap, then
    //    a byte-for-byte diff against the concurrent answers rendered
    //    through the identical CSV writer.
    for (client, client_answers) in answers.iter().enumerate() {
        for (round, answer) in client_answers.iter().enumerate() {
            let gap = gap_for(client, round);
            let cli_out = dir.join(format!("cli-{client}-{round}.csv"));
            let out = habit(&[
                "impute",
                "--model",
                model.to_str().unwrap(),
                "--from",
                &format!(
                    "{},{},{}",
                    gap.start.pos.lon, gap.start.pos.lat, gap.start.t
                ),
                "--to",
                &format!("{},{},{}", gap.end.pos.lon, gap.end.pos.lat, gap.end.t),
                "--out",
                cli_out.to_str().unwrap(),
            ]);
            assert!(
                out.status.success(),
                "{}",
                String::from_utf8_lossy(&out.stderr)
            );
            let tcp_out = dir.join(format!("tcp-{client}-{round}.csv"));
            habit_cli::io::write_track_csv(&answer.points, &tcp_out).unwrap();
            let cli_bytes = std::fs::read(&cli_out).unwrap();
            let tcp_bytes = std::fs::read(&tcp_out).unwrap();
            assert!(!cli_bytes.is_empty());
            assert_eq!(
                cli_bytes, tcp_bytes,
                "client {client} round {round}: concurrent daemon output must be \
                 byte-identical to the sequential CLI"
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// ISSUE 10 tentpole, end to end: cross-connection admission batching
/// is **byte-invisible**. Eight clients hammer a coalescing daemon
/// concurrently with overlapping routes (shared and per-client gap
/// durations, plus an `impute_batch` each), then replay the identical
/// workload against a `--no-coalesce` daemon — every `impute` response
/// must match byte-for-byte as a raw wire line, and every batch result
/// must carry bit-identical points. The health payloads prove the two
/// daemons really ran in different modes.
#[test]
fn coalescing_is_byte_invisible_to_concurrent_clients() {
    const CLIENTS: usize = 8;

    let dir = tmpdir("coalesce");
    let (csv, model) = build_model(&dir);
    let text = std::fs::read_to_string(&csv).unwrap();
    let first: Vec<&str> = text.lines().nth(1).unwrap().split(',').collect();
    let (lon, lat): (f64, f64) = (first[2].parse().unwrap(), first[3].parse().unwrap());
    let lon2 = lon + 0.15;
    // Round 0 is the same gap for every client (coalescing dedups it
    // across connections); round 1 is distinct per client (scatter must
    // route each answer back to its own connection). The batch mixes
    // both shapes.
    let shared_gap = habit_core::GapQuery::new(lon, lat, 0, lon2, lat, 3600);
    let client_gap = |client: usize| {
        habit_core::GapQuery::new(lon, lat, 0, lon2, lat, 4200 + client as i64 * 600)
    };
    let run_clients = |addr: &str| -> Vec<(String, String, Vec<habit_core::Imputation>)> {
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(CLIENTS));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    let addr = addr.to_string();
                    let barrier = std::sync::Arc::clone(&barrier);
                    scope.spawn(move || {
                        let stream = TcpStream::connect(&addr).expect("connect client");
                        stream
                            .set_read_timeout(Some(Duration::from_secs(60)))
                            .unwrap();
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        barrier.wait();
                        let shared_reply = round_trip(
                            &stream,
                            &mut reader,
                            &Request::Impute {
                                gap: shared_gap,
                                provenance: false,
                            },
                        );
                        let own_reply = round_trip(
                            &stream,
                            &mut reader,
                            &Request::Impute {
                                gap: client_gap(client),
                                provenance: false,
                            },
                        );
                        let batch_reply = round_trip(
                            &stream,
                            &mut reader,
                            &Request::ImputeBatch {
                                gaps: vec![shared_gap, client_gap(client), shared_gap],
                                provenance: false,
                            },
                        );
                        let Ok(Response::Batch(batch)) =
                            wire::decode_response(&batch_reply).unwrap()
                        else {
                            panic!("client {client} batch: {batch_reply}");
                        };
                        let batch_points: Vec<habit_core::Imputation> = batch
                            .results
                            .into_iter()
                            .map(|r| r.expect("batch result"))
                            .collect();
                        (shared_reply, own_reply, batch_points)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        })
    };
    let shut_down = |mut child: Child, addr: &str| {
        let stream = TcpStream::connect(addr).expect("connect for shutdown");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let reply = round_trip(&stream, &mut reader, &Request::Shutdown);
        assert!(matches!(
            wire::decode_response(&reply).unwrap(),
            Ok(Response::ShuttingDown)
        ));
        let status = wait_with_timeout(&mut child, Duration::from_secs(30));
        assert!(status.success(), "clean exit after Shutdown: {status:?}");
    };
    let health_admission = |addr: &str| -> Option<u64> {
        let stream = TcpStream::connect(addr).expect("connect for health");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let reply = round_trip(&stream, &mut reader, &Request::Health);
        let Ok(Response::Health(h)) = wire::decode_response(&reply).unwrap() else {
            panic!("health reply: {reply}");
        };
        h.admission.map(|a| a.queue_capacity)
    };

    // Coalescing daemon (the default) with a wide-open window so the
    // concurrent clients genuinely share flushes.
    let (on_child, on_addr) = spawn_daemon_with_args(
        &model,
        &["--batch-window-us", "2000", "--batch-max-gaps", "64"],
    );
    assert_eq!(
        health_admission(&on_addr),
        Some(64 * 8),
        "coalescing daemon advertises its admission queue"
    );
    let coalesced = run_clients(&on_addr);
    shut_down(on_child, &on_addr);

    // Direct-path daemon: identical model, identical workload.
    let (off_child, off_addr) = spawn_daemon_with_args(&model, &["--no-coalesce"]);
    assert_eq!(
        health_admission(&off_addr),
        None,
        "--no-coalesce daemon has no admission layer"
    );
    let direct = run_clients(&off_addr);
    shut_down(off_child, &off_addr);

    for (client, ((on_shared, on_own, on_batch), (off_shared, off_own, off_batch))) in
        coalesced.iter().zip(&direct).enumerate()
    {
        // `impute` responses carry no timing field: the raw wire lines
        // must be byte-identical between the two modes.
        assert_eq!(on_shared, off_shared, "client {client}: shared-gap reply");
        assert_eq!(on_own, off_own, "client {client}: per-client-gap reply");
        // `impute_batch` responses carry wall_s, so compare the payload:
        // every imputation bit-identical, in order.
        assert_eq!(on_batch.len(), off_batch.len());
        for (i, (a, b)) in on_batch.iter().zip(off_batch).enumerate() {
            assert_eq!(a.points, b.points, "client {client} batch gap {i}");
            assert_eq!(a.cells, b.cells, "client {client} batch gap {i}");
            assert_eq!(
                a.cost.to_bits(),
                b.cost.to_bits(),
                "client {client} batch gap {i}"
            );
        }
    }
    // Scatter sanity: each client's round-1 answer reflects its own gap
    // duration (last point lands at the client's own end timestamp).
    for (client, (_, own_reply, _)) in coalesced.iter().enumerate() {
        let Ok(Response::Imputation(imp)) = wire::decode_response(own_reply).unwrap() else {
            panic!("client {client} own reply: {own_reply}");
        };
        assert_eq!(
            imp.points.last().expect("points").t,
            client_gap(client).end.t,
            "client {client} got its own answer back"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// ISSUE 8 tentpole, end to end: the daemon's observability surface.
/// One daemon, three windows onto the same counters — the extended
/// `health` payload (monotonic across requests), the `metrics` wire
/// operation, and the `--metrics-port` plaintext HTTP endpoint — plus
/// per-point provenance opt-in that leaves the points byte-identical,
/// and error spans for a malformed request (the parse failure must show
/// up in the per-op error counters even though no request ever ran).
#[test]
fn observability_surface_over_the_daemon() {
    let dir = tmpdir("metrics");
    let (csv, model) = build_model(&dir);
    let text = std::fs::read_to_string(&csv).unwrap();
    let first: Vec<&str> = text.lines().nth(1).unwrap().split(',').collect();
    let (lon, lat): (f64, f64) = (first[2].parse().unwrap(), first[3].parse().unwrap());
    let gap = habit_core::GapQuery::new(lon, lat, 0, lon + 0.15, lat, 3600);

    let (mut child, addr, metrics_addr) = spawn_daemon_with_metrics(&model);
    let stream = TcpStream::connect(&addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // -- Health twice around two imputes: counters strictly monotonic,
    //    the clock never goes backwards, the route cache is visible.
    let reply = round_trip(&stream, &mut reader, &Request::Health);
    let Ok(Response::Health(h1)) = wire::decode_response(&reply).unwrap() else {
        panic!("health reply: {reply}");
    };
    let reply = round_trip(
        &stream,
        &mut reader,
        &Request::Impute {
            gap,
            provenance: false,
        },
    );
    let Ok(Response::Imputation(plain)) = wire::decode_response(&reply).unwrap() else {
        panic!("impute reply: {reply}");
    };
    assert!(plain.provenance.is_none(), "provenance is opt-in");
    let reply = round_trip(
        &stream,
        &mut reader,
        &Request::Impute {
            gap,
            provenance: true,
        },
    );
    let Ok(Response::Imputation(prov)) = wire::decode_response(&reply).unwrap() else {
        panic!("impute --provenance reply: {reply}");
    };
    let reply = round_trip(&stream, &mut reader, &Request::Health);
    let Ok(Response::Health(h2)) = wire::decode_response(&reply).unwrap() else {
        panic!("health reply: {reply}");
    };
    // A request is counted after its own response is built, so h1
    // reports the pre-existing total (0) and h2 sees h1 + two imputes.
    assert_eq!(h2.requests_total, h1.requests_total + 3);
    assert!(
        h2.requests_total > h1.requests_total,
        "requests_total monotonic: {} -> {}",
        h1.requests_total,
        h2.requests_total
    );
    assert!(h2.uptime_ticks >= h1.uptime_ticks, "uptime never rewinds");
    assert!(h2.route_cache_misses >= 1, "first route was a miss");
    assert!(h2.route_cache_hits >= 1, "repeated route hits the cache");

    // -- Provenance: every imputed point explained, points untouched.
    let records = prov.provenance.as_ref().expect("provenance requested");
    assert_eq!(records.len(), prov.points.len());
    assert_eq!(prov.points, plain.points, "provenance must not move points");

    // -- The `metrics` wire operation returns the same registry.
    let reply = round_trip(&stream, &mut reader, &Request::Metrics);
    let Ok(Response::Metrics(snapshot)) = wire::decode_response(&reply).unwrap() else {
        panic!("metrics reply: {reply}");
    };
    let impute_count = snapshot
        .samples
        .iter()
        .find(|s| {
            s.name == "habit_requests_total"
                && s.labels == vec![("op".to_string(), "impute".to_string())]
        })
        .expect("habit_requests_total{op=impute} sample");
    assert_eq!(impute_count.value, 2.0, "two imputes served");

    // -- A malformed request line (separate connection) must land in
    //    the error counters as op=unknown even though nothing ran.
    {
        let bad = TcpStream::connect(&addr).expect("connect for malformed line");
        bad.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut bad_reader = BufReader::new(bad.try_clone().unwrap());
        (&bad).write_all(b"this is not json\n").unwrap();
        let mut reply = String::new();
        bad_reader.read_line(&mut reply).expect("error reply");
        assert!(reply.contains("bad_request"), "{reply}");
    }

    // -- The HTTP endpoint serves the same counters as plaintext, and
    //    /spans exposes the recent per-request span records.
    let page = http_get(&metrics_addr, "/");
    assert!(page.starts_with("HTTP/1.0 200 OK\r\n"), "{page}");
    assert!(
        page.contains("habit_requests_total{op=\"impute\"} 2\n"),
        "{page}"
    );
    assert!(
        page.contains("habit_requests_total{op=\"health\"} 2\n"),
        "{page}"
    );
    assert!(
        page.contains("habit_errors_total{code=\"bad_request\",op=\"unknown\"} 1\n"),
        "{page}"
    );
    assert!(page.contains("habit_route_cache_hits_total"), "{page}");
    let spans = http_get(&metrics_addr, "/spans");
    assert!(spans.contains("\"name\":\"handle\""), "{spans}");
    assert!(spans.contains("\"op\":\"impute\""), "{spans}");
    assert!(spans.contains("\"ok\":false"), "failed parse span: {spans}");

    let reply = round_trip(&stream, &mut reader, &Request::Shutdown);
    assert!(matches!(
        wire::decode_response(&reply).unwrap(),
        Ok(Response::ShuttingDown)
    ));
    let status = wait_with_timeout(&mut child, Duration::from_secs(30));
    assert!(status.success(), "clean exit after Shutdown: {status:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// ISSUE 8 acceptance: `habit impute --provenance` is deterministic —
/// byte-identical across runs — and matches the committed golden CSV
/// for the seeded KIEL model (seed 7, scale 0.05), so any drift in the
/// provenance schema, float formatting, or the imputation itself fails
/// loudly here.
#[test]
fn provenance_csv_matches_the_committed_golden() {
    let dir = tmpdir("provgolden");
    let (csv, model) = build_model(&dir);

    // The same corridor gap as the round-trip test: anchored on the
    // seeded dataset's own first report, so the query is as
    // deterministic as the model.
    let text = std::fs::read_to_string(&csv).unwrap();
    let first: Vec<&str> = text.lines().nth(1).unwrap().split(',').collect();
    let (lon, lat): (f64, f64) = (first[2].parse().unwrap(), first[3].parse().unwrap());
    let impute = |out: &Path| {
        let run = habit(&[
            "impute",
            "--model",
            model.to_str().unwrap(),
            "--from",
            &format!("{lon},{lat},0"),
            "--to",
            &format!("{},{lat},3600", lon + 0.15),
            "--provenance",
            "--out",
            out.to_str().unwrap(),
        ]);
        assert!(
            run.status.success(),
            "{}",
            String::from_utf8_lossy(&run.stderr)
        );
    };
    let out1 = dir.join("prov-1.csv");
    let out2 = dir.join("prov-2.csv");
    impute(&out1);
    impute(&out2);
    let bytes1 = std::fs::read(&out1).unwrap();
    let bytes2 = std::fs::read(&out2).unwrap();
    assert!(!bytes1.is_empty());
    assert_eq!(bytes1, bytes2, "provenance CSV must be run-to-run stable");

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/impute_provenance.csv");
    let golden = std::fs::read(&golden_path).expect("committed golden CSV");
    assert_eq!(
        bytes1,
        golden,
        "provenance output drifted from {} — if the change is intentional, \
         regenerate the golden with the command in that file's header row",
        golden_path.display()
    );
    std::fs::remove_dir_all(&dir).ok();
}
