//! CLI-side I/O: the shared CSV converters of [`habit_service::csvio`]
//! (re-exported so existing imports keep working) plus the flag-surface
//! conventions — `-` as an input path means *read stdin*, matching the
//! daemon's streaming shape.

pub use habit_service::csvio::{
    read_ais_csv, read_ais_csv_reader, read_gaps_csv, read_gaps_csv_reader, read_track_csv,
    read_track_csv_reader, render_provenance_csv, write_ais_csv, write_batch_csv,
    write_batch_provenance_csv, write_provenance_csv, write_track_csv, IoError, PROVENANCE_HEADER,
};

use habit_core::GapQuery;
use habit_service::ServiceError;
use std::path::Path;

/// Reads a gap-query CSV from a path, or from stdin when `input` is
/// `-` (the `habit batch` / `habit impute --input` convention).
pub fn read_gaps(input: &str) -> Result<Vec<GapQuery>, ServiceError> {
    if input == "-" {
        Ok(read_gaps_csv_reader(std::io::stdin().lock())?)
    } else {
        Ok(read_gaps_csv(Path::new(input))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_mode_reads_files_and_reports_errors() {
        let path = std::env::temp_dir().join(format!("habit-cli-gaps-{}.csv", std::process::id()));
        std::fs::write(
            &path,
            "lon1,lat1,t1,lon2,lat2,t2\n10.1,56.0,0,10.4,56.0,3600\n",
        )
        .unwrap();
        let gaps = read_gaps(path.to_str().unwrap()).expect("read");
        std::fs::remove_file(&path).ok();
        assert_eq!(gaps.len(), 1);

        let err = read_gaps("/nonexistent/gaps.csv").unwrap_err();
        assert_eq!(err.code, habit_service::ErrorCode::Io);
        assert!(err.message.contains("csv"), "{err}");
    }
}
