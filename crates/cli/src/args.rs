//! A minimal argument parser: `habit <command> [positional] [--flag value
//! | --switch]...`. Hand-rolled because the workspace's sanctioned
//! dependency list has no CLI crate — and the surface is tiny.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` pairs; bare `--key` switches map to `"true"`.
    flags: BTreeMap<String, String>,
}

/// Argument errors, reported with the offending key.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    NoCommand,
    /// A required flag is missing.
    Missing(String),
    /// A flag value failed to parse.
    Invalid {
        /// Flag name.
        key: String,
        /// Raw value.
        value: String,
        /// Expected type description.
        expected: &'static str,
    },
    /// An unknown flag was passed (typo protection).
    Unknown(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::NoCommand => write!(f, "no command given (try `habit help`)"),
            ArgError::Missing(k) => write!(f, "missing required flag --{k}"),
            ArgError::Invalid {
                key,
                value,
                expected,
            } => {
                write!(f, "--{key} {value}: expected {expected}")
            }
            ArgError::Unknown(k) => write!(f, "unknown flag --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl From<ArgError> for habit_service::ServiceError {
    /// Every argument error is a `bad_request` in the unified taxonomy
    /// (exit code 2), same as a malformed daemon request.
    fn from(e: ArgError) -> Self {
        habit_service::ServiceError::bad_request(e.to_string())
    }
}

impl Args {
    /// Parses raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut iter = raw.into_iter().peekable();
        let command = iter.next().ok_or(ArgError::NoCommand)?;
        let mut args = Args {
            command,
            ..Args::default()
        };
        while let Some(token) = iter.next() {
            if let Some(key) = token.strip_prefix("--") {
                // A value follows unless the next token is another flag.
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                    _ => "true".to_string(),
                };
                args.flags.insert(key.to_string(), value);
            } else {
                args.positional.push(token);
            }
        }
        Ok(args)
    }

    /// Rejects any flag not in `allowed` (typo protection).
    pub fn check_flags(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::Unknown(key.clone()));
            }
        }
        Ok(())
    }

    /// Raw string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key).ok_or_else(|| ArgError::Missing(key.into()))
    }

    /// Optional typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::Invalid {
                key: key.into(),
                value: raw.into(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Required typed flag.
    pub fn require_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let raw = self.require(key)?;
        raw.parse().map_err(|_| ArgError::Invalid {
            key: key.into(),
            value: raw.into(),
            expected: std::any::type_name::<T>(),
        })
    }

    /// `true` when `--key` was passed (with or without a value).
    pub fn switch(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_flags_and_positionals() {
        let a = parse(&["fit", "data.csv", "--resolution", "9", "--verbose"]).unwrap();
        assert_eq!(a.command, "fit");
        assert_eq!(a.positional, vec!["data.csv"]);
        assert_eq!(a.get("resolution"), Some("9"));
        assert!(a.switch("verbose"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn typed_accessors() {
        let a = parse(&["x", "--r", "9", "--t", "100.5"]).unwrap();
        assert_eq!(a.require_parse::<u8>("r").unwrap(), 9);
        assert_eq!(a.require_parse::<f64>("t").unwrap(), 100.5);
        assert_eq!(a.get_or("missing", 7u32).unwrap(), 7);
        assert!(matches!(
            a.require_parse::<u8>("t"),
            Err(ArgError::Invalid { .. })
        ));
    }

    #[test]
    fn missing_and_unknown_flags() {
        let a = parse(&["x", "--good", "1"]).unwrap();
        assert_eq!(a.require("bad"), Err(ArgError::Missing("bad".into())));
        assert!(a.check_flags(&["good"]).is_ok());
        assert_eq!(
            a.check_flags(&["other"]),
            Err(ArgError::Unknown("good".into()))
        );
    }

    #[test]
    fn empty_input_is_no_command() {
        assert_eq!(parse(&[]).unwrap_err(), ArgError::NoCommand);
    }

    #[test]
    fn switch_before_another_flag_gets_true() {
        let a = parse(&["x", "--a", "--b", "2"]).unwrap();
        assert_eq!(a.get("a"), Some("true"));
        assert_eq!(a.get("b"), Some("2"));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // "-3.5" does not start with "--", so it is consumed as a value.
        let a = parse(&["x", "--lon", "-3.5"]).unwrap();
        assert_eq!(a.require_parse::<f64>("lon").unwrap(), -3.5);
    }
}
