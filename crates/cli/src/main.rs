//! `habit` — the HABIT command-line tool.
//!
//! Generate synthetic AIS data, fit imputation models, answer gap
//! queries, repair whole tracks, and serve models over TCP from the
//! shell:
//!
//! ```text
//! habit synth  --dataset kiel --scale 0.3 --out kiel.csv
//! habit fit    --input kiel.csv --resolution 9 --tolerance 100 --out kiel.habit
//! habit info   --model kiel.habit
//! habit impute --model kiel.habit --from 10.30,57.10,0 --to 10.85,57.45,3600
//! habit repair --model kiel.habit --input track.csv --out repaired.csv
//! habit serve  --model kiel.habit --port 4740
//! habit eval   --dataset sar --scale 0.2
//! ```
//!
//! Exit codes are stable for shell use and derive from the service
//! error taxonomy in exactly one place (here): 0 success, 1 runtime
//! failure, 2 usage error (`bad_request`). See `habit help` or the
//! `habit_cli` crate docs.

use habit_cli::{args, commands};
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::help_text());
            return ExitCode::from(2);
        }
    };
    match commands::dispatch(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // The single error→exit-code seam: the taxonomy decides.
            eprintln!("error: {e} [{}]", e.code);
            ExitCode::from(e.exit_code())
        }
    }
}
