//! # habit-cli — the `habit` command-line tool as a library
//!
//! The binary (`src/main.rs`) is a thin wrapper over this crate so that
//! argument parsing, CSV I/O and every subcommand stay unit-testable:
//!
//! * [`args`] — the minimal `--flag value` parser (hand-rolled; the
//!   offline workspace has no CLI dependency);
//! * [`io`] — AIS CSV ↔ [`ais::Trajectory`] and track CSV ↔
//!   [`geo_kernel::TimedPoint`] conversions;
//! * [`commands`] — one module per subcommand (`synth`, `fit`, `impute`,
//!   `batch`, `repair`, `info`, `eval`, `export`) plus the dispatcher,
//!   [`commands::help_text`] (usage, worked examples, exit codes) and
//!   [`commands::version`].
//!
//! ## Exit codes
//!
//! The binary's exit codes are stable and shell-friendly — scripts may
//! branch on them:
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | success |
//! | 1 | runtime failure: bad input file, no imputable path, I/O error |
//! | 2 | usage error: unknown command or flag, missing/unparsable value |
//!
//! Usage errors print the offending flag and the full help text to
//! stderr; runtime failures print a one-line `error: …` diagnostic.
//! The same convention is shared by the `habit-bench` experiment
//! binaries.
//!
//! ## Typical session
//!
//! ```text
//! habit synth  --dataset kiel --scale 0.3 --out kiel.csv
//! habit fit    --input kiel.csv --resolution 9 --tolerance 100 --out kiel.habit
//! habit impute --model kiel.habit --from 10.30,57.10,0 --to 10.85,57.45,3600
//! ```
//!
//! Run `habit help` for the complete command reference.

pub mod args;
pub mod commands;
pub mod io;
