//! # habit-cli — the `habit` command-line tool as a library
//!
//! The binary (`src/main.rs`) is a thin wrapper over this crate so that
//! argument parsing, CSV I/O and every subcommand stay unit-testable:
//!
//! * [`args`] — the minimal `--flag value` parser;
//! * [`io`] — AIS CSV ↔ [`ais::Trajectory`] and track CSV ↔
//!   [`geo_kernel::TimedPoint`] conversions;
//! * [`commands`] — one module per subcommand (`synth`, `fit`, `impute`,
//!   `repair`, `info`, `eval`) plus the dispatcher.

pub mod args;
pub mod commands;
pub mod io;
