//! # habit-cli — the `habit` command-line tool as a library
//!
//! The binary (`src/main.rs`) is a thin wrapper over this crate so that
//! argument parsing and every subcommand stay unit-testable:
//!
//! * [`args`] — the minimal `--flag value` parser (hand-rolled; the
//!   offline workspace has no CLI dependency);
//! * [`io`] — the shared CSV converters re-exported from
//!   [`habit_service::csvio`] plus the `-` (stdin) input convention;
//! * [`commands`] — one thin adapter per subcommand (`synth`, `fit`,
//!   `impute`, `batch`, `repair`, `info`, `eval`, `export`, `serve`)
//!   plus the dispatcher, [`commands::help_text`] (usage, worked
//!   examples, exit codes, wire protocol) and [`commands::version`].
//!
//! Every command that touches a model routes through
//! [`habit_service::Service`] — the same facade the `habit serve`
//! daemon exposes over TCP — so the CLI, the daemon, and the tests all
//! exercise one code path, and every failure carries a stable
//! [`habit_service::ErrorCode`].
//!
//! ## Exit codes
//!
//! The binary's exit codes are stable and shell-friendly — scripts may
//! branch on them. They derive from the error taxonomy in exactly one
//! place (`main`):
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | success |
//! | 1 | runtime failure: bad input file, no imputable path, I/O error |
//! | 2 | usage error (`bad_request`): unknown command or flag, missing/unparsable value |
//!
//! Usage errors print the offending flag to stderr (argument-parse
//! failures add the full help text); runtime failures print a one-line
//! `error: … [code]` diagnostic carrying the machine-readable code the
//! daemon would return for the same failure.
//!
//! ## Typical session
//!
//! ```text
//! habit synth  --dataset kiel --scale 0.3 --out kiel.csv
//! habit fit    --input kiel.csv --resolution 9 --tolerance 100 --out kiel.habit
//! habit impute --model kiel.habit --from 10.30,57.10,0 --to 10.85,57.45,3600
//! habit serve  --model kiel.habit --port 4740
//! ```
//!
//! Run `habit help` for the complete command reference.

pub mod args;
pub mod commands;
pub mod io;
