//! CLI subcommands — thin adapters over [`habit_service::Service`].
//!
//! Each command module parses flags into a typed
//! [`habit_service::Request`], calls the same [`Service`] the `habit
//! serve` daemon runs, and renders the typed [`habit_service::Response`]
//! as text/CSV. No command loads a model, parses wire payloads, or maps
//! errors itself: every failure is a [`ServiceError`] whose taxonomy
//! code `main` turns into the process exit code (0 success /
//! 1 runtime / 2 usage) in exactly one place.

pub mod batch;
pub mod eval_cmd;
pub mod export;
pub mod fit;
pub mod impute;
pub mod info;
pub mod refit;
pub mod repair;
pub mod serve;
pub mod synth_cmd;

use crate::args::Args;
use habit_service::{BatchOutcome, Request, Response, Service, ServiceConfig, ServiceError};

/// Opens a one-shot [`Service`] over the model blob at `model_path` for
/// a CLI adapter invocation.
pub(crate) fn open_service(
    model_path: &str,
    threads: usize,
    cache_capacity: usize,
) -> Result<Service, ServiceError> {
    Service::with_model_file(
        ServiceConfig {
            threads,
            cache_capacity,
        },
        model_path,
    )
}

/// Shared front half of the gap-CSV commands (`batch`, `impute
/// --input`): read the gap CSV (`-` = stdin), reject empty input, open
/// the service over `model_path`, answer the whole file through one
/// [`Request::ImputeBatch`], and report per-gap failures on stderr.
/// Rendering differs per command and stays with the caller. `cache`
/// defaults to one entry per gap when `None`; `provenance` requests
/// per-point repair provenance on every result.
pub(crate) fn run_gap_csv_batch(
    model_path: &str,
    input: &str,
    threads: usize,
    cache: Option<usize>,
    provenance: bool,
) -> Result<(Service, BatchOutcome), ServiceError> {
    let gaps = crate::io::read_gaps(input)?;
    if gaps.is_empty() {
        return Err(ServiceError::new(
            habit_service::ErrorCode::BadInput,
            format!("{input}: no gap queries (expected lon1,lat1,t1,lon2,lat2,t2 rows)"),
        ));
    }
    let service = open_service(model_path, threads, cache.unwrap_or(gaps.len().max(1)))?;
    let Response::Batch(batch) = service.handle(&Request::ImputeBatch { gaps, provenance })? else {
        unreachable!("ImputeBatch answers Batch");
    };
    for (i, result) in batch.results.iter().enumerate() {
        if let Err(failure) = result {
            eprintln!("gap {i}: {failure}");
        }
    }
    Ok((service, batch))
}

/// Runs the subcommand named in `args.command`.
pub fn dispatch(args: &Args) -> Result<(), ServiceError> {
    match args.command.as_str() {
        "synth" => synth_cmd::run(args),
        "fit" => fit::run(args),
        "refit" => refit::run(args),
        "impute" => impute::run(args),
        "batch" => batch::run(args),
        "repair" => repair::run(args),
        "info" => info::run(args),
        "eval" => eval_cmd::run(args),
        "export" => export::run(args),
        "serve" => serve::run(args),
        "help" | "--help" | "-h" => {
            println!("{}", help_text());
            Ok(())
        }
        "version" | "--version" | "-V" => {
            println!("habit {}", version());
            Ok(())
        }
        other => Err(ServiceError::bad_request(format!(
            "unknown command `{other}` (try `habit help`)"
        ))),
    }
}

/// The crate version the binary was built from.
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// The `habit help` text.
pub fn help_text() -> &'static str {
    "habit — H3 Aggregation-Based Imputation for vessel Trajectories

USAGE: habit <command> [flags]

COMMANDS
  synth    generate a synthetic AIS CSV
           --dataset dan|kiel|sar  --out FILE  [--seed N] [--scale F]
  fit      fit a HABIT model from an AIS CSV
           --input FILE  --out FILE  [--resolution 6..10] [--tolerance M]
           [--projection center|median] [--save-state]
           (--save-state embeds the fit state: bigger blob, refittable)
           --input FILE  --shards-out DIR  [--fleet-shards N]
           (fleet fit: per-shard refittable blobs + fleet.hfm manifest
           into DIR, served by `serve --shards`; default 4 shards)
  refit    merge a delta AIS CSV of NEW trips into a fitted model
           --model FILE  --input FILE  [--out FILE] [--threads N]
           (model must embed fit state — `fit --save-state`; without
           --out the refitted blob overwrites --model; byte-identical
           to a from-scratch fit over history + delta)
           --shards DIR  --shard N  --input FILE  [--threads N]
           (fleet refit: merge the delta's contribution to shard N and
           rewrite its blob + the manifest in DIR in place)
  impute   impute one gap (--from/--to) or a gap CSV (--input FILE|-)
           --model FILE  --from LON,LAT,T  --to LON,LAT,T  [--out FILE]
           --model FILE  --input FILE|-  [--out FILE]
           [--provenance]   (emit per-point repair provenance CSV:
           t,lon,lat,kind,cell,from_cell,cell_msgs,edge_transitions,
           cost_share,confidence — kind is observed|route|synthesized)
  batch    impute a CSV of gap queries concurrently (dedup + route cache)
           --model FILE  --input FILE|-  --out FILE  [--threads N]
           [--cache ENTRIES]   (defaults: all cores, 4096 routes; `-` = stdin)
  repair   fill every gap in a single-vessel track CSV (t,lon,lat)
           --model FILE  --input FILE  --out FILE  [--threshold SECONDS]
           [--densify METERS|none]   (default: 250 m)
  info     describe a fitted model
           --model FILE
  eval     quick accuracy/latency comparison on a synthetic dataset
           --dataset dan|kiel|sar  [--seed N] [--scale F] [--gap MINUTES]
  export   build a traffic density map from an AIS CSV
           --input FILE  --out FILE  [--resolution 1..15]
           [--format geojson|csv] [--model FILE] [--preview]
  serve    long-lived line-JSON-over-TCP daemon over a fitted model
           --model FILE  [--host ADDR] [--port N] [--threads N]
           [--cache ENTRIES] [--conn-threads N] [--watch-stdin]
           [--metrics-port N] [--batch-window-us N] [--batch-max-gaps N]
           [--no-coalesce] [--max-line-bytes N]
           (defaults: 127.0.0.1:4740; --port 0 picks a free port;
           --watch-stdin shuts down cleanly when stdin closes;
           --metrics-port serves plaintext metrics over HTTP on the
           same host — GET / for counters, GET /spans for recent
           stage spans as line JSON; concurrent impute traffic is
           coalesced into shared engine batches — byte-identical
           answers, collected for up to --batch-window-us (1000) or
           until --batch-max-gaps (128) queue, a full queue rejects
           with the typed `overloaded` error; --no-coalesce restores
           the per-connection direct path; request lines longer than
           --max-line-bytes (16 MiB) are rejected)
           --shards DIR  [--model FILE]  [...same flags]
           (sharded serving: route each gap to the shard owning its
           endpoint tiles, seam-stitch cross-shard gaps; --model then
           loads a global fallback blob that rescues shard misses and
           answers `repair`)
  help     this text
  version  print the habit version (also --version / -V)

EXAMPLES
  # Synthesize a small KIEL-style corridor, fit a model, inspect it:
  habit synth --dataset kiel --scale 0.3 --seed 42 --out kiel.csv
  habit fit --input kiel.csv --resolution 9 --tolerance 100 --out kiel.habit
  habit info --model kiel.habit

  # Incremental refit: fit once with the state embedded, then absorb
  # each new day of trips without re-reading the history:
  habit fit --input day1.csv --out kiel.habit --save-state
  habit refit --model kiel.habit --input day2.csv
  habit refit --model kiel.habit --input day3.csv

  # Impute one 60-minute gap (from/to are lon,lat,t triples):
  habit impute --model kiel.habit --from 10.30,57.10,0 --to 10.85,57.45,3600

  # Impute a whole gap file at once (prints a throughput summary):
  habit batch --model kiel.habit --input gaps.csv --out imputed.csv --threads 4

  # Stream gap queries from stdin (`-`), matching the daemon's shape:
  cat gaps.csv | habit batch --model kiel.habit --input - --out imputed.csv
  head -3 gaps.csv | habit impute --model kiel.habit --input -

  # Repair every gap in a single-vessel track, then export a density map:
  habit repair --model kiel.habit --input track.csv --out repaired.csv
  habit export --input kiel.csv --resolution 8 --format geojson --out density.geojson

  # Quick accuracy/latency comparison on a synthetic dataset:
  habit eval --dataset sar --scale 0.2 --gap 60

  # Serve the model over TCP (habit-wire/v1: one JSON request per line)
  # and talk to it with netcat:
  habit serve --model kiel.habit --port 4740 &
  printf '%s\\n' '{\"v\":1,\"op\":\"health\"}' | nc 127.0.0.1 4740
  printf '%s\\n' \\
    '{\"v\":1,\"op\":\"impute\",\"from\":[10.30,57.10,0],\"to\":[10.85,57.45,3600]}' \\
    | nc 127.0.0.1 4740
  printf '%s\\n' '{\"v\":1,\"op\":\"metrics\"}' | nc 127.0.0.1 4740
  printf '%s\\n' '{\"v\":1,\"op\":\"shutdown\"}' | nc 127.0.0.1 4740

  # Scrape the daemon's plaintext metrics endpoint (counters, gauges,
  # latency histograms) without speaking the wire protocol:
  habit serve --model kiel.habit --port 4740 --metrics-port 9464 &
  curl -s 127.0.0.1:9464/

  # Sharded serving: fit a 4-shard fleet, serve it with a global
  # fallback blob, refit one shard in place:
  habit fit --input kiel.csv --shards-out fleet/ --fleet-shards 4
  habit serve --shards fleet/ --model kiel.habit --port 4740 &
  habit refit --shards fleet/ --shard 2 --input day2.csv

EXIT CODES (shell-friendly, stable)
  0  success
  1  runtime failure (bad input file, no path found, I/O error)
  2  usage error (unknown command/flag, missing or unparsable value)
  Codes derive from the service error taxonomy: `bad_request` exits 2,
  every other error code exits 1. Daemon responses carry the same codes
  (bad_request, io, csv, bad_input, grid, no_model, empty_model,
  no_path, snap_failed, bad_model_blob, unsorted_input, config_mismatch,
  state_version, config_drift, shard_miss, overloaded, internal) in
  {\"ok\":false,\"error\":{\"code\":...,\"message\":...}}.

Formats: AIS CSV = mmsi,t,lon,lat[,sog,cog,heading]; track CSV = t,lon,lat;
gap CSV = lon1,lat1,t1,lon2,lat2,t2 (`batch`/`impute --input`; outputs
prefix a `gap` query-index column). Model files are HABIT's compact binary
blobs (`fit` output). Wire protocol: habit-wire/v1, line-delimited JSON
(endpoints [lon,lat,t], track points [t,lon,lat], cells hex strings)."
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_command_is_a_usage_error() {
        let args = Args::parse(["frobnicate".to_string()]).unwrap();
        let err = dispatch(&args).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
        assert_eq!(err.code, habit_service::ErrorCode::BadRequest);
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn help_runs() {
        let args = Args::parse(["help".to_string()]).unwrap();
        assert!(dispatch(&args).is_ok());
        assert!(help_text().contains("impute"));
    }

    #[test]
    fn help_documents_examples_exit_codes_and_serve() {
        let text = help_text();
        assert!(text.contains("EXAMPLES"));
        assert!(text.contains("habit fit --input kiel.csv"));
        assert!(text.contains("EXIT CODES"));
        assert!(text.contains("2  usage error"));
        assert!(text.contains("version"));
        // The daemon and its wire protocol are documented with a worked
        // netcat example and the full error-code table.
        assert!(text.contains("serve"));
        assert!(text.contains("nc 127.0.0.1 4740"));
        assert!(text.contains("\"op\":\"shutdown\""));
        for code in habit_service::ErrorCode::ALL {
            assert!(text.contains(code.as_str()), "help lists {code}");
        }
        // stdin streaming is documented.
        assert!(text.contains("--input -"));
    }

    #[test]
    fn version_runs_under_all_spellings() {
        for spelling in ["version", "--version", "-V"] {
            let args = Args::parse([spelling.to_string()]).unwrap();
            assert!(dispatch(&args).is_ok(), "{spelling}");
        }
        assert!(!version().is_empty());
        assert!(
            version().split('.').count() >= 2,
            "semver-ish: {}",
            version()
        );
    }
}
