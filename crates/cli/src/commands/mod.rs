//! CLI subcommands. Each command is a function from parsed [`Args`] to a
//! `Result`, writing human output to stdout; `main` maps errors to exit
//! codes.

pub mod batch;
pub mod eval_cmd;
pub mod export;
pub mod fit;
pub mod impute;
pub mod info;
pub mod repair;
pub mod synth_cmd;

use crate::args::Args;
use std::error::Error;

/// Runs the subcommand named in `args.command`.
pub fn dispatch(args: &Args) -> Result<(), Box<dyn Error>> {
    match args.command.as_str() {
        "synth" => synth_cmd::run(args),
        "fit" => fit::run(args),
        "impute" => impute::run(args),
        "batch" => batch::run(args),
        "repair" => repair::run(args),
        "info" => info::run(args),
        "eval" => eval_cmd::run(args),
        "export" => export::run(args),
        "help" | "--help" | "-h" => {
            println!("{}", help_text());
            Ok(())
        }
        "version" | "--version" | "-V" => {
            println!("habit {}", version());
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `habit help`)").into()),
    }
}

/// The crate version the binary was built from.
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// The `habit help` text.
pub fn help_text() -> &'static str {
    "habit — H3 Aggregation-Based Imputation for vessel Trajectories

USAGE: habit <command> [flags]

COMMANDS
  synth    generate a synthetic AIS CSV
           --dataset dan|kiel|sar  --out FILE  [--seed N] [--scale F]
  fit      fit a HABIT model from an AIS CSV
           --input FILE  --out FILE  [--resolution 6..10] [--tolerance M]
           [--projection center|median]
  impute   impute one gap with a fitted model
           --model FILE  --from LON,LAT,T  --to LON,LAT,T  [--out FILE]
  batch    impute a CSV of gap queries concurrently (dedup + route cache)
           --model FILE  --input FILE  --out FILE  [--threads N]
           [--cache ENTRIES]   (defaults: all cores, 4096 routes)
  repair   fill every gap in a single-vessel track CSV (t,lon,lat)
           --model FILE  --input FILE  --out FILE  [--threshold SECONDS]
           [--densify METERS|none]   (default: 250 m)
  info     describe a fitted model
           --model FILE
  eval     quick accuracy/latency comparison on a synthetic dataset
           --dataset dan|kiel|sar  [--seed N] [--scale F] [--gap MINUTES]
  export   build a traffic density map from an AIS CSV
           --input FILE  --out FILE  [--resolution 1..15]
           [--format geojson|csv] [--model FILE] [--preview]
  help     this text
  version  print the habit version (also --version / -V)

EXAMPLES
  # Synthesize a small KIEL-style corridor, fit a model, inspect it:
  habit synth --dataset kiel --scale 0.3 --seed 42 --out kiel.csv
  habit fit --input kiel.csv --resolution 9 --tolerance 100 --out kiel.habit
  habit info --model kiel.habit

  # Impute one 60-minute gap (from/to are lon,lat,t triples):
  habit impute --model kiel.habit --from 10.30,57.10,0 --to 10.85,57.45,3600

  # Impute a whole gap file at once (prints a throughput summary):
  habit batch --model kiel.habit --input gaps.csv --out imputed.csv --threads 4

  # Repair every gap in a single-vessel track, then export a density map:
  habit repair --model kiel.habit --input track.csv --out repaired.csv
  habit export --input kiel.csv --resolution 8 --format geojson --out density.geojson

  # Quick accuracy/latency comparison on a synthetic dataset:
  habit eval --dataset sar --scale 0.2 --gap 60

EXIT CODES (shell-friendly, stable)
  0  success
  1  runtime failure (bad input file, no path found, I/O error)
  2  usage error (unknown command/flag, missing or unparsable value)

Formats: AIS CSV = mmsi,t,lon,lat[,sog,cog,heading]; track CSV = t,lon,lat;
gap CSV = lon1,lat1,t1,lon2,lat2,t2 (`batch` input; its output prefixes a
`gap` query-index column). Model files are HABIT's compact binary blobs
(`fit` output)."
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_command_is_an_error() {
        let args = Args::parse(["frobnicate".to_string()]).unwrap();
        let err = dispatch(&args).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn help_runs() {
        let args = Args::parse(["help".to_string()]).unwrap();
        assert!(dispatch(&args).is_ok());
        assert!(help_text().contains("impute"));
    }

    #[test]
    fn help_documents_examples_and_exit_codes() {
        let text = help_text();
        assert!(text.contains("EXAMPLES"));
        assert!(text.contains("habit fit --input kiel.csv"));
        assert!(text.contains("EXIT CODES"));
        assert!(text.contains("2  usage error"));
        assert!(text.contains("version"));
    }

    #[test]
    fn version_runs_under_all_spellings() {
        for spelling in ["version", "--version", "-V"] {
            let args = Args::parse([spelling.to_string()]).unwrap();
            assert!(dispatch(&args).is_ok(), "{spelling}");
        }
        assert!(!version().is_empty());
        assert!(
            version().split('.').count() >= 2,
            "semver-ish: {}",
            version()
        );
    }
}
