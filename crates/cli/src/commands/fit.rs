//! `habit fit` — a thin adapter: flags → [`Request::Fit`] → summary.

use crate::args::Args;
use habit_service::{FitSpec, Request, Response, Service, ServiceConfig, ServiceError};

pub use habit_service::parse_projection;

/// Entry point for `habit fit`.
pub fn run(args: &Args) -> Result<(), ServiceError> {
    args.check_flags(&[
        "input",
        "out",
        "resolution",
        "tolerance",
        "projection",
        "save-state",
        "shards-out",
        "fleet-shards",
    ])?;
    let input = args.require("input")?;
    let shards_out = args.get("shards-out").map(str::to_string);
    // `--out` stays mandatory for single-blob fits; a fleet fit names a
    // directory instead. Passing both flows through to the service,
    // which rejects the combination with one canonical message.
    let out = match (&shards_out, args.get("out")) {
        (Some(_), maybe) => maybe.map(str::to_string),
        (None, _) => Some(args.require("out")?.to_string()),
    };
    let resolution: u8 = args.get_or("resolution", 9)?;
    let tolerance: f64 = args.get_or("tolerance", 100.0)?;
    let projection = parse_projection(args.get("projection").unwrap_or("median"))?;
    let save_state = args.switch("save-state");
    let fleet_shards: u32 = args.get_or("fleet-shards", FitSpec::default().fleet_shards)?;

    // A model-less service: Fit creates (and would serve) the model.
    let service = Service::new(ServiceConfig::default());
    let spec = FitSpec {
        input: input.to_string(),
        resolution,
        tolerance_m: tolerance,
        projection,
        save_to: out,
        save_state,
        shards_out,
        fleet_shards,
    };
    let Response::Fitted(summary) = service.handle(&Request::Fit(spec))? else {
        unreachable!("Fit answers Fitted");
    };
    let dest = summary.saved_to.clone().unwrap_or_default();
    if summary.shards > 0 {
        println!(
            "fitted r={resolution} t={tolerance} on {} trips ({} reports) into {} shards: {} cells, {} transitions, {} bytes (+fit state, +manifest) -> {dest}",
            summary.trips,
            summary.reports,
            summary.shards,
            summary.cells,
            summary.transitions,
            summary.model_bytes,
        );
    } else {
        let state_note = if save_state { " (+fit state)" } else { "" };
        println!(
            "fitted r={resolution} t={tolerance} on {} trips ({} reports): {} cells, {} transitions, {} bytes{state_note} -> {dest}",
            summary.trips,
            summary.reports,
            summary.cells,
            summary.transitions,
            summary.model_bytes,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::synth_cmd::build_dataset;
    use crate::io::write_ais_csv;
    use habit_core::{CellProjection, HabitModel};

    #[test]
    fn projection_parse() {
        assert_eq!(parse_projection("median").unwrap(), CellProjection::Median);
        assert_eq!(parse_projection("C").unwrap(), CellProjection::Center);
        assert!(parse_projection("middle").is_err());
    }

    #[test]
    fn fit_end_to_end() {
        let dir = std::env::temp_dir();
        let csv = dir.join(format!("habit-fit-{}.csv", std::process::id()));
        let model_path = dir.join(format!("habit-fit-{}.habit", std::process::id()));
        let dataset = build_dataset("kiel", 7, 0.05).unwrap();
        write_ais_csv(&dataset.trajectories, &csv).unwrap();

        let args = Args::parse(
            [
                "fit",
                "--input",
                csv.to_str().unwrap(),
                "--out",
                model_path.to_str().unwrap(),
                "--resolution",
                "8",
                "--tolerance",
                "250",
            ]
            .map(String::from),
        )
        .unwrap();
        run(&args).expect("fit");

        let bytes = std::fs::read(&model_path).expect("model written");
        let model = HabitModel::from_bytes(&bytes).expect("valid model blob");
        assert_eq!(model.config().resolution, 8);
        assert_eq!(model.config().rdp_tolerance_m, 250.0);
        assert!(model.node_count() > 10);
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn fleet_fit_writes_shard_blobs_and_a_manifest() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let csv = dir.join(format!("habit-fit-fleet-{pid}.csv"));
        let fleet_dir = dir.join(format!("habit-fit-fleet-{pid}"));
        let dataset = build_dataset("kiel", 7, 0.05).unwrap();
        write_ais_csv(&dataset.trajectories, &csv).unwrap();

        let args = Args::parse(
            [
                "fit",
                "--input",
                csv.to_str().unwrap(),
                "--shards-out",
                fleet_dir.to_str().unwrap(),
                "--fleet-shards",
                "2",
            ]
            .map(String::from),
        )
        .unwrap();
        run(&args).expect("fleet fit");

        let manifest = std::fs::read(fleet_dir.join("fleet.hfm")).expect("manifest written");
        assert_eq!(&manifest[..4], b"HFM1");
        for shard in 0..2u32 {
            let blob =
                std::fs::read(fleet_dir.join(format!("shard-{shard:04}.habit"))).expect("blob");
            let model = HabitModel::from_bytes(&blob).expect("shard blob loads");
            assert!(model.fit_provenance().is_some(), "shard blobs embed state");
        }

        // --out and --shards-out are mutually exclusive.
        let args = Args::parse(
            [
                "fit",
                "--input",
                csv.to_str().unwrap(),
                "--shards-out",
                fleet_dir.to_str().unwrap(),
                "--out",
                "/tmp/x.habit",
            ]
            .map(String::from),
        )
        .unwrap();
        let err = run(&args).unwrap_err();
        assert_eq!(err.code, habit_service::ErrorCode::BadRequest);

        std::fs::remove_file(&csv).ok();
        std::fs::remove_dir_all(&fleet_dir).ok();
    }

    #[test]
    fn fit_rejects_empty_input_and_bad_resolution() {
        let dir = std::env::temp_dir();
        let csv = dir.join(format!("habit-fit-empty-{}.csv", std::process::id()));
        // Header + one stationary point: no trips survive segmentation.
        std::fs::write(&csv, "mmsi,t,lon,lat\n1,0,10.0,56.0\n").unwrap();
        let args = Args::parse(
            [
                "fit",
                "--input",
                csv.to_str().unwrap(),
                "--out",
                "/tmp/x.habit",
            ]
            .map(String::from),
        )
        .unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.to_string().contains("no trips"), "{err}");
        assert_eq!(err.code, habit_service::ErrorCode::EmptyModel);

        let args = Args::parse(
            [
                "fit",
                "--input",
                csv.to_str().unwrap(),
                "--out",
                "/tmp/x.habit",
                "--resolution",
                "99",
            ]
            .map(String::from),
        )
        .unwrap();
        let err = run(&args).unwrap_err();
        std::fs::remove_file(&csv).ok();
        assert_eq!(err.code, habit_service::ErrorCode::BadRequest);
        assert!(err.to_string().contains("out of range"), "{err}");
    }
}
