//! `habit fit` — fit a HABIT model from an AIS CSV and save it.

use crate::args::Args;
use crate::io::read_ais_csv;
use ais::{segment_all, trips_to_table, TripConfig};
use habit_core::{CellProjection, HabitConfig, HabitModel};
use std::error::Error;
use std::path::Path;

/// Parses the `--projection` flag.
pub fn parse_projection(raw: &str) -> Result<CellProjection, String> {
    match raw.to_ascii_lowercase().as_str() {
        "center" | "c" => Ok(CellProjection::Center),
        "median" | "w" => Ok(CellProjection::Median),
        other => Err(format!("unknown projection `{other}` (center|median)")),
    }
}

/// Entry point for `habit fit`.
pub fn run(args: &Args) -> Result<(), Box<dyn Error>> {
    args.check_flags(&["input", "out", "resolution", "tolerance", "projection"])?;
    let input = args.require("input")?;
    let out = args.require("out")?;
    let resolution: u8 = args.get_or("resolution", 9)?;
    let tolerance: f64 = args.get_or("tolerance", 100.0)?;
    let projection = parse_projection(args.get("projection").unwrap_or("median"))?;
    if !(1..=hexgrid::MAX_RESOLUTION).contains(&resolution) {
        return Err(format!("--resolution {resolution} out of range").into());
    }

    let trajectories = read_ais_csv(Path::new(input))?;
    let trips = segment_all(&trajectories, &TripConfig::default());
    if trips.is_empty() {
        return Err("no trips after segmentation — check the input data".into());
    }
    let config = HabitConfig {
        resolution,
        rdp_tolerance_m: tolerance,
        projection,
        ..HabitConfig::default()
    };
    let model = HabitModel::fit(&trips_to_table(&trips), config)?;
    let bytes = model.to_bytes();
    std::fs::write(out, &bytes)?;
    println!(
        "fitted r={resolution} t={tolerance} on {} trips ({} reports): {} cells, {} transitions, {} bytes -> {out}",
        trips.len(),
        trips.iter().map(|t| t.points.len()).sum::<usize>(),
        model.node_count(),
        model.edge_count(),
        bytes.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::synth_cmd::build_dataset;
    use crate::io::write_ais_csv;

    #[test]
    fn projection_parse() {
        assert_eq!(parse_projection("median").unwrap(), CellProjection::Median);
        assert_eq!(parse_projection("C").unwrap(), CellProjection::Center);
        assert!(parse_projection("middle").is_err());
    }

    #[test]
    fn fit_end_to_end() {
        let dir = std::env::temp_dir();
        let csv = dir.join(format!("habit-fit-{}.csv", std::process::id()));
        let model_path = dir.join(format!("habit-fit-{}.habit", std::process::id()));
        let dataset = build_dataset("kiel", 7, 0.05).unwrap();
        write_ais_csv(&dataset.trajectories, &csv).unwrap();

        let args = Args::parse(
            [
                "fit",
                "--input",
                csv.to_str().unwrap(),
                "--out",
                model_path.to_str().unwrap(),
                "--resolution",
                "8",
                "--tolerance",
                "250",
            ]
            .map(String::from),
        )
        .unwrap();
        run(&args).expect("fit");

        let bytes = std::fs::read(&model_path).expect("model written");
        let model = HabitModel::from_bytes(&bytes).expect("valid model blob");
        assert_eq!(model.config().resolution, 8);
        assert_eq!(model.config().rdp_tolerance_m, 250.0);
        assert!(model.node_count() > 10);
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn fit_rejects_empty_input() {
        let dir = std::env::temp_dir();
        let csv = dir.join(format!("habit-fit-empty-{}.csv", std::process::id()));
        // Header + one stationary point: no trips survive segmentation.
        std::fs::write(&csv, "mmsi,t,lon,lat\n1,0,10.0,56.0\n").unwrap();
        let args = Args::parse(
            [
                "fit",
                "--input",
                csv.to_str().unwrap(),
                "--out",
                "/tmp/x.habit",
            ]
            .map(String::from),
        )
        .unwrap();
        let err = run(&args).unwrap_err();
        std::fs::remove_file(&csv).ok();
        assert!(err.to_string().contains("no trips"), "{err}");
    }
}
