//! `habit fit` — a thin adapter: flags → [`Request::Fit`] → summary.

use crate::args::Args;
use habit_service::{FitSpec, Request, Response, Service, ServiceConfig, ServiceError};

pub use habit_service::parse_projection;

/// Entry point for `habit fit`.
pub fn run(args: &Args) -> Result<(), ServiceError> {
    args.check_flags(&[
        "input",
        "out",
        "resolution",
        "tolerance",
        "projection",
        "save-state",
    ])?;
    let input = args.require("input")?;
    let out = args.require("out")?;
    let resolution: u8 = args.get_or("resolution", 9)?;
    let tolerance: f64 = args.get_or("tolerance", 100.0)?;
    let projection = parse_projection(args.get("projection").unwrap_or("median"))?;
    let save_state = args.switch("save-state");

    // A model-less service: Fit creates (and would serve) the model.
    let service = Service::new(ServiceConfig::default());
    let spec = FitSpec {
        input: input.to_string(),
        resolution,
        tolerance_m: tolerance,
        projection,
        save_to: Some(out.to_string()),
        save_state,
    };
    let Response::Fitted(summary) = service.handle(&Request::Fit(spec))? else {
        unreachable!("Fit answers Fitted");
    };
    let state_note = if save_state { " (+fit state)" } else { "" };
    println!(
        "fitted r={resolution} t={tolerance} on {} trips ({} reports): {} cells, {} transitions, {} bytes{state_note} -> {out}",
        summary.trips,
        summary.reports,
        summary.cells,
        summary.transitions,
        summary.model_bytes,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::synth_cmd::build_dataset;
    use crate::io::write_ais_csv;
    use habit_core::{CellProjection, HabitModel};

    #[test]
    fn projection_parse() {
        assert_eq!(parse_projection("median").unwrap(), CellProjection::Median);
        assert_eq!(parse_projection("C").unwrap(), CellProjection::Center);
        assert!(parse_projection("middle").is_err());
    }

    #[test]
    fn fit_end_to_end() {
        let dir = std::env::temp_dir();
        let csv = dir.join(format!("habit-fit-{}.csv", std::process::id()));
        let model_path = dir.join(format!("habit-fit-{}.habit", std::process::id()));
        let dataset = build_dataset("kiel", 7, 0.05).unwrap();
        write_ais_csv(&dataset.trajectories, &csv).unwrap();

        let args = Args::parse(
            [
                "fit",
                "--input",
                csv.to_str().unwrap(),
                "--out",
                model_path.to_str().unwrap(),
                "--resolution",
                "8",
                "--tolerance",
                "250",
            ]
            .map(String::from),
        )
        .unwrap();
        run(&args).expect("fit");

        let bytes = std::fs::read(&model_path).expect("model written");
        let model = HabitModel::from_bytes(&bytes).expect("valid model blob");
        assert_eq!(model.config().resolution, 8);
        assert_eq!(model.config().rdp_tolerance_m, 250.0);
        assert!(model.node_count() > 10);
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn fit_rejects_empty_input_and_bad_resolution() {
        let dir = std::env::temp_dir();
        let csv = dir.join(format!("habit-fit-empty-{}.csv", std::process::id()));
        // Header + one stationary point: no trips survive segmentation.
        std::fs::write(&csv, "mmsi,t,lon,lat\n1,0,10.0,56.0\n").unwrap();
        let args = Args::parse(
            [
                "fit",
                "--input",
                csv.to_str().unwrap(),
                "--out",
                "/tmp/x.habit",
            ]
            .map(String::from),
        )
        .unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.to_string().contains("no trips"), "{err}");
        assert_eq!(err.code, habit_service::ErrorCode::EmptyModel);

        let args = Args::parse(
            [
                "fit",
                "--input",
                csv.to_str().unwrap(),
                "--out",
                "/tmp/x.habit",
                "--resolution",
                "99",
            ]
            .map(String::from),
        )
        .unwrap();
        let err = run(&args).unwrap_err();
        std::fs::remove_file(&csv).ok();
        assert_eq!(err.code, habit_service::ErrorCode::BadRequest);
        assert!(err.to_string().contains("out of range"), "{err}");
    }
}
