//! `habit batch` — impute a stream of gap queries concurrently.
//!
//! Reads a gap CSV (`lon1,lat1,t1,lon2,lat2,t2`, one query per row),
//! answers the whole batch through `habit-engine`'s [`BatchImputer`]
//! (route dedup + LRU cache + thread pool), writes the imputed points as
//! `gap,t,lon,lat` and prints a throughput summary. Per-query failures
//! (no path, unsnappable endpoint) are reported on stderr and in the
//! summary but do not fail the run — a batch server keeps serving.

use crate::args::Args;
use crate::io::{read_gaps_csv, write_batch_csv};
use habit_core::HabitModel;
use habit_engine::{BatchImputer, ThreadPool};
use std::error::Error;
use std::path::Path;
use std::time::Instant;

/// Default route-cache capacity (entries).
const DEFAULT_CACHE: usize = 4096;

/// Default worker count: the machine's available parallelism.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Entry point for `habit batch`.
pub fn run(args: &Args) -> Result<(), Box<dyn Error>> {
    args.check_flags(&["model", "input", "out", "threads", "cache"])?;
    let model_path = args.require("model")?;
    let input = args.require("input")?;
    let out = args.require("out")?;
    let threads: usize = args.get_or("threads", default_threads())?;
    let cache: usize = args.get_or("cache", DEFAULT_CACHE)?;

    let queries = read_gaps_csv(Path::new(input))?;
    if queries.is_empty() {
        return Err(
            format!("{input}: no gap queries (expected lon1,lat1,t1,lon2,lat2,t2 rows)").into(),
        );
    }
    let bytes = std::fs::read(model_path)?;
    let model = HabitModel::from_bytes(&bytes)?;

    let pool = ThreadPool::new(threads);
    let imputer = BatchImputer::new(&model, cache);
    let t0 = Instant::now();
    let (results, stats) = imputer.impute_batch(&queries, &pool);
    let elapsed = t0.elapsed().as_secs_f64();

    for (i, result) in results.iter().enumerate() {
        if let Err(failure) = result {
            eprintln!("gap {i}: {failure}");
        }
    }
    let row_results: Vec<Option<&habit_core::Imputation>> =
        results.iter().map(|r| r.as_ref().ok()).collect();
    write_batch_csv(&row_results, Path::new(out))?;

    let qps = stats.queries as f64 / elapsed.max(1e-9);
    let hit_rate = if stats.unique_routes > 0 {
        stats.cache_hits as f64 / stats.unique_routes as f64 * 100.0
    } else {
        0.0
    };
    println!(
        "imputed {}/{} gaps ({} failed) in {elapsed:.3} s — {qps:.1} queries/s -> {out}",
        stats.ok, stats.queries, stats.failed
    );
    println!(
        "routes: {} unique, {} searched, {} from cache ({hit_rate:.1}% hit rate); threads {}, cache {}/{}",
        stats.unique_routes,
        stats.routes_computed,
        stats.cache_hits,
        pool.threads(),
        imputer.cached_routes(),
        cache,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ais::{trips_to_table, AisPoint, Trip};
    use habit_core::HabitConfig;

    fn write_model(path: &Path) {
        let trips: Vec<Trip> = (0..4)
            .map(|k| Trip {
                trip_id: k + 1,
                mmsi: 100 + k,
                points: (0..150)
                    .map(|i| {
                        AisPoint::new(
                            100 + k,
                            i as i64 * 60,
                            10.0 + i as f64 * 0.003,
                            56.0,
                            12.0,
                            90.0,
                        )
                    })
                    .collect(),
            })
            .collect();
        let model = HabitModel::fit(&trips_to_table(&trips), HabitConfig::default()).unwrap();
        std::fs::write(path, model.to_bytes()).unwrap();
    }

    fn run_args(tokens: &[&str]) -> Result<(), Box<dyn Error>> {
        run(&Args::parse(tokens.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn batch_imputes_a_gap_file() {
        let dir = std::env::temp_dir();
        let model = dir.join(format!("habit-batch-{}.habit", std::process::id()));
        let gaps = dir.join(format!("habit-batch-{}-gaps.csv", std::process::id()));
        let out = dir.join(format!("habit-batch-{}-out.csv", std::process::id()));
        write_model(&model);
        // Repeated routes exercise the dedup/cache path; one gap sits in
        // open water and fails to find a path without failing the run.
        std::fs::write(
            &gaps,
            "lon1,lat1,t1,lon2,lat2,t2\n\
             10.05,56.0,0,10.35,56.0,3600\n\
             10.05,56.0,100,10.35,56.0,3700\n\
             10.10,56.0,0,10.40,56.0,3600\n",
        )
        .unwrap();
        run_args(&[
            "batch",
            "--model",
            model.to_str().unwrap(),
            "--input",
            gaps.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--threads",
            "2",
            "--cache",
            "16",
        ])
        .expect("batch");
        let text = std::fs::read_to_string(&out).unwrap();
        std::fs::remove_file(&model).ok();
        std::fs::remove_file(&gaps).ok();
        std::fs::remove_file(&out).ok();
        assert!(text.starts_with("gap,t,lon,lat"));
        assert!(text.lines().count() > 3, "{text}");
        // All three gap ids appear.
        for id in ["0", "1", "2"] {
            assert!(
                text.lines()
                    .skip(1)
                    .any(|l| l.split(',').next() == Some(id)),
                "gap {id} missing from output"
            );
        }
    }

    #[test]
    fn rejects_missing_files_and_empty_input() {
        let err = run_args(&[
            "batch",
            "--model",
            "/nonexistent.habit",
            "--input",
            "/nonexistent.csv",
            "--out",
            "/tmp/x.csv",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("csv"), "{err}");

        let dir = std::env::temp_dir();
        let empty = dir.join(format!("habit-batch-{}-empty.csv", std::process::id()));
        std::fs::write(&empty, "lon1,lat1,t1,lon2,lat2,t2\n").unwrap();
        let err = run_args(&[
            "batch",
            "--model",
            "/nonexistent.habit",
            "--input",
            empty.to_str().unwrap(),
            "--out",
            "/tmp/x.csv",
        ])
        .unwrap_err();
        std::fs::remove_file(&empty).ok();
        assert!(err.to_string().contains("no gap queries"), "{err}");
    }
}
