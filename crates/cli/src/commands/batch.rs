//! `habit batch` — a thin adapter: flags → [`Request::ImputeBatch`] →
//! `gap,t,lon,lat` CSV plus a throughput summary.
//!
//! Reads a gap CSV (`lon1,lat1,t1,lon2,lat2,t2`, one query per row;
//! `--input -` streams stdin), answers the whole batch through the
//! service's engine path (route dedup + LRU cache + thread pool), and
//! reports per-query failures on stderr without failing the run — a
//! batch server keeps serving.

use crate::args::Args;
use crate::commands::run_gap_csv_batch;
use crate::io::write_batch_csv;
use habit_core::Imputation;
use habit_service::ServiceError;
use std::path::Path;

/// Default route-cache capacity (entries).
const DEFAULT_CACHE: usize = 4096;

/// Default worker count: the machine's available parallelism.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Entry point for `habit batch`.
pub fn run(args: &Args) -> Result<(), ServiceError> {
    args.check_flags(&["model", "input", "out", "threads", "cache"])?;
    let model_path = args.require("model")?;
    let input = args.require("input")?;
    let out = args.require("out")?;
    let threads: usize = args.get_or("threads", default_threads())?;
    let cache: usize = args.get_or("cache", DEFAULT_CACHE)?;

    let (service, batch) = run_gap_csv_batch(model_path, input, threads, Some(cache), false)?;
    let row_results: Vec<Option<&Imputation>> =
        batch.results.iter().map(|r| r.as_ref().ok()).collect();
    write_batch_csv(&row_results, Path::new(out))?;

    let stats = batch.stats;
    let qps = stats.queries as f64 / batch.wall_s.max(1e-9);
    let hit_rate = if stats.unique_routes > 0 {
        stats.cache_hits as f64 / stats.unique_routes as f64 * 100.0
    } else {
        0.0
    };
    println!(
        "imputed {}/{} gaps ({} failed) in {:.3} s — {qps:.1} queries/s -> {out}",
        stats.ok, stats.queries, stats.failed, batch.wall_s
    );
    println!(
        "routes: {} unique, {} searched, {} from cache ({hit_rate:.1}% hit rate); threads {}, cache {}/{}",
        stats.unique_routes,
        stats.routes_computed,
        stats.cache_hits,
        service.threads(),
        batch.cached_routes,
        cache,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ais::{trips_to_table, AisPoint, Trip};
    use habit_core::{HabitConfig, HabitModel};

    fn write_model(path: &Path) {
        let trips: Vec<Trip> = (0..4)
            .map(|k| Trip {
                trip_id: k + 1,
                mmsi: 100 + k,
                points: (0..150)
                    .map(|i| {
                        AisPoint::new(
                            100 + k,
                            i as i64 * 60,
                            10.0 + i as f64 * 0.003,
                            56.0,
                            12.0,
                            90.0,
                        )
                    })
                    .collect(),
            })
            .collect();
        let model = HabitModel::fit(&trips_to_table(&trips), HabitConfig::default()).unwrap();
        std::fs::write(path, model.to_bytes()).unwrap();
    }

    fn run_args(tokens: &[&str]) -> Result<(), ServiceError> {
        run(&Args::parse(tokens.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn batch_imputes_a_gap_file() {
        let dir = std::env::temp_dir();
        let model = dir.join(format!("habit-batch-{}.habit", std::process::id()));
        let gaps = dir.join(format!("habit-batch-{}-gaps.csv", std::process::id()));
        let out = dir.join(format!("habit-batch-{}-out.csv", std::process::id()));
        write_model(&model);
        // Repeated routes exercise the dedup/cache path; the last row's
        // unsnappable endpoint (latitude 95) fails per-query without
        // failing the run — a batch server keeps serving.
        std::fs::write(
            &gaps,
            "lon1,lat1,t1,lon2,lat2,t2\n\
             10.05,56.0,0,10.35,56.0,3600\n\
             10.05,56.0,100,10.35,56.0,3700\n\
             10.10,56.0,0,10.40,56.0,3600\n\
             10.05,95.0,0,10.35,56.0,3600\n",
        )
        .unwrap();
        run_args(&[
            "batch",
            "--model",
            model.to_str().unwrap(),
            "--input",
            gaps.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--threads",
            "2",
            "--cache",
            "16",
        ])
        .expect("batch");
        let text = std::fs::read_to_string(&out).unwrap();
        std::fs::remove_file(&model).ok();
        std::fs::remove_file(&gaps).ok();
        std::fs::remove_file(&out).ok();
        assert!(text.starts_with("gap,t,lon,lat"));
        assert!(text.lines().count() > 3, "{text}");
        // The three good gaps appear; the failed one contributes no
        // rows (and did not fail the run).
        for id in ["0", "1", "2"] {
            assert!(
                text.lines()
                    .skip(1)
                    .any(|l| l.split(',').next() == Some(id)),
                "gap {id} missing from output"
            );
        }
        assert!(
            !text
                .lines()
                .skip(1)
                .any(|l| l.split(',').next() == Some("3")),
            "failed gap must contribute no rows: {text}"
        );
    }

    #[test]
    fn rejects_missing_files_and_empty_input() {
        let err = run_args(&[
            "batch",
            "--model",
            "/nonexistent.habit",
            "--input",
            "/nonexistent.csv",
            "--out",
            "/tmp/x.csv",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("csv"), "{err}");

        let dir = std::env::temp_dir();
        let empty = dir.join(format!("habit-batch-{}-empty.csv", std::process::id()));
        std::fs::write(&empty, "lon1,lat1,t1,lon2,lat2,t2\n").unwrap();
        let err = run_args(&[
            "batch",
            "--model",
            "/nonexistent.habit",
            "--input",
            empty.to_str().unwrap(),
            "--out",
            "/tmp/x.csv",
        ])
        .unwrap_err();
        std::fs::remove_file(&empty).ok();
        assert!(err.to_string().contains("no gap queries"), "{err}");
        assert_eq!(err.exit_code(), 1, "runtime failure, as documented");
    }
}
