//! `habit refit` — a thin adapter: flags → [`Request::Refit`] → summary.
//!
//! Merges a delta AIS CSV of **new** trips into a fitted model's
//! embedded fit state and re-finalizes the graph — byte-identical to
//! refitting from scratch over history ∪ delta, without re-reading the
//! history. The model file must embed its fit state (`habit fit
//! --save-state`); by default the refitted blob overwrites `--model`,
//! or lands at `--out`.

use crate::args::Args;
use crate::commands::open_service;
use habit_service::{RefitSpec, Request, Response, ServiceError};

/// Entry point for `habit refit`.
pub fn run(args: &Args) -> Result<(), ServiceError> {
    args.check_flags(&["model", "input", "out", "threads"])?;
    let model = args.require("model")?;
    let input = args.require("input")?;
    let out = args.get("out").unwrap_or(model).to_string();
    let threads: usize = args.get_or(
        "threads",
        std::thread::available_parallelism().map_or(1, usize::from),
    )?;

    let service = open_service(model, threads, 1)?;
    let Response::Refitted(summary) = service.handle(&Request::Refit(RefitSpec {
        input: input.to_string(),
        save_to: Some(out.clone()),
    }))?
    else {
        unreachable!("Refit answers Refitted");
    };
    println!(
        "refitted +{} trips (+{} reports) onto {} trips total: {} cells, {} transitions, {} bytes -> {out}",
        summary.trips_added,
        summary.reports_added,
        summary.trips_total,
        summary.cells,
        summary.transitions,
        summary.model_bytes,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use habit_core::HabitModel;
    use std::path::PathBuf;

    fn write_lane_csv(tag: &str, mmsi0: u64, vessels: u64) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("habit-cli-refit-{tag}-{}.csv", std::process::id()));
        let mut body = String::from("mmsi,t,lon,lat,sog,cog,heading\n");
        for k in 0..vessels {
            for i in 0..150i64 {
                body.push_str(&format!(
                    "{},{},{:.6},56.0,12.0,90.0,90.0\n",
                    mmsi0 + k,
                    i * 60,
                    10.0 + i as f64 * 0.003
                ));
            }
        }
        std::fs::write(&path, body).unwrap();
        path
    }

    #[test]
    fn refit_end_to_end_updates_the_blob_in_place() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let history = write_lane_csv("hist", 100, 3);
        let delta = write_lane_csv("delta", 500, 2);
        let blob = dir.join(format!("habit-cli-refit-{pid}.habit"));

        // Fit with --save-state so the blob embeds its state.
        let fit = Args::parse(
            [
                "fit",
                "--input",
                history.to_str().unwrap(),
                "--out",
                blob.to_str().unwrap(),
                "--save-state",
            ]
            .map(String::from),
        )
        .unwrap();
        crate::commands::fit::run(&fit).expect("fit --save-state");
        let before = std::fs::read(&blob).unwrap();
        assert_eq!(before[4], 2, "v2 blob on disk");

        let refit = Args::parse(
            [
                "refit",
                "--model",
                blob.to_str().unwrap(),
                "--input",
                delta.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();
        run(&refit).expect("refit");

        let after = std::fs::read(&blob).unwrap();
        assert_ne!(after, before, "refit rewrote the blob in place");
        let model = HabitModel::from_bytes(&after).expect("refitted blob loads");
        let prov = model.fit_provenance().expect("still refittable");
        assert_eq!(prov.trips, 5);
        assert_eq!(prov.reports, 750);

        for p in [&history, &delta, &blob] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn refit_requires_flags_and_a_state_bearing_model() {
        let err = run(&Args::parse(["refit"].map(String::from)).unwrap()).unwrap_err();
        assert_eq!(err.exit_code(), 2);

        let err = run(&Args::parse(
            ["refit", "--model", "/nonexistent.habit", "--input", "x.csv"].map(String::from),
        )
        .unwrap())
        .unwrap_err();
        assert_eq!(err.code, habit_service::ErrorCode::Io);
    }
}
