//! `habit refit` — a thin adapter: flags → [`Request::Refit`] → summary.
//!
//! Merges a delta AIS CSV of **new** trips into a fitted model's
//! embedded fit state and re-finalizes the graph — byte-identical to
//! refitting from scratch over history ∪ delta, without re-reading the
//! history. The model file must embed its fit state (`habit fit
//! --save-state`); by default the refitted blob overwrites `--model`,
//! or lands at `--out`.

use crate::args::Args;
use crate::commands::open_service;
use habit_service::{RefitSpec, Request, Response, Service, ServiceConfig, ServiceError};

/// Entry point for `habit refit`.
pub fn run(args: &Args) -> Result<(), ServiceError> {
    args.check_flags(&["model", "input", "out", "threads", "shards", "shard"])?;
    let input = args.require("input")?;
    let threads: usize = args.get_or(
        "threads",
        std::thread::available_parallelism().map_or(1, usize::from),
    )?;

    if let Some(dir) = args.get("shards") {
        // Fleet refit: load the fleet from its directory, merge the
        // delta's contribution to one shard, and rewrite that shard's
        // blob + the manifest in place.
        if args.get("model").is_some() {
            return Err(ServiceError::bad_request(
                "--model applies to single-blob refit — a fleet refit loads --shards DIR",
            ));
        }
        if args.get("out").is_some() {
            return Err(ServiceError::bad_request(
                "--out applies to single-blob refit — a fleet refit rewrites the shard blob and manifest in --shards DIR",
            ));
        }
        let raw = args.require("shard")?;
        let shard: u32 = raw
            .parse()
            .map_err(|_| ServiceError::bad_request(format!("bad --shard `{raw}`")))?;
        let service = Service::with_fleet(
            ServiceConfig {
                threads,
                cache_capacity: 1,
            },
            dir,
            None,
        )?;
        let Response::Refitted(summary) = service.handle(&Request::Refit(RefitSpec {
            input: input.to_string(),
            save_to: None,
            shard: Some(shard),
        }))?
        else {
            unreachable!("Refit answers Refitted");
        };
        println!(
            "refitted shard {shard} +{} trips (+{} reports) onto {} trips total: {} cells, {} transitions, {} bytes -> {}",
            summary.trips_added,
            summary.reports_added,
            summary.trips_total,
            summary.cells,
            summary.transitions,
            summary.model_bytes,
            summary.saved_to.as_deref().unwrap_or(dir),
        );
        return Ok(());
    }
    if let Some(shard) = args.get("shard") {
        return Err(ServiceError::bad_request(format!(
            "--shard {shard} applies to sharded refit — pass --shards DIR too"
        )));
    }

    let model = args.require("model")?;
    let out = args.get("out").unwrap_or(model).to_string();
    let service = open_service(model, threads, 1)?;
    let Response::Refitted(summary) = service.handle(&Request::Refit(RefitSpec {
        input: input.to_string(),
        save_to: Some(out.clone()),
        shard: None,
    }))?
    else {
        unreachable!("Refit answers Refitted");
    };
    println!(
        "refitted +{} trips (+{} reports) onto {} trips total: {} cells, {} transitions, {} bytes -> {out}",
        summary.trips_added,
        summary.reports_added,
        summary.trips_total,
        summary.cells,
        summary.transitions,
        summary.model_bytes,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use habit_core::HabitModel;
    use std::path::PathBuf;

    fn write_lane_csv(tag: &str, mmsi0: u64, vessels: u64) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("habit-cli-refit-{tag}-{}.csv", std::process::id()));
        let mut body = String::from("mmsi,t,lon,lat,sog,cog,heading\n");
        for k in 0..vessels {
            for i in 0..150i64 {
                body.push_str(&format!(
                    "{},{},{:.6},56.0,12.0,90.0,90.0\n",
                    mmsi0 + k,
                    i * 60,
                    10.0 + i as f64 * 0.003
                ));
            }
        }
        std::fs::write(&path, body).unwrap();
        path
    }

    #[test]
    fn refit_end_to_end_updates_the_blob_in_place() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let history = write_lane_csv("hist", 100, 3);
        let delta = write_lane_csv("delta", 500, 2);
        let blob = dir.join(format!("habit-cli-refit-{pid}.habit"));

        // Fit with --save-state so the blob embeds its state.
        let fit = Args::parse(
            [
                "fit",
                "--input",
                history.to_str().unwrap(),
                "--out",
                blob.to_str().unwrap(),
                "--save-state",
            ]
            .map(String::from),
        )
        .unwrap();
        crate::commands::fit::run(&fit).expect("fit --save-state");
        let before = std::fs::read(&blob).unwrap();
        assert_eq!(before[4], 2, "v2 blob on disk");

        let refit = Args::parse(
            [
                "refit",
                "--model",
                blob.to_str().unwrap(),
                "--input",
                delta.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();
        run(&refit).expect("refit");

        let after = std::fs::read(&blob).unwrap();
        assert_ne!(after, before, "refit rewrote the blob in place");
        let model = HabitModel::from_bytes(&after).expect("refitted blob loads");
        let prov = model.fit_provenance().expect("still refittable");
        assert_eq!(prov.trips, 5);
        assert_eq!(prov.reports, 750);

        for p in [&history, &delta, &blob] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn fleet_refit_rewrites_one_shard_in_place() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let history = write_lane_csv("fleet-hist", 100, 3);
        let delta = write_lane_csv("fleet-delta", 500, 2);
        let fleet = dir.join(format!("habit-cli-refit-fleet-{pid}"));

        let fit = Args::parse(
            [
                "fit",
                "--input",
                history.to_str().unwrap(),
                "--shards-out",
                fleet.to_str().unwrap(),
                "--fleet-shards",
                "2",
            ]
            .map(String::from),
        )
        .unwrap();
        crate::commands::fit::run(&fit).expect("fleet fit");
        let manifest_before = std::fs::read(fleet.join("fleet.hfm")).unwrap();

        // --shard is mandatory in fleet mode, and --shard without
        // --shards is a usage error.
        let err = run(&Args::parse(
            [
                "refit",
                "--shards",
                fleet.to_str().unwrap(),
                "--input",
                delta.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap())
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = run(&Args::parse(
            [
                "refit", "--model", "x.habit", "--input", "y.csv", "--shard", "1",
            ]
            .map(String::from),
        )
        .unwrap())
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--shards"), "{err}");

        // The delta lane's cells hash to a fixed shard; find it.
        let mut refitted = None;
        for shard in 0..2u32 {
            let shard_s = shard.to_string();
            let args = Args::parse(
                [
                    "refit",
                    "--shards",
                    fleet.to_str().unwrap(),
                    "--shard",
                    shard_s.as_str(),
                    "--input",
                    delta.to_str().unwrap(),
                ]
                .map(String::from),
            )
            .unwrap();
            match run(&args) {
                Ok(()) => {
                    refitted = Some(shard);
                    break;
                }
                Err(e) => assert_eq!(e.code, habit_service::ErrorCode::BadInput, "{e}"),
            }
        }
        let shard = refitted.expect("the delta lane lands in some shard");
        let manifest_after = std::fs::read(fleet.join("fleet.hfm")).unwrap();
        assert_ne!(manifest_after, manifest_before, "manifest rewritten");
        let blob = std::fs::read(fleet.join(format!("shard-{shard:04}.habit"))).unwrap();
        let model = HabitModel::from_bytes(&blob).expect("refitted shard blob loads");
        assert_eq!(
            model.fit_provenance().expect("refittable").trips,
            5,
            "shard provenance tracks the global trip count"
        );

        for p in [&history, &delta] {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_dir_all(&fleet).ok();
    }

    #[test]
    fn refit_requires_flags_and_a_state_bearing_model() {
        let err = run(&Args::parse(["refit"].map(String::from)).unwrap()).unwrap_err();
        assert_eq!(err.exit_code(), 2);

        let err = run(&Args::parse(
            ["refit", "--model", "/nonexistent.habit", "--input", "x.csv"].map(String::from),
        )
        .unwrap())
        .unwrap_err();
        assert_eq!(err.code, habit_service::ErrorCode::Io);
    }
}
