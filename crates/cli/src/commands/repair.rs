//! `habit repair` — a thin adapter: flags → [`Request::Repair`] →
//! repaired track CSV plus a per-gap report.

use crate::args::Args;
use crate::commands::open_service;
use crate::io::{read_track_csv, write_track_csv};
use habit_core::RepairConfig;
use habit_service::{Request, Response, ServiceError};
use std::path::Path;

/// Entry point for `habit repair`.
pub fn run(args: &Args) -> Result<(), ServiceError> {
    args.check_flags(&["model", "input", "out", "threshold", "densify"])?;
    let model_path = args.require("model")?;
    let input = args.require("input")?;
    let out = args.require("out")?;
    let threshold: i64 = args.get_or("threshold", 30 * 60)?;
    if threshold <= 0 {
        return Err(ServiceError::bad_request(
            "--threshold must be positive seconds",
        ));
    }
    // Default 250 m (the paper's resampling bound); `--densify none`
    // keeps only the simplified vertices.
    let densify: Option<f64> = match args.get("densify") {
        Some("none") => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| ServiceError::bad_request(format!("bad --densify `{raw}`")))?,
        ),
        None => Some(250.0),
    };

    let track = read_track_csv(Path::new(input))?;
    let points_in = track.len();
    let service = open_service(model_path, 1, 1)?;
    let Response::Repaired(repaired) = service.handle(&Request::Repair {
        track,
        config: RepairConfig {
            gap_threshold_s: threshold,
            densify_max_spacing_m: densify,
        },
        provenance: false,
    })?
    else {
        unreachable!("Repair answers Repaired");
    };
    write_track_csv(&repaired.points, Path::new(out))?;
    println!(
        "{} -> {out}: {} points in, {} gaps found, {} imputed, {} points added",
        input,
        points_in,
        repaired.gaps_found(),
        repaired.gaps_imputed(),
        repaired.points_added
    );
    for gap in &repaired.gaps {
        let status = match &gap.error {
            None => format!("+{} points", gap.points_added),
            Some(e) => format!("FAILED: {e}"),
        };
        println!(
            "  gap after point {} ({} s): {status}",
            gap.after_index, gap.duration_s
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ais::{trips_to_table, AisPoint, Trip};
    use habit_core::{HabitConfig, HabitModel};

    #[test]
    fn repair_end_to_end() {
        let trips: Vec<Trip> = (0..4)
            .map(|k| Trip {
                trip_id: k + 1,
                mmsi: 100 + k,
                points: (0..200)
                    .map(|i| {
                        AisPoint::new(
                            100 + k,
                            i as i64 * 60,
                            10.0 + i as f64 * 0.003,
                            56.0,
                            12.0,
                            90.0,
                        )
                    })
                    .collect(),
            })
            .collect();
        let model = HabitModel::fit(&trips_to_table(&trips), HabitConfig::default()).unwrap();

        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let model_path = dir.join(format!("habit-repair-{pid}.habit"));
        let track_path = dir.join(format!("habit-repair-{pid}-in.csv"));
        let out_path = dir.join(format!("habit-repair-{pid}-out.csv"));
        std::fs::write(&model_path, model.to_bytes()).unwrap();

        // A track with a 40-minute hole.
        let mut csv = String::from("t,lon,lat\n");
        for i in 0..200i64 {
            if (60..100).contains(&i) {
                continue;
            }
            csv.push_str(&format!("{},{:.6},56.0\n", i * 60, 10.0 + i as f64 * 0.003));
        }
        std::fs::write(&track_path, csv).unwrap();

        let args = Args::parse(
            [
                "repair",
                "--model",
                model_path.to_str().unwrap(),
                "--input",
                track_path.to_str().unwrap(),
                "--out",
                out_path.to_str().unwrap(),
                "--threshold",
                "1800",
            ]
            .map(String::from),
        )
        .unwrap();
        run(&args).expect("repair");

        let repaired = read_track_csv(&out_path).expect("output readable");
        std::fs::remove_file(&model_path).ok();
        std::fs::remove_file(&track_path).ok();
        std::fs::remove_file(&out_path).ok();
        assert!(repaired.len() > 160, "points added: {}", repaired.len());
        assert!(repaired.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let track_path = dir.join(format!("habit-repair-{pid}-tiny.csv"));
        std::fs::write(&track_path, "t,lon,lat\n0,10.0,56.0\n").unwrap();
        let args = Args::parse(
            [
                "repair",
                "--model",
                "/nonexistent",
                "--input",
                track_path.to_str().unwrap(),
                "--out",
                "/tmp/x.csv",
                "--threshold",
                "-5",
            ]
            .map(String::from),
        )
        .unwrap();
        let err = run(&args).unwrap_err();
        std::fs::remove_file(&track_path).ok();
        assert!(err.to_string().contains("positive"), "{err}");
        assert_eq!(err.exit_code(), 2, "flag misuse is a usage error");
    }
}
