//! `habit impute` — a thin adapter: flags → [`Request::Impute`] /
//! [`Request::ImputeBatch`] → track CSV.
//!
//! Two modes share one service:
//!
//! * `--from LON,LAT,T --to LON,LAT,T` — one gap, `t,lon,lat` output;
//! * `--input FILE|-` — a gap CSV (`-` = stdin, the daemon's streaming
//!   shape), `gap,t,lon,lat` output with per-gap failures on stderr.
//!
//! `--provenance` switches both modes to the per-point repair
//! provenance CSV (`t,lon,lat,kind,cell,from_cell,cell_msgs,
//! edge_transitions,cost_share,confidence`): same points, plus how each
//! one was produced. The points themselves are byte-identical with and
//! without the flag.

use crate::args::Args;
use crate::commands::{open_service, run_gap_csv_batch};
use crate::io::{
    render_provenance_csv, write_batch_csv, write_batch_provenance_csv, write_track_csv,
    PROVENANCE_HEADER,
};
use geo_kernel::TimedPoint;
use habit_core::{GapQuery, Imputation};
use habit_service::{Request, Response, ServiceError};
use std::path::Path;

/// Parses a `LON,LAT,T` endpoint triple.
pub fn parse_endpoint(raw: &str) -> Result<TimedPoint, ServiceError> {
    let parts: Vec<&str> = raw.split(',').collect();
    if parts.len() != 3 {
        return Err(ServiceError::bad_request(format!(
            "`{raw}`: expected LON,LAT,T"
        )));
    }
    let lon: f64 = parts[0]
        .trim()
        .parse()
        .map_err(|_| ServiceError::bad_request(format!("bad longitude `{}`", parts[0])))?;
    let lat: f64 = parts[1]
        .trim()
        .parse()
        .map_err(|_| ServiceError::bad_request(format!("bad latitude `{}`", parts[1])))?;
    let t: i64 = parts[2]
        .trim()
        .parse()
        .map_err(|_| ServiceError::bad_request(format!("bad timestamp `{}`", parts[2])))?;
    Ok(TimedPoint::new(lon, lat, t))
}

/// Entry point for `habit impute`.
pub fn run(args: &Args) -> Result<(), ServiceError> {
    args.check_flags(&["model", "from", "to", "out", "input", "provenance"])?;
    let model_path = args.require("model")?;
    let provenance = args.switch("provenance");

    // Gap-CSV mode: the whole file through the batch operation (the
    // shared front half also used by `habit batch`).
    if let Some(input) = args.get("input") {
        if args.get("from").is_some() || args.get("to").is_some() {
            return Err(ServiceError::bad_request(
                "--input replaces --from/--to; pass one or the other",
            ));
        }
        let (_service, batch) = run_gap_csv_batch(model_path, input, 1, None, provenance)?;
        let rows: Vec<Option<&Imputation>> =
            batch.results.iter().map(|r| r.as_ref().ok()).collect();
        match args.get("out") {
            Some(out) => {
                if provenance {
                    write_batch_provenance_csv(&rows, Path::new(out))?;
                } else {
                    write_batch_csv(&rows, Path::new(out))?;
                }
                println!(
                    "imputed {}/{} gaps ({} failed) -> {out}",
                    batch.stats.ok, batch.stats.queries, batch.stats.failed
                );
            }
            None if provenance => {
                println!("gap,{PROVENANCE_HEADER}");
                for (i, row) in rows.iter().enumerate() {
                    if let Some(imp) = row {
                        // Reuse the pinned row formatter; prefix the
                        // query index exactly like the file writer.
                        for line in render_provenance_csv(imp).lines().skip(1) {
                            println!("{i},{line}");
                        }
                    }
                }
            }
            None => {
                println!("gap,t,lon,lat");
                for (i, row) in rows.iter().enumerate() {
                    if let Some(imp) = row {
                        for p in &imp.points {
                            println!("{i},{},{:.6},{:.6}", p.t, p.pos.lon, p.pos.lat);
                        }
                    }
                }
            }
        }
        return Ok(());
    }

    // Single-gap mode.
    let from = parse_endpoint(args.require("from")?)?;
    let to = parse_endpoint(args.require("to")?)?;
    if to.t <= from.t {
        return Err(ServiceError::bad_request("--to must be later than --from"));
    }
    let service = open_service(model_path, 1, 1)?;
    let gap = GapQuery {
        start: from,
        end: to,
    };
    let Response::Imputation(imputation) = service.handle(&Request::Impute { gap, provenance })?
    else {
        unreachable!("Impute answers Imputation");
    };

    match args.get("out") {
        Some(out) if provenance => {
            crate::io::write_provenance_csv(&imputation, Path::new(out))?;
            println!(
                "imputed {} points across {} cells (cost {:.2}) with provenance -> {out}",
                imputation.points.len(),
                imputation.cells.len(),
                imputation.cost
            );
        }
        Some(out) => {
            write_track_csv(&imputation.points, Path::new(out))?;
            println!(
                "imputed {} points across {} cells (cost {:.2}) -> {out}",
                imputation.points.len(),
                imputation.cells.len(),
                imputation.cost
            );
        }
        None if provenance => {
            print!("{}", render_provenance_csv(&imputation));
        }
        None => {
            println!("t,lon,lat");
            for p in &imputation.points {
                println!("{},{:.6},{:.6}", p.t, p.pos.lon, p.pos.lat);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ais::{trips_to_table, AisPoint, Trip};
    use habit_core::{HabitConfig, HabitModel};

    fn write_model(path: &Path) {
        let trips: Vec<Trip> = (0..4)
            .map(|k| Trip {
                trip_id: k + 1,
                mmsi: 100 + k,
                points: (0..150)
                    .map(|i| {
                        AisPoint::new(
                            100 + k,
                            i as i64 * 60,
                            10.0 + i as f64 * 0.003,
                            56.0,
                            12.0,
                            90.0,
                        )
                    })
                    .collect(),
            })
            .collect();
        let model = HabitModel::fit(&trips_to_table(&trips), HabitConfig::default()).unwrap();
        std::fs::write(path, model.to_bytes()).unwrap();
    }

    #[test]
    fn endpoint_parsing() {
        let p = parse_endpoint("10.5,56.25,1700000000").unwrap();
        assert_eq!(p.pos.lon, 10.5);
        assert_eq!(p.pos.lat, 56.25);
        assert_eq!(p.t, 1_700_000_000);
        assert!(parse_endpoint("10.5,56.25").is_err());
        assert!(parse_endpoint("a,b,c").is_err());
        // Negative longitude works (flag parser passes it through).
        assert_eq!(parse_endpoint("-3.5,48.0,0").unwrap().pos.lon, -3.5);
    }

    #[test]
    fn impute_from_saved_model() {
        let dir = std::env::temp_dir();
        let model_path = dir.join(format!("habit-impute-{}.habit", std::process::id()));
        let out_path = dir.join(format!("habit-impute-{}.csv", std::process::id()));
        write_model(&model_path);

        let args = Args::parse(
            [
                "impute",
                "--model",
                model_path.to_str().unwrap(),
                "--from",
                "10.05,56.0,0",
                "--to",
                "10.40,56.0,3600",
                "--out",
                out_path.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();
        run(&args).expect("impute");
        let text = std::fs::read_to_string(&out_path).expect("csv written");
        std::fs::remove_file(&model_path).ok();
        std::fs::remove_file(&out_path).ok();
        assert!(text.starts_with("t,lon,lat"));
        assert!(text.lines().count() >= 3, "{text}");
    }

    #[test]
    fn provenance_flag_emits_the_provenance_csv_without_moving_points() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let model_path = dir.join(format!("habit-impute-prov-{pid}.habit"));
        let plain_path = dir.join(format!("habit-impute-prov-{pid}-plain.csv"));
        let prov_path = dir.join(format!("habit-impute-prov-{pid}-prov.csv"));
        write_model(&model_path);

        let run_mode = |out: &Path, provenance: bool| {
            let mut tokens = vec![
                "impute".to_string(),
                "--model".to_string(),
                model_path.to_str().unwrap().to_string(),
                "--from".to_string(),
                "10.05,56.0,0".to_string(),
                "--to".to_string(),
                "10.40,56.0,3600".to_string(),
                "--out".to_string(),
                out.to_str().unwrap().to_string(),
            ];
            if provenance {
                tokens.push("--provenance".to_string());
            }
            run(&Args::parse(tokens).unwrap()).expect("impute");
        };
        run_mode(&plain_path, false);
        run_mode(&prov_path, true);
        let plain = std::fs::read_to_string(&plain_path).unwrap();
        let prov = std::fs::read_to_string(&prov_path).unwrap();
        std::fs::remove_file(&model_path).ok();
        std::fs::remove_file(&plain_path).ok();
        std::fs::remove_file(&prov_path).ok();

        assert!(prov.starts_with(crate::io::PROVENANCE_HEADER), "{prov}");
        assert!(
            prov.contains(",observed,") || prov.contains(",route,"),
            "{prov}"
        );
        // Same points with and without provenance: the t,lon,lat
        // columns of every row must agree (the plain writer emits the
        // shortest float round-trip, the provenance writer fixed six
        // decimals, so compare parsed values).
        let plain_rows: Vec<&str> = plain.lines().skip(1).collect();
        let prov_rows: Vec<&str> = prov.lines().skip(1).collect();
        assert_eq!(plain_rows.len(), prov_rows.len());
        for (a, b) in plain_rows.iter().zip(&prov_rows) {
            let a: Vec<&str> = a.split(',').collect();
            let b: Vec<&str> = b.split(',').collect();
            assert_eq!(a[0], b[0], "timestamps agree");
            for k in 1..3 {
                let x: f64 = a[k].parse().unwrap();
                let y: f64 = b[k].parse().unwrap();
                assert!((x - y).abs() < 5e-7, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn impute_a_gap_csv_through_the_batch_op() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let model_path = dir.join(format!("habit-impute-csv-{pid}.habit"));
        let gaps_path = dir.join(format!("habit-impute-csv-{pid}-gaps.csv"));
        let out_path = dir.join(format!("habit-impute-csv-{pid}-out.csv"));
        write_model(&model_path);
        std::fs::write(
            &gaps_path,
            "lon1,lat1,t1,lon2,lat2,t2\n\
             10.05,56.0,0,10.35,56.0,3600\n\
             10.10,56.0,0,10.40,56.0,3600\n",
        )
        .unwrap();

        let args = Args::parse(
            [
                "impute",
                "--model",
                model_path.to_str().unwrap(),
                "--input",
                gaps_path.to_str().unwrap(),
                "--out",
                out_path.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();
        run(&args).expect("impute --input");
        let text = std::fs::read_to_string(&out_path).unwrap();
        std::fs::remove_file(&model_path).ok();
        std::fs::remove_file(&gaps_path).ok();
        std::fs::remove_file(&out_path).ok();
        assert!(text.starts_with("gap,t,lon,lat"), "{text}");
        for id in ["0", "1"] {
            assert!(
                text.lines()
                    .skip(1)
                    .any(|l| l.split(',').next() == Some(id)),
                "gap {id} missing from output"
            );
        }
    }

    #[test]
    fn rejects_conflicting_input_and_endpoint_flags() {
        let args = Args::parse(
            [
                "impute",
                "--model",
                "/nonexistent",
                "--input",
                "gaps.csv",
                "--from",
                "10,56,0",
            ]
            .map(String::from),
        )
        .unwrap();
        let err = run(&args).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("one or the other"), "{err}");
    }

    #[test]
    fn rejects_inverted_time_and_bad_model() {
        let args = Args::parse(
            [
                "impute",
                "--model",
                "/nonexistent",
                "--from",
                "10,56,100",
                "--to",
                "10.4,56,50",
            ]
            .map(String::from),
        )
        .unwrap();
        let err = run(&args).unwrap_err();
        assert!(err.to_string().contains("later"));
        assert_eq!(err.exit_code(), 2, "usage error");

        let dir = std::env::temp_dir();
        let bad = dir.join(format!("habit-bad-{}.habit", std::process::id()));
        std::fs::write(&bad, b"not a model").unwrap();
        let args = Args::parse(
            [
                "impute",
                "--model",
                bad.to_str().unwrap(),
                "--from",
                "10,56,0",
                "--to",
                "10.4,56,3600",
            ]
            .map(String::from),
        )
        .unwrap();
        let err = run(&args).unwrap_err();
        std::fs::remove_file(&bad).ok();
        assert!(
            err.to_string().contains("invalid serialized model"),
            "{err}"
        );
        assert_eq!(err.code, habit_service::ErrorCode::BadModelBlob);
    }
}
