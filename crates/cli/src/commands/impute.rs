//! `habit impute` — answer one gap query with a fitted model.

use crate::args::Args;
use crate::io::write_track_csv;
use geo_kernel::TimedPoint;
use habit_core::{GapQuery, HabitModel};
use std::error::Error;
use std::path::Path;

/// Parses a `LON,LAT,T` endpoint triple.
pub fn parse_endpoint(raw: &str) -> Result<TimedPoint, String> {
    let parts: Vec<&str> = raw.split(',').collect();
    if parts.len() != 3 {
        return Err(format!("`{raw}`: expected LON,LAT,T"));
    }
    let lon: f64 = parts[0]
        .trim()
        .parse()
        .map_err(|_| format!("bad longitude `{}`", parts[0]))?;
    let lat: f64 = parts[1]
        .trim()
        .parse()
        .map_err(|_| format!("bad latitude `{}`", parts[1]))?;
    let t: i64 = parts[2]
        .trim()
        .parse()
        .map_err(|_| format!("bad timestamp `{}`", parts[2]))?;
    Ok(TimedPoint::new(lon, lat, t))
}

/// Entry point for `habit impute`.
pub fn run(args: &Args) -> Result<(), Box<dyn Error>> {
    args.check_flags(&["model", "from", "to", "out"])?;
    let model_path = args.require("model")?;
    let from = parse_endpoint(args.require("from")?)?;
    let to = parse_endpoint(args.require("to")?)?;
    if to.t <= from.t {
        return Err("--to must be later than --from".into());
    }

    let bytes = std::fs::read(model_path)?;
    let model = HabitModel::from_bytes(&bytes)?;
    let gap = GapQuery {
        start: from,
        end: to,
    };
    let imputation = model.impute(&gap)?;

    match args.get("out") {
        Some(out) => {
            write_track_csv(&imputation.points, Path::new(out))?;
            println!(
                "imputed {} points across {} cells (cost {:.2}) -> {out}",
                imputation.points.len(),
                imputation.cells.len(),
                imputation.cost
            );
        }
        None => {
            println!("t,lon,lat");
            for p in &imputation.points {
                println!("{},{:.6},{:.6}", p.t, p.pos.lon, p.pos.lat);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ais::{trips_to_table, AisPoint, Trip};
    use habit_core::HabitConfig;

    #[test]
    fn endpoint_parsing() {
        let p = parse_endpoint("10.5,56.25,1700000000").unwrap();
        assert_eq!(p.pos.lon, 10.5);
        assert_eq!(p.pos.lat, 56.25);
        assert_eq!(p.t, 1_700_000_000);
        assert!(parse_endpoint("10.5,56.25").is_err());
        assert!(parse_endpoint("a,b,c").is_err());
        // Negative longitude works (flag parser passes it through).
        assert_eq!(parse_endpoint("-3.5,48.0,0").unwrap().pos.lon, -3.5);
    }

    #[test]
    fn impute_from_saved_model() {
        let trips: Vec<Trip> = (0..4)
            .map(|k| Trip {
                trip_id: k + 1,
                mmsi: 100 + k,
                points: (0..150)
                    .map(|i| {
                        AisPoint::new(
                            100 + k,
                            i as i64 * 60,
                            10.0 + i as f64 * 0.003,
                            56.0,
                            12.0,
                            90.0,
                        )
                    })
                    .collect(),
            })
            .collect();
        let model = HabitModel::fit(&trips_to_table(&trips), HabitConfig::default()).unwrap();
        let dir = std::env::temp_dir();
        let model_path = dir.join(format!("habit-impute-{}.habit", std::process::id()));
        let out_path = dir.join(format!("habit-impute-{}.csv", std::process::id()));
        std::fs::write(&model_path, model.to_bytes()).unwrap();

        let args = Args::parse(
            [
                "impute",
                "--model",
                model_path.to_str().unwrap(),
                "--from",
                "10.05,56.0,0",
                "--to",
                "10.40,56.0,3600",
                "--out",
                out_path.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();
        run(&args).expect("impute");
        let text = std::fs::read_to_string(&out_path).expect("csv written");
        std::fs::remove_file(&model_path).ok();
        std::fs::remove_file(&out_path).ok();
        assert!(text.starts_with("t,lon,lat"));
        assert!(text.lines().count() >= 3, "{text}");
    }

    #[test]
    fn rejects_inverted_time_and_bad_model() {
        let args = Args::parse(
            [
                "impute",
                "--model",
                "/nonexistent",
                "--from",
                "10,56,100",
                "--to",
                "10.4,56,50",
            ]
            .map(String::from),
        )
        .unwrap();
        assert!(run(&args).unwrap_err().to_string().contains("later"));

        let dir = std::env::temp_dir();
        let bad = dir.join(format!("habit-bad-{}.habit", std::process::id()));
        std::fs::write(&bad, b"not a model").unwrap();
        let args = Args::parse(
            [
                "impute",
                "--model",
                bad.to_str().unwrap(),
                "--from",
                "10,56,0",
                "--to",
                "10.4,56,3600",
            ]
            .map(String::from),
        )
        .unwrap();
        let err = run(&args).unwrap_err();
        std::fs::remove_file(&bad).ok();
        assert!(
            err.to_string().contains("invalid serialized model"),
            "{err}"
        );
    }
}
