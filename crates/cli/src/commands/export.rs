//! `habit export` — build a traffic density map from an AIS CSV and
//! export it as GeoJSON or CSV, optionally repairing gaps first (the
//! paper's Fig. 1 workflow). With `--model`, every trip's track is
//! repaired through the same [`Request::Repair`] operation the daemon
//! serves — the command never touches a model directly.

use crate::args::Args;
use crate::commands::open_service;
use crate::io::read_ais_csv;
use ais::{segment_all, TripConfig};
use density::{render_ascii, to_csv, to_geojson, DensityMap};
use geo_kernel::TimedPoint;
use habit_core::RepairConfig;
use habit_service::{Request, Response, Service, ServiceError};
use std::path::Path;

/// Entry point for `habit export`.
pub fn run(args: &Args) -> Result<(), ServiceError> {
    args.check_flags(&["input", "out", "resolution", "format", "model", "preview"])?;
    let input = args.require("input")?;
    let out = args.require("out")?;
    let resolution: u8 = args.get_or("resolution", 8)?;
    let format = args.get("format").unwrap_or("geojson");
    if !(1..=hexgrid::MAX_RESOLUTION).contains(&resolution) {
        return Err(ServiceError::bad_request(format!(
            "--resolution {resolution} out of range"
        )));
    }
    if !matches!(format, "geojson" | "csv") {
        return Err(ServiceError::bad_request(format!(
            "unknown format `{format}` (geojson|csv)"
        )));
    }

    let trajectories = read_ais_csv(Path::new(input))?;
    let trips = segment_all(&trajectories, &TripConfig::default());
    let mut map = DensityMap::new(resolution);
    let mut repaired_points = 0usize;

    // With a model: repair each trip's internal gaps (via the service's
    // Repair operation) before aggregating.
    let service: Option<Service> = match args.get("model") {
        Some(path) => Some(open_service(path, 1, 64)?),
        None => None,
    };
    for trip in &trips {
        match &service {
            Some(service) if trip.points.len() >= 2 => {
                let track: Vec<TimedPoint> = trip
                    .points
                    .iter()
                    .map(|p| TimedPoint { pos: p.pos, t: p.t })
                    .collect();
                let Response::Repaired(repaired) = service.handle(&Request::Repair {
                    track,
                    config: RepairConfig::default(),
                    provenance: false,
                })?
                else {
                    unreachable!("Repair answers Repaired");
                };
                repaired_points += repaired.points_added;
                map.add_path(&repaired.points, trip.mmsi);
            }
            _ => map.add_trip(trip),
        }
    }

    let body = match format {
        "geojson" => to_geojson(&map),
        _ => to_csv(&map),
    };
    std::fs::write(out, &body)?;
    println!(
        "{} trips -> {} cells at r={resolution}{} -> {out} ({format}, {} bytes)",
        trips.len(),
        map.cell_count(),
        if service.is_some() {
            format!(", {repaired_points} imputed points")
        } else {
            String::new()
        },
        body.len()
    );
    if args.switch("preview") {
        println!("{}", render_ascii(&map, 76, 20));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::synth_cmd::build_dataset;
    use crate::io::write_ais_csv;
    use habit_core::HabitModel;

    fn paths(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        (
            dir.join(format!("habit-export-{pid}-{tag}.csv")),
            dir.join(format!("habit-export-{pid}-{tag}.out")),
        )
    }

    #[test]
    fn exports_geojson_and_csv() {
        let (csv, out) = paths("a");
        let dataset = build_dataset("kiel", 7, 0.05).unwrap();
        write_ais_csv(&dataset.trajectories, &csv).unwrap();

        for format in ["geojson", "csv"] {
            let args = Args::parse(
                [
                    "export",
                    "--input",
                    csv.to_str().unwrap(),
                    "--out",
                    out.to_str().unwrap(),
                    "--resolution",
                    "8",
                    "--format",
                    format,
                ]
                .map(String::from),
            )
            .unwrap();
            run(&args).expect("export");
            let body = std::fs::read_to_string(&out).unwrap();
            match format {
                "geojson" => assert!(body.starts_with("{\"type\":\"FeatureCollection\"")),
                _ => assert!(body.starts_with("cell,lon,lat,messages,vessels,mean_sog")),
            }
        }
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn export_with_model_repairs_gaps() {
        let (csv, out) = paths("b");
        let dataset = build_dataset("kiel", 9, 0.05).unwrap();
        write_ais_csv(&dataset.trajectories, &csv).unwrap();

        // Fit a model on the same data and export with repair enabled.
        let trips = dataset.trips();
        let model = HabitModel::fit(
            &ais::trips_to_table(&trips),
            habit_core::HabitConfig::with_r_t(9, 100.0),
        )
        .unwrap();
        let model_path =
            std::env::temp_dir().join(format!("habit-export-{}-model.habit", std::process::id()));
        std::fs::write(&model_path, model.to_bytes()).unwrap();

        let args = Args::parse(
            [
                "export",
                "--input",
                csv.to_str().unwrap(),
                "--out",
                out.to_str().unwrap(),
                "--model",
                model_path.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();
        run(&args).expect("export with repair");
        assert!(std::fs::read_to_string(&out).unwrap().contains("Polygon"));
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn rejects_unknown_format() {
        let (csv, out) = paths("c");
        std::fs::write(&csv, "mmsi,t,lon,lat\n1,0,10.0,56.0\n1,60,10.01,56.0\n").unwrap();
        let args = Args::parse(
            [
                "export",
                "--input",
                csv.to_str().unwrap(),
                "--out",
                out.to_str().unwrap(),
                "--format",
                "shapefile",
            ]
            .map(String::from),
        )
        .unwrap();
        let err = run(&args).unwrap_err();
        std::fs::remove_file(&csv).ok();
        assert!(err.to_string().contains("unknown format"), "{err}");
        assert_eq!(err.exit_code(), 2);
    }
}
