//! `habit serve` — the long-lived daemon: the same [`Service`] the CLI
//! adapters use, wrapped in the blocking line-JSON-over-TCP server of
//! [`habit_service::server`].
//!
//! ```text
//! habit serve --model kiel.habit --port 4740 &
//! printf '%s\n' '{"v":1,"op":"health"}' | nc 127.0.0.1 4740
//! printf '%s\n' '{"v":1,"op":"shutdown"}' | nc 127.0.0.1 4740
//! ```
//!
//! The first stdout line reports the bound address (`--port 0` picks a
//! free port, so scripts and tests parse that line); `--watch-stdin`
//! makes a closing stdin pipe trigger the same graceful shutdown as a
//! `shutdown` request; `--metrics-port N` binds a second listener on
//! the same host serving the plaintext metrics snapshot over HTTP
//! (`GET /` for counters/gauges/histograms, `GET /spans` for recent
//! stage spans as line-delimited JSON) — scrapeable with `curl`, no
//! wire protocol needed.
//!
//! The daemon coalesces concurrent impute traffic by default: in-flight
//! `impute`/`impute_batch` gaps from every connection queue into one
//! admission window (`--batch-window-us`, flushed early at
//! `--batch-max-gaps`) and are answered from shared engine batches —
//! byte-identical to the direct path, one dedup + route-cache pass per
//! flush. A full queue rejects with the typed `overloaded` error.
//! `--no-coalesce` restores the per-connection direct path.

use crate::args::Args;
use habit_service::{
    AdmissionConfig, Request, Response, ServeOptions, Service, ServiceConfig, ServiceError,
};
use std::io::Write;
use std::net::TcpListener;
use std::sync::Arc;

/// Default TCP port ("HT" on a phone keypad, collision-free in the
/// registered range).
const DEFAULT_PORT: u16 = 4740;

/// Entry point for `habit serve`.
pub fn run(args: &Args) -> Result<(), ServiceError> {
    args.check_flags(&[
        "model",
        "shards",
        "host",
        "port",
        "threads",
        "cache",
        "conn-threads",
        "watch-stdin",
        "metrics-port",
        "batch-window-us",
        "batch-max-gaps",
        "no-coalesce",
        "max-line-bytes",
    ])?;
    let shards_dir = args.get("shards");
    // Single-blob serving requires --model; sharded serving makes it an
    // optional global fallback (rescues shard misses, answers repair).
    let model_path = match shards_dir {
        Some(_) => args.get("model"),
        None => Some(args.require("model")?),
    };
    let host = args.get("host").unwrap_or("127.0.0.1");
    let port: u16 = args.get_or("port", DEFAULT_PORT)?;
    let threads: usize = args.get_or(
        "threads",
        std::thread::available_parallelism().map_or(1, usize::from),
    )?;
    let cache: usize = args.get_or("cache", 4096)?;
    let conn_threads: usize = args.get_or("conn-threads", 4)?;
    let metrics_port: Option<u16> = match args.get("metrics-port") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| ServiceError::bad_request(format!("bad --metrics-port `{raw}`")))?,
        ),
        None => None,
    };
    let admission_defaults = AdmissionConfig::default();
    let batch_window_us: u64 =
        args.get_or("batch-window-us", admission_defaults.batch_window_us)?;
    let batch_max_gaps: usize = args.get_or("batch-max-gaps", admission_defaults.batch_max_gaps)?;
    if batch_max_gaps == 0 {
        return Err(ServiceError::bad_request(
            "--batch-max-gaps must be at least 1",
        ));
    }
    let coalesce = !args.switch("no-coalesce");
    let max_line_bytes: usize =
        args.get_or("max-line-bytes", habit_service::server::MAX_LINE_BYTES)?;
    if max_line_bytes == 0 {
        return Err(ServiceError::bad_request(
            "--max-line-bytes must be at least 1",
        ));
    }

    let config = ServiceConfig {
        threads,
        cache_capacity: cache,
    };
    let service = Arc::new(match shards_dir {
        Some(dir) => Service::with_fleet(config, dir, model_path)?,
        None => Service::with_model_file(config, model_path.expect("required above"))?,
    });
    let desc = match shards_dir {
        Some(dir) => {
            let Response::Health(h) = service.handle(&Request::Health)? else {
                unreachable!("Health answers Health");
            };
            let hash = h.manifest_hash.as_deref().unwrap_or("?");
            let fallback = match model_path {
                Some(p) => format!(", fallback {p}"),
                None => String::new(),
            };
            format!(
                "fleet {dir}: {} shards, manifest {hash}, {} cells, {} transitions{fallback}",
                h.shards, h.cells, h.transitions,
            )
        }
        None => {
            let model = service.model().expect("constructed with a model");
            format!(
                "{}: {} cells, {} transitions",
                model_path.expect("required above"),
                model.node_count(),
                model.edge_count(),
            )
        }
    };
    if coalesce {
        service.enable_admission(AdmissionConfig {
            batch_window_us,
            batch_max_gaps,
        });
    }
    let listener = TcpListener::bind((host, port)).map_err(|e| {
        ServiceError::new(habit_service::ErrorCode::Io, format!("{host}:{port}: {e}"))
    })?;
    let local = listener.local_addr()?;
    println!(
        "habit serve: listening on {local} ({desc}; {threads} compute threads, {conn_threads} connection workers)"
    );
    println!(
        "habit serve: protocol habit-wire/v1 — one JSON request per line; '{{\"v\":1,\"op\":\"shutdown\"}}' stops the daemon"
    );
    if coalesce {
        println!(
            "habit serve: coalescing impute traffic (window {batch_window_us} µs, flush at {batch_max_gaps} gaps, queue capacity {} gaps)",
            AdmissionConfig {
                batch_window_us,
                batch_max_gaps,
            }
            .queue_capacity()
        );
    }
    let metrics_listener = match metrics_port {
        Some(p) => {
            let ml = TcpListener::bind((host, p)).map_err(|e| {
                ServiceError::new(habit_service::ErrorCode::Io, format!("{host}:{p}: {e}"))
            })?;
            println!(
                "habit serve: metrics on http://{} (GET / for metrics, GET /spans for recent spans)",
                ml.local_addr()?
            );
            Some(ml)
        }
        None => None,
    };
    std::io::stdout().flush()?;

    let served = habit_service::serve_with_metrics(
        &service,
        listener,
        ServeOptions {
            connection_threads: conn_threads,
            watch_stdin: args.switch("watch-stdin"),
            max_line_bytes,
            ..ServeOptions::default()
        },
        metrics_listener,
    )?;
    println!("habit serve: clean shutdown after {served} connection(s)");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_requires_a_real_model() {
        let args =
            Args::parse(["serve", "--model", "/nonexistent.habit"].map(String::from)).unwrap();
        let err = run(&args).unwrap_err();
        assert_eq!(err.code, habit_service::ErrorCode::Io);
    }

    #[test]
    fn serve_requires_a_model_unless_sharded() {
        // Without --shards, --model is mandatory.
        let err = run(&Args::parse(["serve"].map(String::from)).unwrap()).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--model"), "{err}");

        // With --shards the directory must hold a fleet manifest.
        let args =
            Args::parse(["serve", "--shards", "/nonexistent-fleet"].map(String::from)).unwrap();
        let err = run(&args).unwrap_err();
        assert_eq!(err.code, habit_service::ErrorCode::Io);
        assert!(err.to_string().contains("/nonexistent-fleet"), "{err}");
    }

    #[test]
    fn serve_rejects_a_bad_metrics_port() {
        let args = Args::parse(
            [
                "serve",
                "--model",
                "/nonexistent.habit",
                "--metrics-port",
                "nope",
            ]
            .map(String::from),
        )
        .unwrap();
        let err = run(&args).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--metrics-port"), "{err}");
    }

    #[test]
    fn serve_validates_admission_and_line_cap_flags() {
        for bad in [
            ["serve", "--model", "x", "--batch-max-gaps", "0"],
            ["serve", "--model", "x", "--max-line-bytes", "0"],
            ["serve", "--model", "x", "--batch-window-us", "soon"],
        ] {
            let err = run(&Args::parse(bad.map(String::from)).unwrap()).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}");
        }
    }

    #[test]
    fn serve_rejects_unknown_flags() {
        let args = Args::parse(["serve", "--model", "x", "--prot", "1"].map(String::from)).unwrap();
        let err = run(&args).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }
}
