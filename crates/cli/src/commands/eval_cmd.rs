//! `habit eval` — quick accuracy/latency comparison on a synthetic
//! dataset (a compact version of the paper's Figure 5 + Table 4).
//!
//! No model file is involved (methods are fitted in-memory on a fresh
//! split), so there is no service request behind this command; its
//! errors still speak the unified taxonomy.

use crate::args::Args;
use crate::commands::synth_cmd::build_dataset;
use baselines::GtiConfig;
use eval::experiments::{accuracy_dtw, latency, Bench};
use eval::report::{fmt_m, fmt_mb, fmt_s, mean, median, MarkdownTable};
use eval::Imputer;
use habit_core::HabitConfig;
use habit_service::{ErrorCode, ServiceError};

/// Entry point for `habit eval`.
pub fn run(args: &Args) -> Result<(), ServiceError> {
    args.check_flags(&["dataset", "seed", "scale", "gap"])?;
    let name = args.get("dataset").unwrap_or("kiel");
    let seed: u64 = args.get_or("seed", 42)?;
    let scale: f64 = args.get_or("scale", 0.3)?;
    let gap_minutes: i64 = args.get_or("gap", 60)?;
    if gap_minutes <= 0 {
        return Err(ServiceError::bad_request("--gap must be positive minutes"));
    }

    let dataset = build_dataset(name, seed, scale)?;
    let bench = Bench::prepare(dataset, seed);
    let cases = bench.gap_cases(gap_minutes * 60, seed);
    println!(
        "{}: {} train trips / {} test trips, {} gaps of {} min\n",
        bench.name,
        bench.train.len(),
        bench.test.len(),
        cases.len(),
        gap_minutes
    );
    if cases.is_empty() {
        return Err(ServiceError::new(
            ErrorCode::BadInput,
            "no trip can host a gap of this duration — lower --gap or raise --scale",
        ));
    }

    let mut methods = vec![
        Imputer::fit_habit(&bench.train, HabitConfig::with_r_t(9, 100.0))?,
        Imputer::fit_habit(&bench.train, HabitConfig::with_r_t(10, 100.0))?,
    ];
    if let Ok(gti) = Imputer::fit_gti(
        &bench.train,
        GtiConfig {
            rm_m: 250.0,
            rd_deg: 5e-4,
            ..GtiConfig::default()
        },
    ) {
        methods.push(gti);
    }
    methods.push(Imputer::sli());

    let mut table = MarkdownTable::new(vec![
        "Method",
        "Mean DTW (m)",
        "Median DTW (m)",
        "Failures",
        "Model (MB)",
        "Avg lat (s)",
        "Max lat (s)",
    ]);
    for m in &methods {
        let errors = accuracy_dtw(m, &cases);
        let (avg, max, failures) = latency(m, &cases);
        table.row(vec![
            m.label().to_string(),
            fmt_m(mean(&errors)),
            fmt_m(median(&errors)),
            failures.to_string(),
            fmt_mb(m.storage_bytes()),
            fmt_s(avg),
            fmt_s(max),
        ])?;
    }
    println!("{}", table.render());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_runs_on_tiny_kiel() {
        let args = Args::parse(
            ["eval", "--dataset", "kiel", "--scale", "0.1", "--seed", "7"].map(String::from),
        )
        .unwrap();
        run(&args).expect("eval");
    }

    #[test]
    fn eval_rejects_bad_gap() {
        let args = Args::parse(["eval", "--gap", "-10"].map(String::from)).unwrap();
        let err = run(&args).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }
}
