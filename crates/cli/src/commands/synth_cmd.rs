//! `habit synth` — generate a synthetic AIS CSV dataset.
//!
//! The one command with no service operation behind it: dataset
//! generation is an input producer, not a model operation. Its errors
//! still speak the unified taxonomy (`bad_request` for unknown
//! datasets/bad scales, I/O codes from the writer).

use crate::args::Args;
use crate::io::write_ais_csv;
use habit_service::ServiceError;
use std::path::Path;
use synth::{datasets, DatasetSpec};

/// Builds the named dataset (`dan` / `kiel` / `sar`).
pub fn build_dataset(name: &str, seed: u64, scale: f64) -> Result<datasets::Dataset, ServiceError> {
    let spec = DatasetSpec { seed, scale };
    match name.to_ascii_lowercase().as_str() {
        "dan" => Ok(datasets::dan(spec)),
        "kiel" => Ok(datasets::kiel(spec)),
        "sar" => Ok(datasets::sar(spec)),
        other => Err(ServiceError::bad_request(format!(
            "unknown dataset `{other}` (dan|kiel|sar)"
        ))),
    }
}

/// Entry point for `habit synth`.
pub fn run(args: &Args) -> Result<(), ServiceError> {
    args.check_flags(&["dataset", "out", "seed", "scale"])?;
    let name = args.require("dataset")?;
    let out = args.require("out")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let scale: f64 = args.get_or("scale", 1.0)?;
    if scale <= 0.0 {
        return Err(ServiceError::bad_request("--scale must be positive"));
    }

    let dataset = build_dataset(name, seed, scale)?;
    write_ais_csv(&dataset.trajectories, Path::new(out))?;
    println!(
        "{}: wrote {} positions from {} vessels to {out}",
        dataset.name,
        dataset.num_positions(),
        dataset.num_ships()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_names_resolve() {
        assert!(build_dataset("kiel", 1, 0.05).is_ok());
        assert!(build_dataset("KIEL", 1, 0.05).is_ok());
        let err = build_dataset("atlantis", 1, 0.05).unwrap_err();
        assert_eq!(err.code, habit_service::ErrorCode::BadRequest);
    }

    #[test]
    fn synth_writes_csv() {
        let out = std::env::temp_dir().join(format!("habit-synth-{}.csv", std::process::id()));
        let args = Args::parse(
            [
                "synth",
                "--dataset",
                "kiel",
                "--seed",
                "7",
                "--scale",
                "0.05",
                "--out",
                out.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();
        run(&args).expect("synth");
        let text = std::fs::read_to_string(&out).expect("file written");
        std::fs::remove_file(&out).ok();
        assert!(text.starts_with("mmsi,t,lon,lat,sog,cog,heading"));
        assert!(text.lines().count() > 100);
    }

    #[test]
    fn rejects_bad_scale_and_unknown_flags() {
        let args = Args::parse(
            [
                "synth",
                "--dataset",
                "kiel",
                "--out",
                "x.csv",
                "--scale",
                "-1",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(run(&args).unwrap_err().exit_code(), 2, "usage error");
        let args = Args::parse(
            [
                "synth",
                "--dataset",
                "kiel",
                "--out",
                "x.csv",
                "--sale",
                "1",
            ]
            .map(String::from),
        )
        .unwrap();
        assert!(run(&args).unwrap_err().to_string().contains("unknown flag"));
    }
}
