//! `habit info` — describe a fitted model file.

use crate::args::Args;
use habit_core::{CellProjection, HabitModel, WeightScheme};
use std::error::Error;

/// Renders a model description (separated from `run` for testing).
pub fn describe(model: &HabitModel, blob_len: usize) -> String {
    let c = model.config();
    let projection = match c.projection {
        CellProjection::Center => "center (c)",
        CellProjection::Median => "median (w)",
    };
    let weights = match c.weight_scheme {
        WeightScheme::Hops => "hops (paper default)",
        WeightScheme::InverseTransitions => "1/transitions",
        WeightScheme::NegLogFrequency => "neg-log frequency",
    };
    let mut out = String::new();
    out.push_str(&format!("HABIT model ({blob_len} bytes serialized)\n"));
    out.push_str(&format!("  resolution r      : {}\n", c.resolution));
    out.push_str(&format!("  projection p      : {projection}\n"));
    out.push_str(&format!("  rdp tolerance t   : {} m\n", c.rdp_tolerance_m));
    out.push_str(&format!("  edge weights      : {weights}\n"));
    out.push_str(&format!(
        "  graph             : {} cells, {} transitions\n",
        model.node_count(),
        model.edge_count()
    ));
    // Aggregate traffic stats over the graph.
    let mut msgs = 0u64;
    let mut max_vessels = 0u64;
    for (_, stats) in model.graph().nodes() {
        msgs += stats.msg_count;
        max_vessels = max_vessels.max(stats.vessels);
    }
    out.push_str(&format!("  indexed reports   : {msgs}\n"));
    out.push_str(&format!(
        "  busiest cell      : {max_vessels} distinct vessels\n"
    ));
    out
}

/// Entry point for `habit info`.
pub fn run(args: &Args) -> Result<(), Box<dyn Error>> {
    args.check_flags(&["model"])?;
    let path = args.require("model")?;
    let bytes = std::fs::read(path)?;
    let model = HabitModel::from_bytes(&bytes)?;
    print!("{}", describe(&model, bytes.len()));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ais::{trips_to_table, AisPoint, Trip};
    use habit_core::HabitConfig;

    #[test]
    fn describe_contains_key_fields() {
        let trips = vec![Trip {
            trip_id: 1,
            mmsi: 5,
            points: (0..150)
                .map(|i| AisPoint::new(5, i * 60, 10.0 + i as f64 * 0.003, 56.0, 12.0, 90.0))
                .collect(),
        }];
        let model =
            HabitModel::fit(&trips_to_table(&trips), HabitConfig::with_r_t(8, 250.0)).unwrap();
        let text = describe(&model, model.storage_bytes());
        assert!(text.contains("resolution r      : 8"));
        assert!(text.contains("250 m"));
        assert!(text.contains("median (w)"));
        assert!(text.contains("cells"));
        assert!(text.contains("indexed reports"));
    }

    #[test]
    fn run_reports_missing_file() {
        let args = Args::parse(["info", "--model", "/does/not/exist"].map(String::from)).unwrap();
        assert!(run(&args).is_err());
    }
}
