//! `habit info` — a thin adapter: flags → [`Request::ModelInfo`] → text.

use crate::args::Args;
use crate::commands::open_service;
use habit_core::{CellProjection, WeightScheme};
use habit_service::{ModelReport, Request, Response, ServiceError};

/// Renders a model description (separated from `run` for testing).
pub fn describe(report: &ModelReport) -> String {
    let projection = match report.config.projection {
        CellProjection::Center => "center (c)",
        CellProjection::Median => "median (w)",
    };
    let weights = match report.config.weight_scheme {
        WeightScheme::Hops => "hops (paper default)",
        WeightScheme::InverseTransitions => "1/transitions",
        WeightScheme::NegLogFrequency => "neg-log frequency",
    };
    let mut out = String::new();
    out.push_str(&format!(
        "HABIT model ({} bytes serialized)\n",
        report.storage_bytes
    ));
    out.push_str(&format!(
        "  resolution r      : {}\n",
        report.config.resolution
    ));
    out.push_str(&format!("  projection p      : {projection}\n"));
    out.push_str(&format!(
        "  rdp tolerance t   : {} m\n",
        report.config.rdp_tolerance_m
    ));
    out.push_str(&format!("  edge weights      : {weights}\n"));
    out.push_str(&format!(
        "  graph             : {} cells, {} transitions\n",
        report.cells, report.transitions
    ));
    out.push_str(&format!("  indexed reports   : {}\n", report.reports));
    if report.shards > 0 {
        out.push_str(&format!(
            "  serving fleet     : {} shards, manifest {}\n",
            report.shards,
            report.manifest_hash.as_deref().unwrap_or("?")
        ));
    }
    out.push_str(&format!(
        "  busiest cell      : {} distinct vessels\n",
        report.busiest_cell_vessels
    ));
    match &report.state {
        Some(state) => {
            out.push_str(&format!(
                "  blob version      : v{} (refittable: embedded fit state)\n",
                report.blob_version
            ));
            out.push_str(&format!(
                "  fit state         : {} bytes\n",
                state.state_bytes
            ));
            out.push_str(&format!(
                "  fit provenance    : {} trips, {} reports accumulated\n",
                state.trips, state.reports
            ));
        }
        None => {
            out.push_str(&format!(
                "  blob version      : v{} (read-only: no embedded fit state — refit needs `fit --save-state`)\n",
                report.blob_version
            ));
        }
    }
    out
}

/// Entry point for `habit info`.
pub fn run(args: &Args) -> Result<(), ServiceError> {
    args.check_flags(&["model"])?;
    let service = open_service(args.require("model")?, 1, 1)?;
    let Response::ModelInfo(report) = service.handle(&Request::ModelInfo)? else {
        unreachable!("ModelInfo answers ModelInfo");
    };
    print!("{}", describe(&report));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ais::{trips_to_table, AisPoint, Trip};
    use habit_core::{HabitConfig, HabitModel};
    use habit_service::{Service, ServiceConfig};

    #[test]
    fn describe_contains_key_fields() {
        let trips = vec![Trip {
            trip_id: 1,
            mmsi: 5,
            points: (0..150)
                .map(|i| AisPoint::new(5, i * 60, 10.0 + i as f64 * 0.003, 56.0, 12.0, 90.0))
                .collect(),
        }];
        let model =
            HabitModel::fit(&trips_to_table(&trips), HabitConfig::with_r_t(8, 250.0)).unwrap();
        let service = Service::with_model(
            ServiceConfig {
                threads: 1,
                cache_capacity: 1,
            },
            model,
        );
        let Response::ModelInfo(report) = service.handle(&Request::ModelInfo).unwrap() else {
            panic!("model info");
        };
        let text = describe(&report);
        assert!(text.contains("resolution r      : 8"));
        assert!(text.contains("250 m"));
        assert!(text.contains("median (w)"));
        assert!(text.contains("cells"));
        assert!(text.contains("indexed reports"));
        // A freshly fitted model is refittable: v2 with provenance.
        assert!(text.contains("blob version      : v2"), "{text}");
        assert!(
            text.contains("fit provenance    : 1 trips, 150 reports"),
            "{text}"
        );
        assert!(text.contains("fit state         : "), "{text}");
    }

    #[test]
    fn describe_distinguishes_v1_models() {
        let report = habit_service::ModelReport {
            config: HabitConfig::default(),
            cells: 10,
            transitions: 20,
            reports: 100,
            busiest_cell_vessels: 2,
            storage_bytes: 1024,
            blob_version: 1,
            state: None,
            shards: 0,
            manifest_hash: None,
        };
        let text = describe(&report);
        assert!(text.contains("blob version      : v1"), "{text}");
        assert!(text.contains("--save-state"), "{text}");
        assert!(!text.contains("fit provenance"), "{text}");
    }

    #[test]
    fn run_reports_missing_file() {
        let args = Args::parse(["info", "--model", "/does/not/exist"].map(String::from)).unwrap();
        let err = run(&args).unwrap_err();
        assert_eq!(err.code, habit_service::ErrorCode::Io);
    }
}
