//! Property tests for the engine's core guarantees:
//!
//! * **sharding is invisible** — the sharded fit serializes
//!   byte-identically to the sequential fit for random trip tables
//!   across shard counts {1, 2, 4, 8} and thread counts {1, 4};
//! * **refit is invisible** — merging a random delta of new trips into
//!   a saved fit state is byte-identical (model *and* embedded state)
//!   to a from-scratch fit over `history ∪ delta`, again across
//!   shard/thread counts.

use crate::pool::ThreadPool;
use crate::refit::refit_model;
use crate::shard::fit_sharded;
use ais::{trips_to_table, AisPoint, Trip};
use habit_core::{HabitConfig, HabitModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random multi-corridor trip table: a few vessels random-walk
/// from seeded anchor points with varied headings, spreading rows over
/// several spatial tiles.
fn random_trip_table(seed: u64, n_trips: usize, points_per_trip: usize) -> aggdb::Table {
    trips_to_table(&random_trips(seed, n_trips, points_per_trip, 0))
}

/// Like [`random_trip_table`] but returns the trips, with ids (and
/// vessels) offset by `id_offset` — deltas must be disjoint from the
/// history per the fit-state contract.
fn random_trips(seed: u64, n_trips: usize, points_per_trip: usize, id_offset: u64) -> Vec<Trip> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trips = Vec::with_capacity(n_trips);
    for k in 0..n_trips {
        let k = k + id_offset as usize;
        let mut lon = 8.0 + rng.gen_range(0.0..6.0);
        let mut lat = 54.0 + rng.gen_range(0.0..3.0);
        let heading = rng.gen_range(0.0..std::f64::consts::TAU);
        let (mut dlon, mut dlat) = (heading.cos() * 0.004, heading.sin() * 0.003);
        let mut points = Vec::with_capacity(points_per_trip);
        for i in 0..points_per_trip {
            // Occasional course changes keep the lattice paths irregular.
            if rng.gen_range(0u32..10) == 0 {
                let turn = rng.gen_range(-0.5..0.5f64);
                let (s, c) = turn.sin_cos();
                let (ndlon, ndlat) = (dlon * c - dlat * s, dlon * s + dlat * c);
                dlon = ndlon;
                dlat = ndlat;
            }
            lon += dlon;
            lat += dlat;
            points.push(AisPoint::new(
                1000 + k as u64,
                i as i64 * 60,
                lon,
                lat,
                rng.gen_range(5.0..15.0),
                rng.gen_range(0.0..360.0),
            ));
        }
        trips.push(Trip {
            trip_id: k as u64 + 1,
            mmsi: 1000 + k as u64,
            points,
        });
    }
    trips
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole determinism contract, end to end: for random trip
    /// tables, every (shards, threads) combination serializes to the
    /// same bytes as the sequential `HabitModel::fit`.
    #[test]
    fn sharded_fit_equals_sequential_fit(
        seed in 0u64..10_000,
        n_trips in 3usize..6,
        points in 40usize..90,
    ) {
        let table = random_trip_table(seed, n_trips, points);
        let config = HabitConfig::default();
        let sequential = HabitModel::fit(&table, config);
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 4] {
                let pool = ThreadPool::new(threads);
                let sharded = fit_sharded(&table, config, shards, &pool);
                match (&sequential, &sharded) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(
                            a.to_bytes(),
                            b.to_bytes(),
                            "model bytes diverge at shards={} threads={}",
                            shards,
                            threads
                        );
                        // The embedded fit state canonicalizes too: the
                        // full v2 container is sharding-invariant.
                        prop_assert_eq!(
                            a.to_bytes_full(),
                            b.to_bytes_full(),
                            "fit-state bytes diverge at shards={} threads={}",
                            shards,
                            threads
                        );
                    }
                    (Err(_), Err(_)) => {} // both reject (e.g. all drift)
                    _ => prop_assert!(
                        false,
                        "ok/err divergence at shards={} threads={}",
                        shards,
                        threads
                    ),
                }
            }
        }
    }

    /// The incremental-refit contract, end to end: for random disjoint
    /// history/delta trip sets, `refit(fit_state(history), delta)`
    /// serializes — graph *and* embedded state — byte-identically to a
    /// from-scratch `fit(history ∪ delta)`, at every (shards, threads)
    /// combination on either side.
    #[test]
    fn refit_equals_full_fit(
        seed in 0u64..10_000,
        history_trips in 3usize..6,
        delta_trips in 1usize..4,
        points in 40usize..80,
    ) {
        let history = random_trips(seed, history_trips, points, 0);
        let delta = random_trips(seed.wrapping_add(1), delta_trips, points, history_trips as u64);
        let union: Vec<Trip> = history.iter().chain(&delta).cloned().collect();
        let config = HabitConfig::default();

        let full = HabitModel::fit(&trips_to_table(&union), config);
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 4] {
                let pool = ThreadPool::new(threads);
                let incremental = fit_sharded(&trips_to_table(&history), config, shards, &pool)
                    .and_then(|model| {
                        refit_model(&model, &trips_to_table(&delta), shards, &pool)
                            .map(|(refitted, _)| refitted)
                    });
                match (&full, &incremental) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(
                            a.to_bytes_full(),
                            b.to_bytes_full(),
                            "refit diverges from full fit at shards={} threads={}",
                            shards,
                            threads
                        );
                    }
                    // History alone may be all-drift (empty model) while
                    // the union fits — or the union may be empty too;
                    // both sides must agree only when both constructible.
                    (_, Err(habit_core::HabitError::EmptyModel)) => {}
                    (Err(habit_core::HabitError::EmptyModel), _) => {}
                    _ => prop_assert!(
                        false,
                        "ok/err divergence at shards={} threads={}",
                        shards,
                        threads
                    ),
                }
            }
        }
    }
}
