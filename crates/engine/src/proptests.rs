//! Property test for the engine's core guarantee: sharded fit is
//! **byte-identical** to the sequential fit — same serialized model for
//! random trip tables across shard counts {1, 2, 4, 8} and thread
//! counts {1, 4}.

use crate::pool::ThreadPool;
use crate::shard::fit_sharded;
use ais::{trips_to_table, AisPoint, Trip};
use habit_core::{HabitConfig, HabitModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random multi-corridor trip table: a few vessels random-walk
/// from seeded anchor points with varied headings, spreading rows over
/// several spatial tiles.
fn random_trip_table(seed: u64, n_trips: usize, points_per_trip: usize) -> aggdb::Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trips = Vec::with_capacity(n_trips);
    for k in 0..n_trips {
        let mut lon = 8.0 + rng.gen_range(0.0..6.0);
        let mut lat = 54.0 + rng.gen_range(0.0..3.0);
        let heading = rng.gen_range(0.0..std::f64::consts::TAU);
        let (mut dlon, mut dlat) = (heading.cos() * 0.004, heading.sin() * 0.003);
        let mut points = Vec::with_capacity(points_per_trip);
        for i in 0..points_per_trip {
            // Occasional course changes keep the lattice paths irregular.
            if rng.gen_range(0u32..10) == 0 {
                let turn = rng.gen_range(-0.5..0.5f64);
                let (s, c) = turn.sin_cos();
                let (ndlon, ndlat) = (dlon * c - dlat * s, dlon * s + dlat * c);
                dlon = ndlon;
                dlat = ndlat;
            }
            lon += dlon;
            lat += dlat;
            points.push(AisPoint::new(
                1000 + k as u64,
                i as i64 * 60,
                lon,
                lat,
                rng.gen_range(5.0..15.0),
                rng.gen_range(0.0..360.0),
            ));
        }
        trips.push(Trip {
            trip_id: k as u64 + 1,
            mmsi: 1000 + k as u64,
            points,
        });
    }
    trips_to_table(&trips)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole determinism contract, end to end: for random trip
    /// tables, every (shards, threads) combination serializes to the
    /// same bytes as the sequential `HabitModel::fit`.
    #[test]
    fn sharded_fit_equals_sequential_fit(
        seed in 0u64..10_000,
        n_trips in 3usize..6,
        points in 40usize..90,
    ) {
        let table = random_trip_table(seed, n_trips, points);
        let config = HabitConfig::default();
        let sequential = HabitModel::fit(&table, config);
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 4] {
                let pool = ThreadPool::new(threads);
                let sharded = fit_sharded(&table, config, shards, &pool);
                match (&sequential, &sharded) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(
                            a.to_bytes(),
                            b.to_bytes(),
                            "model bytes diverge at shards={} threads={}",
                            shards,
                            threads
                        );
                    }
                    (Err(_), Err(_)) => {} // both reject (e.g. all drift)
                    _ => prop_assert!(
                        false,
                        "ok/err divergence at shards={} threads={}",
                        shards,
                        threads
                    ),
                }
            }
        }
    }
}
