//! A bounded LRU cache over an intrusive doubly-linked list.
//!
//! Backs the [`crate::BatchImputer`] route cache: route searches are the
//! expensive part of a gap query, and serving traffic concentrates on a
//! small working set of (start cell, end cell) pairs, so a bounded LRU
//! keeps the hot routes while old corridors age out. Hand-rolled (no
//! `lru` crate offline): a slab of nodes with prev/next indices plus an
//! FxHash index; `get` and `insert` are O(1).

use aggdb::fxhash::FxHashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache.
pub struct LruCache<K, V> {
    capacity: usize,
    map: FxHashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    /// Most recently used node, or `NIL` when empty.
    head: usize,
    /// Least recently used node, or `NIL` when empty.
    tail: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity.max(1)` entries.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            map: FxHashMap::default(),
            slab: Vec::with_capacity(capacity.min(1024)),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.move_to_front(idx);
        Some(&self.slab[idx].value)
    }

    /// Looks up `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slab[idx].value)
    }

    /// Inserts or replaces `key`, evicting the least-recently-used entry
    /// when the cache is full. Returns `true` when an eviction happened.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.move_to_front(idx);
            return false;
        }
        let mut evicted = false;
        let idx = if self.map.len() < self.capacity {
            // Grow the slab with a fresh node.
            let idx = self.slab.len();
            self.slab.push(Node {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            idx
        } else {
            // Reuse the LRU node in place.
            evicted = true;
            let idx = self.tail;
            self.unlink(idx);
            let old_key = self.slab[idx].key.clone();
            self.map.remove(&old_key);
            self.slab[idx].key = key.clone();
            self.slab[idx].value = value;
            idx
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction_order() {
        let mut cache: LruCache<u32, &str> = LruCache::new(2);
        assert!(cache.is_empty());
        cache.insert(1, "a");
        cache.insert(2, "b");
        assert_eq!(cache.get(&1), Some(&"a")); // 1 is now MRU
        assert!(cache.insert(3, "c"), "2 (LRU) evicted");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(&"a"));
        assert_eq!(cache.get(&3), Some(&"c"));
    }

    #[test]
    fn replace_updates_value_without_eviction() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(7, 70);
        assert!(!cache.insert(7, 71));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.peek(&7), Some(&71));
    }

    #[test]
    fn peek_does_not_touch_recency() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.peek(&1), Some(&10)); // 1 stays LRU
        cache.insert(3, 30);
        assert_eq!(cache.get(&1), None, "peek must not rescue the LRU");
        assert_eq!(cache.get(&2), Some(&20));
    }

    #[test]
    fn capacity_one_and_zero_clamp() {
        let mut cache: LruCache<u8, u8> = LruCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(1, 1);
        cache.insert(2, 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&2), Some(&2));
    }

    #[test]
    fn long_churn_stays_bounded_and_consistent() {
        let mut cache: LruCache<u64, u64> = LruCache::new(8);
        for i in 0..1000u64 {
            cache.insert(i % 13, i);
            assert!(cache.len() <= 8);
        }
        // The most recent key is always retrievable with the last value
        // written for it.
        cache.insert(99, 4242);
        assert_eq!(cache.get(&99), Some(&4242));
    }
}
