//! Sharded model fitting: `accumulate → merge → finalize`, tile by tile.
//!
//! The fit pipeline is three explicit stages over
//! [`habit_core::FitState`]:
//!
//! 1. **accumulate** ([`accumulate_sharded`]) — the global stages run
//!    once (cell assignment, drift filter, window lag — they need
//!    whole-trip context and are cheap); every row is assigned to a
//!    shard by the coarse tile of its cell (`hexgrid::TilePartitioner`),
//!    so both group-by keys — `cl` and `(lag_cl, cl)`, keyed by the
//!    destination cell — never straddle shards, and each shard computes
//!    mergeable partial aggregates (`aggdb::PartialGroupBy`) on a pool
//!    worker;
//! 2. **merge** — shard partials merge **in ascending shard order**
//!    (not completion order) and the result canonicalizes into a
//!    [`FitState`] whose bytes are independent of the sharding;
//! 3. **finalize** ([`fit_sharded`], via
//!    [`HabitModel::from_fit_state`]) — the state finishes into
//!    canonically sorted tables and assembles the transition graph.
//!
//! Because the merge is bit-exact for count / distinct / median and the
//! state canonicalizes, both the fitted model **and its embedded fit
//! state** serialize to byte-identical blobs for any shard count and
//! any thread count — equal to the sequential [`HabitModel::fit`] —
//! which the engine's property tests assert. The same seam powers
//! [`crate::refit`]: a delta table accumulates exactly like a shard and
//! merges into a saved state.

use crate::pool::ThreadPool;
use aggdb::{PartialGroupBy, Table};
use habit_core::fitstate::FitProvenance;
use habit_core::graphgen::{
    cell_agg_specs, lagged_trip_table, transition_agg_specs, transition_rows,
};
use habit_core::{FitState, HabitConfig, HabitError, HabitModel};
use habit_obs::Recorder;
use hexgrid::tiling::DEFAULT_TILE_LEVELS_UP;
use hexgrid::{HexCell, TilePartitioner};

/// Fits a HABIT model with the group-bys sharded by spatial tile and
/// executed on `pool`. Produces a model — and embedded fit state —
/// byte-identical to `HabitModel::fit(table, config)` for every
/// `shards ≥ 1` and every pool size.
pub fn fit_sharded(
    table: &Table,
    config: HabitConfig,
    shards: usize,
    pool: &ThreadPool,
) -> Result<HabitModel, HabitError> {
    fit_sharded_traced(table, config, shards, pool, None, "fit")
}

/// [`fit_sharded`] with phase spans: when `recorder` is set, the
/// `fit.prepare` / `fit.accumulate` / `fit.merge` phases (via
/// [`accumulate_sharded_traced`]) plus a `fit.finalize` phase are
/// recorded under `op`. The fitted bytes are unaffected.
pub fn fit_sharded_traced(
    table: &Table,
    config: HabitConfig,
    shards: usize,
    pool: &ThreadPool,
    recorder: Option<&Recorder>,
    op: &str,
) -> Result<HabitModel, HabitError> {
    let state = accumulate_sharded_traced(table, config, shards, pool, recorder, op)?;
    let span = recorder.map(|r| r.span("fit.finalize", op));
    let model = HabitModel::from_fit_state(state);
    if let (Some(mut s), Err(_)) = (span, &model) {
        s.fail();
    }
    model
}

/// The accumulate + merge stages: runs the partial group-bys per
/// spatial shard on `pool` and merges them into one canonical
/// [`FitState`] — everything of a fit except finalizing the graph.
/// This is the stage [`crate::refit`] reuses verbatim for delta tables.
pub fn accumulate_sharded(
    table: &Table,
    config: HabitConfig,
    shards: usize,
    pool: &ThreadPool,
) -> Result<FitState, HabitError> {
    accumulate_sharded_traced(table, config, shards, pool, None, "fit")
}

/// [`accumulate_sharded`] with phase spans under `op`: `fit.prepare`
/// (provenance, lag, tile partition), `fit.accumulate` (per-shard
/// partial group-bys), `fit.merge` (ordered merge + canonicalize).
pub fn accumulate_sharded_traced(
    table: &Table,
    config: HabitConfig,
    shards: usize,
    pool: &ThreadPool,
    recorder: Option<&Recorder>,
    op: &str,
) -> Result<FitState, HabitError> {
    let shards = shards.max(1);
    let prepare_span = recorder.map(|r| r.span("fit.prepare", op));
    let provenance = FitProvenance::of_table(table)?;
    let lagged = lagged_trip_table(table, &config)?;
    let shard_tables = partition_by_tile(&lagged, config.resolution, shards)?;
    drop(prepare_span);

    // One pool task per shard: both partial group-bys over that shard's
    // rows. Chunk size 1 keeps shards independently schedulable.
    let accumulate_span = recorder.map(|r| r.span("fit.accumulate", op));
    let partials: Vec<Result<(PartialGroupBy, PartialGroupBy), HabitError>> =
        pool.map_chunks(&shard_tables, 1, |_, chunk| {
            let shard = &chunk[0];
            let cells = shard.group_by_partial(&["cl"], &cell_agg_specs())?;
            let transitions = transition_rows(shard)?
                .group_by_partial(&["lag_cl", "cl"], &transition_agg_specs())?;
            Ok((cells, transitions))
        });
    drop(accumulate_span);

    // Merge in ascending shard order — deterministic regardless of which
    // worker finished first. (`FitState::from_partials` then erases even
    // that order by canonicalizing.)
    // Held (not dropped) so the span covers the canonicalize below.
    let _merge_span = recorder.map(|r| r.span("fit.merge", op));
    let mut cell_merged: Option<PartialGroupBy> = None;
    let mut trans_merged: Option<PartialGroupBy> = None;
    for shard_result in partials {
        let (cells, transitions) = shard_result?;
        match &mut cell_merged {
            None => cell_merged = Some(cells),
            Some(m) => m.merge(cells)?,
        }
        match &mut trans_merged {
            None => trans_merged = Some(transitions),
            Some(m) => m.merge(transitions)?,
        }
    }
    FitState::from_partials(
        config,
        cell_merged.expect("at least one shard"),
        trans_merged.expect("at least one shard"),
        provenance,
    )
}

/// Per-shard accumulation for a model *fleet*: the same prepare and
/// accumulate stages as [`accumulate_sharded`], but instead of merging
/// the shard partials into one state, each **non-empty** shard finishes
/// into its own [`FitState`], returned keyed by shard id in ascending
/// order. This is the persistence seam behind `habit fit --shards-out`:
/// each state finalizes into one per-tile-group model blob.
///
/// Every returned state carries the **whole input's** provenance, not
/// per-shard row counts: `max_trip_id` must be the global high-water
/// mark for a later per-shard refit to respect the disjoint-trips
/// contract against *any* shard, and recording the fit run's
/// trips/reports keeps the one-shard fleet state byte-identical to the
/// single-blob [`accumulate_sharded`] state (the degenerate case the
/// fleet's property tests pin).
pub fn accumulate_per_shard(
    table: &Table,
    config: HabitConfig,
    shards: usize,
    pool: &ThreadPool,
) -> Result<Vec<(u32, FitState)>, HabitError> {
    let shards = shards.max(1);
    let provenance = FitProvenance::of_table(table)?;
    let lagged = lagged_trip_table(table, &config)?;
    let shard_tables = partition_by_tile(&lagged, config.resolution, shards)?;
    let row_counts: Vec<usize> = shard_tables.iter().map(Table::num_rows).collect();

    let partials: Vec<Result<(PartialGroupBy, PartialGroupBy), HabitError>> =
        pool.map_chunks(&shard_tables, 1, |_, chunk| {
            let shard = &chunk[0];
            let cells = shard.group_by_partial(&["cl"], &cell_agg_specs())?;
            let transitions = transition_rows(shard)?
                .group_by_partial(&["lag_cl", "cl"], &transition_agg_specs())?;
            Ok((cells, transitions))
        });

    let mut out = Vec::new();
    for (shard, shard_result) in partials.into_iter().enumerate() {
        let (cells, transitions) = shard_result?;
        if row_counts[shard] == 0 {
            continue;
        }
        out.push((
            shard as u32,
            FitState::from_partials(config, cells, transitions, provenance)?,
        ));
    }
    if out.is_empty() {
        // Everything was filtered (sea drift): fail like the sequential
        // path would on finalize, rather than writing an empty fleet.
        return Err(HabitError::EmptyModel);
    }
    Ok(out)
}

/// The sharded equivalent of `habit_core::build_transition_graph`.
pub fn sharded_transition_graph(
    table: &Table,
    config: &HabitConfig,
    shards: usize,
    pool: &ThreadPool,
) -> Result<habit_core::graphgen::TransitionGraph, HabitError> {
    accumulate_sharded(table, *config, shards, pool)?.finalize()
}

/// Splits the lagged table into per-shard tables by the coarse tile of
/// each row's `cl` cell. Row order within a shard stays ascending, so
/// per-shard accumulation visits rows in the same relative order as the
/// sequential path.
fn partition_by_tile(
    lagged: &Table,
    resolution: u8,
    shards: usize,
) -> Result<Vec<Table>, HabitError> {
    let cl = lagged.column_by_name("cl")?;
    let cells = cl
        .u64_values()
        .ok_or(HabitError::BadInput(aggdb::AggError::TypeMismatch {
            column: "cl".into(),
            expected: "UInt64",
            actual: cl.dtype().name(),
        }))?;

    let partitioner = TilePartitioner::new(resolution, DEFAULT_TILE_LEVELS_UP, shards);
    // Memoize cell → shard: rows revisit the same cells constantly and
    // the tile lookup does trigonometry.
    let mut shard_of_cell: aggdb::fxhash::FxHashMap<u64, usize> =
        aggdb::fxhash::FxHashMap::default();
    let mut shard_rows: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (row, &raw) in cells.iter().enumerate() {
        let shard = match shard_of_cell.get(&raw) {
            Some(&s) => s,
            None => {
                let cell = HexCell::from_raw(raw).map_err(HabitError::Grid)?;
                let s = partitioner.shard_of(cell).map_err(HabitError::Grid)?;
                shard_of_cell.insert(raw, s);
                s
            }
        };
        shard_rows[shard].push(row);
    }
    Ok(shard_rows
        .into_iter()
        .map(|rows| lagged.take(&rows))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ais::{trips_to_table, AisPoint, Trip};
    use habit_obs::Recorder;

    fn corridor_table() -> Table {
        // Two corridors far enough apart to live in different tiles.
        let mut trips = Vec::new();
        for k in 0..4u64 {
            trips.push(Trip {
                trip_id: k + 1,
                mmsi: 100 + k,
                points: (0..120)
                    .map(|i| {
                        AisPoint::new(
                            100 + k,
                            i as i64 * 60,
                            10.0 + i as f64 * 0.004,
                            56.0,
                            12.0,
                            90.0,
                        )
                    })
                    .collect(),
            });
            trips.push(Trip {
                trip_id: 100 + k + 1,
                mmsi: 200 + k,
                points: (0..120)
                    .map(|i| {
                        AisPoint::new(
                            200 + k,
                            i as i64 * 60,
                            12.5,
                            55.0 + i as f64 * 0.003,
                            10.0,
                            0.0,
                        )
                    })
                    .collect(),
            });
        }
        trips_to_table(&trips)
    }

    #[test]
    fn sharded_fit_is_byte_identical_to_sequential() {
        let table = corridor_table();
        let config = HabitConfig::default();
        let sequential = HabitModel::fit(&table, config).expect("sequential fit");
        let baseline = sequential.to_bytes();
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 4] {
                let pool = ThreadPool::new(threads);
                let model = fit_sharded(&table, config, shards, &pool).expect("sharded fit");
                assert_eq!(
                    model.to_bytes(),
                    baseline,
                    "shards={shards} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn partition_covers_every_row_exactly_once() {
        let table = corridor_table();
        let config = HabitConfig::default();
        let lagged = lagged_trip_table(&table, &config).unwrap();
        let parts = partition_by_tile(&lagged, config.resolution, 4).unwrap();
        let total: usize = parts.iter().map(Table::num_rows).sum();
        assert_eq!(total, lagged.num_rows());
        // Two distant corridors must not all land in one shard.
        let non_empty = parts.iter().filter(|t| t.num_rows() > 0).count();
        assert!(non_empty >= 2, "tiles all hashed to one shard");
    }

    #[test]
    fn traced_fit_records_every_phase_and_identical_bytes() {
        let table = corridor_table();
        let config = HabitConfig::default();
        let pool = ThreadPool::new(2);
        let recorder = Recorder::new(16);
        let plain = fit_sharded(&table, config, 2, &pool).expect("fit");
        let traced =
            fit_sharded_traced(&table, config, 2, &pool, Some(&recorder), "fit").expect("fit");
        assert_eq!(plain.to_bytes(), traced.to_bytes());
        let names: Vec<&str> = recorder.recent().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            ["fit.prepare", "fit.accumulate", "fit.merge", "fit.finalize"]
        );
        assert!(recorder.recent().iter().all(|s| s.op == "fit" && s.ok));
    }

    #[test]
    fn per_shard_states_merge_back_to_the_global_state() {
        let table = corridor_table();
        let config = HabitConfig::default();
        let pool = ThreadPool::new(2);
        let global = accumulate_sharded(&table, config, 4, &pool).expect("global state");

        // One shard: the single state IS the global state, byte for byte.
        let one = accumulate_per_shard(&table, config, 1, &pool).expect("one shard");
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].0, 0);
        assert_eq!(one[0].1.to_bytes(), global.to_bytes());

        // Several shards: ids ascend, every state carries the global
        // provenance, and merging them reproduces the global partials.
        let many = accumulate_per_shard(&table, config, 8, &pool).expect("per shard");
        assert!(many.len() >= 2, "two corridors must split");
        assert!(many.windows(2).all(|w| w[0].0 < w[1].0));
        for (_, state) in &many {
            assert_eq!(state.provenance(), global.provenance());
        }
        let mut iter = many.into_iter();
        let (_, mut merged) = iter.next().expect("non-empty");
        for (_, state) in iter {
            // Provenance over-counts under merge (each state carries the
            // whole input's counters) — only the partials are compared.
            merged.merge(state).expect("merge");
        }
        assert_eq!(merged.cell_groups(), global.cell_groups());
        assert_eq!(merged.transition_groups(), global.transition_groups());
        let graph = merged.finalize().expect("graph");
        assert_eq!(
            graph.to_bytes(),
            global.finalize().expect("graph").to_bytes()
        );
    }

    #[test]
    fn per_shard_states_propagate_empty_model() {
        let drift = Trip {
            trip_id: 1,
            mmsi: 7,
            points: (0..40)
                .map(|i| AisPoint::new(7, i * 60, 11.0 + (i % 2) as f64 * 1e-4, 56.5, 0.4, 0.0))
                .collect(),
        };
        let table = trips_to_table(&[drift]);
        let pool = ThreadPool::new(2);
        assert!(matches!(
            accumulate_per_shard(&table, HabitConfig::default(), 4, &pool),
            Err(HabitError::EmptyModel)
        ));
    }

    #[test]
    fn sharded_fit_propagates_empty_model() {
        // Drift-only input: everything is filtered, fit must error like
        // the sequential path.
        let drift = Trip {
            trip_id: 1,
            mmsi: 7,
            points: (0..40)
                .map(|i| AisPoint::new(7, i * 60, 11.0 + (i % 2) as f64 * 1e-4, 56.5, 0.4, 0.0))
                .collect(),
        };
        let table = trips_to_table(&[drift]);
        let pool = ThreadPool::new(2);
        assert!(matches!(
            fit_sharded(&table, HabitConfig::default(), 4, &pool),
            Err(HabitError::EmptyModel)
        ));
    }
}
