//! Batched imputation: answer many gap queries as one unit of work.
//!
//! Serving traffic does not arrive one query at a time — a monitoring
//! pipeline reconstructs thousands of gaps per tick, and the gaps
//! concentrate on the same corridors. [`BatchImputer`] exploits both
//! facts:
//!
//! * **Route dedup** — queries are snapped first, and the expensive A*
//!   search runs once per *distinct* `(start cell, end cell)` pair in
//!   the batch, not once per query;
//! * **Route cache** — resolved routes (including "no path" outcomes)
//!   live in a bounded LRU keyed by the cell pair, so recurring traffic
//!   across batches skips the search entirely;
//! * **Pool execution** — snapping, the unique searches and the
//!   per-query tail (projection, timestamps, RDP) all run on the shared
//!   [`ThreadPool`].
//!
//! Results are returned in query order and are deterministic: the same
//! batch against the same model yields the same answers at any thread
//! count and any cache state (a cached route is the same route the
//! search would recompute).

use crate::lru::LruCache;
use crate::pool::ThreadPool;
use aggdb::fxhash::FxHashMap;
use habit_core::{GapQuery, HabitModel, Imputation, Route};
use habit_obs::Recorder;
use hexgrid::HexCell;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Why a single query of a batch could not be answered. Unlike
/// [`habit_core::HabitError`] this is `Clone` (several queries can share one failed
/// route) and carries no I/O causes — a per-query failure is data for
/// the caller, not a batch abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchFailure {
    /// No path exists between the snapped endpoint cells.
    NoPath {
        /// Snapped start cell id.
        from: u64,
        /// Snapped goal cell id.
        to: u64,
    },
    /// An endpoint could not be snapped onto the model (invalid
    /// coordinate or empty model); the message is the underlying error.
    Snap(String),
    /// An endpoint's tile is owned by a shard the serving fleet does
    /// not carry. Never produced by [`BatchImputer`] itself — minted by
    /// the fleet router in front of it when a query cannot be
    /// dispatched to any loaded shard (and no global fallback model is
    /// configured).
    ShardMiss {
        /// The owning shard id (`hash(tile) % shards`).
        shard: u32,
    },
}

impl fmt::Display for BatchFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchFailure::NoPath { from, to } => {
                write!(f, "no path between cells {from:#x} and {to:#x}")
            }
            BatchFailure::Snap(message) => write!(f, "snap failed: {message}"),
            BatchFailure::ShardMiss { shard } => {
                write!(
                    f,
                    "endpoint tile owned by shard {shard}, which is not loaded"
                )
            }
        }
    }
}

impl std::error::Error for BatchFailure {}

/// What one route search resolved to — cached either way, since "no
/// path" is as deterministic as a path.
enum RouteOutcome {
    Found(Route),
    NoPath,
}

/// Counters describing how a batch was served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Queries answered with an imputation.
    pub ok: usize,
    /// Queries that failed (snap or no-path).
    pub failed: usize,
    /// Distinct `(start cell, end cell)` pairs after snapping.
    pub unique_routes: usize,
    /// Distinct pairs served from the LRU route cache.
    pub cache_hits: usize,
    /// Distinct pairs that ran an A* search in this batch.
    pub routes_computed: usize,
}

/// A model wrapper that answers gap-query batches concurrently with
/// route dedup and a bounded LRU route cache.
///
/// The imputer *owns* its model (shared via `Arc`), so a long-lived
/// service can keep one imputer — and its warm route cache — alive
/// across requests while other components (e.g. a model-info endpoint)
/// hold the same model.
pub struct BatchImputer {
    model: Arc<HabitModel>,
    cache: Mutex<LruCache<(u64, u64), Arc<RouteOutcome>>>,
}

impl BatchImputer {
    /// Wraps `model` with a route cache of `cache_capacity` entries.
    pub fn new(model: Arc<HabitModel>, cache_capacity: usize) -> Self {
        Self {
            model,
            cache: Mutex::new(LruCache::new(cache_capacity)),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &HabitModel {
        &self.model
    }

    /// Number of routes currently cached.
    pub fn cached_routes(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// Answers a batch of queries on `pool`. Results are in query order;
    /// per-query failures do not abort the batch.
    pub fn impute_batch(
        &self,
        queries: &[GapQuery],
        pool: &ThreadPool,
    ) -> (Vec<Result<Imputation, BatchFailure>>, BatchStats) {
        self.impute_batch_traced(queries, pool, false, None, "impute_batch")
    }

    /// [`Self::impute_batch`] with the serving knobs exposed: when
    /// `provenance` is set each successful [`Imputation`] carries its
    /// per-point [`habit_core::PointProvenance`] records (the points
    /// themselves stay byte-identical); when `recorder` is set the
    /// batch's `route` stage (snap + dedup + A*) and `impute` stage
    /// (projection, timestamps, RDP) are recorded as spans under `op`.
    pub fn impute_batch_traced(
        &self,
        queries: &[GapQuery],
        pool: &ThreadPool,
        provenance: bool,
        recorder: Option<&Recorder>,
        op: &str,
    ) -> (Vec<Result<Imputation, BatchFailure>>, BatchStats) {
        let mut stats = BatchStats {
            queries: queries.len(),
            ..BatchStats::default()
        };
        if queries.is_empty() {
            return (Vec::new(), stats);
        }

        // -- 1. Snap every query's endpoints (parallel, query order).
        let route_span = recorder.map(|r| r.span("route", op));
        let model = self.model.as_ref();
        let snapped: Vec<Result<(HexCell, HexCell), BatchFailure>> =
            pool.map_items(queries, |gap| {
                let start = model
                    .snap(&gap.start.pos)
                    .map_err(|e| BatchFailure::Snap(e.to_string()))?;
                let end = model
                    .snap(&gap.end.pos)
                    .map_err(|e| BatchFailure::Snap(e.to_string()))?;
                Ok((start.0, end.0))
            });

        // -- 2. Dedup cell pairs and split into cached vs to-compute, in
        //       first-appearance order (deterministic).
        let mut resolved: FxHashMap<(u64, u64), Arc<RouteOutcome>> = FxHashMap::default();
        let mut to_compute: Vec<(u64, u64)> = Vec::new();
        let mut pending: aggdb::fxhash::FxHashSet<(u64, u64)> = Default::default();
        {
            let mut cache = self.cache.lock().expect("cache lock");
            for pair_result in &snapped {
                let Ok((start, end)) = pair_result else {
                    continue;
                };
                let key = (start.raw(), end.raw());
                if resolved.contains_key(&key) || pending.contains(&key) {
                    continue;
                }
                match cache.get(&key) {
                    Some(outcome) => {
                        stats.cache_hits += 1;
                        resolved.insert(key, Arc::clone(outcome));
                    }
                    None => {
                        pending.insert(key);
                        to_compute.push(key);
                    }
                }
            }
        }
        stats.unique_routes = resolved.len() + to_compute.len();
        stats.routes_computed = to_compute.len();

        // -- 3. Search the missing routes in parallel, then publish them
        //       to the cache in pair order.
        let computed: Vec<Arc<RouteOutcome>> = pool.map_items(&to_compute, |&(from, to)| {
            let start = HexCell::from_raw(from).expect("snapped cells are valid");
            let end = HexCell::from_raw(to).expect("snapped cells are valid");
            match model.route_between(start, end) {
                Ok(route) => Arc::new(RouteOutcome::Found(route)),
                Err(_) => Arc::new(RouteOutcome::NoPath),
            }
        });
        {
            let mut cache = self.cache.lock().expect("cache lock");
            for (key, outcome) in to_compute.iter().zip(&computed) {
                cache.insert(*key, Arc::clone(outcome));
                resolved.insert(*key, Arc::clone(outcome));
            }
        }

        drop(route_span);

        // -- 4. Per-query tail: projection, timestamps, simplification.
        let tail_span = recorder.map(|r| r.span("impute", op));
        let indices: Vec<usize> = (0..queries.len()).collect();
        let results: Vec<Result<Imputation, BatchFailure>> =
            pool.map_items(&indices, |&i| match &snapped[i] {
                Err(failure) => Err(failure.clone()),
                Ok((start, end)) => {
                    let key = (start.raw(), end.raw());
                    match resolved.get(&key).expect("every pair resolved").as_ref() {
                        RouteOutcome::NoPath => Err(BatchFailure::NoPath {
                            from: key.0,
                            to: key.1,
                        }),
                        RouteOutcome::Found(route) => Ok(if provenance {
                            model.imputation_from_route_with_provenance(
                                &queries[i],
                                route,
                                *start,
                                *end,
                            )
                        } else {
                            model.imputation_from_route(&queries[i], route, *start, *end)
                        }),
                    }
                }
            });
        drop(tail_span);

        stats.ok = results.iter().filter(|r| r.is_ok()).count();
        stats.failed = stats.queries - stats.ok;
        (results, stats)
    }

    /// Answers several independently submitted query groups
    /// ("submissions") as **one** coalesced batch: the groups are
    /// flattened in submission order, run through a single
    /// [`Self::impute_batch_traced`] pass (one snap dispatch, one
    /// dedup-and-cache pass, one A* wave across *all* submissions), and
    /// the results are scattered back — entry `i` of the return value
    /// holds exactly submission `i`'s results, in its own query order.
    ///
    /// Per-query answers are byte-identical to running each submission
    /// through [`Self::impute_batch_traced`] on its own: dedup and the
    /// route cache never change an answer (a cached route is the route
    /// the search would recompute), so how queries are grouped is
    /// invisible to the results.
    ///
    /// Per-submission stats carry that submission's exact `queries` /
    /// `ok` / `failed`, while the route-level counters
    /// (`unique_routes`, `cache_hits`, `routes_computed`) describe the
    /// shared coalesced pass — the work actually done — and are
    /// therefore the same on every entry. A single-submission call
    /// degenerates to exactly the direct batch, stats included.
    pub fn impute_submissions(
        &self,
        submissions: &[&[GapQuery]],
        pool: &ThreadPool,
        provenance: bool,
        recorder: Option<&Recorder>,
        op: &str,
    ) -> Vec<(Vec<Result<Imputation, BatchFailure>>, BatchStats)> {
        let flat: Vec<GapQuery> = submissions
            .iter()
            .flat_map(|group| group.iter().copied())
            .collect();
        let (results, shared) = self.impute_batch_traced(&flat, pool, provenance, recorder, op);
        let mut remaining = results.into_iter();
        submissions
            .iter()
            .map(|group| {
                let part: Vec<Result<Imputation, BatchFailure>> =
                    remaining.by_ref().take(group.len()).collect();
                let ok = part.iter().filter(|r| r.is_ok()).count();
                let stats = BatchStats {
                    queries: group.len(),
                    ok,
                    failed: group.len() - ok,
                    unique_routes: shared.unique_routes,
                    cache_hits: shared.cache_hits,
                    routes_computed: shared.routes_computed,
                };
                (part, stats)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ais::{trips_to_table, AisPoint, Trip};
    use habit_core::HabitConfig;

    fn lane_model() -> Arc<HabitModel> {
        let trips: Vec<Trip> = (0..4)
            .map(|k| Trip {
                trip_id: k + 1,
                mmsi: 100 + k,
                points: (0..150)
                    .map(|i| {
                        AisPoint::new(
                            100 + k,
                            i as i64 * 60,
                            10.0 + i as f64 * 0.004,
                            56.0,
                            12.0,
                            90.0,
                        )
                    })
                    .collect(),
            })
            .collect();
        Arc::new(HabitModel::fit(&trips_to_table(&trips), HabitConfig::default()).unwrap())
    }

    fn lane_queries(n: usize) -> Vec<GapQuery> {
        // Three distinct routes cycled n times: heavy route reuse, as in
        // real serving traffic.
        (0..n)
            .map(|i| {
                let k = i % 3;
                GapQuery::new(
                    10.05 + k as f64 * 0.01,
                    56.0,
                    0,
                    10.4 + k as f64 * 0.05,
                    56.0,
                    3600,
                )
            })
            .collect()
    }

    #[test]
    fn batch_matches_single_query_path() {
        let model = lane_model();
        let imputer = BatchImputer::new(Arc::clone(&model), 64);
        let pool = ThreadPool::new(4);
        let queries = lane_queries(12);
        let (results, stats) = imputer.impute_batch(&queries, &pool);
        assert_eq!(results.len(), queries.len());
        assert_eq!(stats.ok, queries.len());
        assert_eq!(stats.unique_routes, 3);
        assert_eq!(stats.routes_computed, 3);
        for (query, result) in queries.iter().zip(&results) {
            let batch = result.as_ref().expect("imputed");
            let single = model.impute(query).expect("single");
            assert_eq!(batch.cells, single.cells);
            assert_eq!(batch.points.len(), single.points.len());
            assert_eq!(batch.cost, single.cost);
            for (a, b) in batch.points.iter().zip(&single.points) {
                assert_eq!(a.t, b.t);
                assert_eq!(a.pos.lon, b.pos.lon);
                assert_eq!(a.pos.lat, b.pos.lat);
            }
        }
    }

    #[test]
    fn cache_serves_repeat_batches() {
        let model = lane_model();
        let imputer = BatchImputer::new(Arc::clone(&model), 64);
        let pool = ThreadPool::new(2);
        let queries = lane_queries(9);
        let (_, first) = imputer.impute_batch(&queries, &pool);
        assert_eq!(first.cache_hits, 0);
        assert_eq!(first.routes_computed, 3);
        let (_, second) = imputer.impute_batch(&queries, &pool);
        assert_eq!(second.cache_hits, 3, "{second:?}");
        assert_eq!(second.routes_computed, 0);
        assert_eq!(imputer.cached_routes(), 3);
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let model = lane_model();
        let queries = lane_queries(20);
        let reference: Vec<_> = {
            let imputer = BatchImputer::new(Arc::clone(&model), 8);
            let pool = ThreadPool::new(1);
            imputer.impute_batch(&queries, &pool).0
        };
        for threads in [2usize, 4] {
            let imputer = BatchImputer::new(Arc::clone(&model), 8);
            let pool = ThreadPool::new(threads);
            let (results, _) = imputer.impute_batch(&queries, &pool);
            for (i, (a, b)) in reference.iter().zip(&results).enumerate() {
                match (a, b) {
                    (Ok(x), Ok(y)) => {
                        assert_eq!(x.cells, y.cells, "threads={threads} query={i}");
                        assert_eq!(x.cost, y.cost);
                    }
                    (Err(x), Err(y)) => assert_eq!(x, y),
                    _ => panic!("threads={threads} query={i}: ok/err mismatch"),
                }
            }
        }
    }

    #[test]
    fn failures_are_per_query_not_batch_wide() {
        let model = lane_model();
        let imputer = BatchImputer::new(Arc::clone(&model), 8);
        let pool = ThreadPool::new(2);
        let mut queries = lane_queries(3);
        // An endpoint with an invalid latitude cannot snap.
        queries.push(GapQuery::new(10.1, 95.0, 0, 10.3, 56.0, 3600));
        let (results, stats) = imputer.impute_batch(&queries, &pool);
        assert_eq!(stats.ok, 3);
        assert_eq!(stats.failed, 1);
        assert!(matches!(results[3], Err(BatchFailure::Snap(_))));
        assert!(results[..3].iter().all(Result::is_ok));
    }

    #[test]
    fn traced_batch_records_spans_and_carries_provenance() {
        let model = lane_model();
        let imputer = BatchImputer::new(Arc::clone(&model), 8);
        let pool = ThreadPool::new(2);
        let queries = lane_queries(6);
        let recorder = Recorder::new(64);
        let (plain, _) = imputer.impute_batch(&queries, &pool);
        let (traced, _) =
            imputer.impute_batch_traced(&queries, &pool, true, Some(&recorder), "impute_batch");

        // Both stages show up, labeled with the op.
        let spans = recorder.recent();
        assert_eq!(spans.len(), 2, "{spans:?}");
        assert_eq!(spans[0].name, "route");
        assert_eq!(spans[1].name, "impute");
        assert!(spans.iter().all(|s| s.op == "impute_batch" && s.ok));

        // Provenance rides along without disturbing the points.
        for (a, b) in plain.iter().zip(&traced) {
            let (a, b) = (a.as_ref().expect("ok"), b.as_ref().expect("ok"));
            assert!(a.provenance.is_none());
            let prov = b.provenance.as_ref().expect("requested provenance");
            assert_eq!(prov.len(), b.points.len());
            assert_eq!(a.points.len(), b.points.len());
            for (x, y) in a.points.iter().zip(&b.points) {
                assert_eq!(x.t, y.t);
                assert_eq!(x.pos.lon.to_bits(), y.pos.lon.to_bits());
                assert_eq!(x.pos.lat.to_bits(), y.pos.lat.to_bits());
            }
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let model = lane_model();
        let imputer = BatchImputer::new(Arc::clone(&model), 8);
        let pool = ThreadPool::new(2);
        let (results, stats) = imputer.impute_batch(&[], &pool);
        assert!(results.is_empty());
        assert_eq!(stats, BatchStats::default());
    }

    /// Asserts two result vectors are byte-identical: same ok/err split,
    /// same cells/cost, and bit-identical point coordinates/timestamps.
    fn assert_results_identical(
        a: &[Result<Imputation, BatchFailure>],
        b: &[Result<Imputation, BatchFailure>],
    ) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            match (x, y) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.cells, y.cells, "query {i}");
                    assert_eq!(x.cost, y.cost, "query {i}");
                    assert_eq!(x.points.len(), y.points.len(), "query {i}");
                    for (p, q) in x.points.iter().zip(&y.points) {
                        assert_eq!(p.t, q.t, "query {i}");
                        assert_eq!(p.pos.lon.to_bits(), q.pos.lon.to_bits(), "query {i}");
                        assert_eq!(p.pos.lat.to_bits(), q.pos.lat.to_bits(), "query {i}");
                    }
                }
                (Err(x), Err(y)) => assert_eq!(x, y, "query {i}"),
                _ => panic!("query {i}: ok/err mismatch"),
            }
        }
    }

    #[test]
    fn coalesced_submissions_match_their_direct_batches() {
        let model = lane_model();
        let pool = ThreadPool::new(2);
        // Three submissions with overlapping routes but distinct
        // durations, plus one that cannot snap: results and failures
        // must land with their own submission.
        let groups: Vec<Vec<GapQuery>> = vec![
            lane_queries(5),
            lane_queries(3)
                .into_iter()
                .map(|mut q| {
                    q.end.t += 600;
                    q
                })
                .collect(),
            vec![GapQuery::new(10.1, 95.0, 0, 10.3, 56.0, 3600)],
        ];
        let slices: Vec<&[GapQuery]> = groups.iter().map(Vec::as_slice).collect();
        let coalesced = BatchImputer::new(Arc::clone(&model), 64)
            .impute_submissions(&slices, &pool, false, None, "impute");
        assert_eq!(coalesced.len(), groups.len());
        for (group, (results, stats)) in groups.iter().zip(&coalesced) {
            // Direct path: this submission alone, on a cold imputer.
            let direct = BatchImputer::new(Arc::clone(&model), 64);
            let (expected, direct_stats) = direct.impute_batch(group, &pool);
            assert_results_identical(results, &expected);
            assert_eq!(stats.queries, direct_stats.queries);
            assert_eq!(stats.ok, direct_stats.ok);
            assert_eq!(stats.failed, direct_stats.failed);
        }
        // The route-level counters describe the one shared pass: the
        // three lane routes searched once across all submissions.
        assert_eq!(coalesced[0].1.unique_routes, 3);
        assert_eq!(coalesced[0].1.routes_computed, 3);
        assert!(coalesced.iter().all(|(_, s)| s.unique_routes == 3));
    }

    #[test]
    fn single_submission_degenerates_to_the_direct_batch() {
        let model = lane_model();
        let pool = ThreadPool::new(2);
        let queries = lane_queries(7);
        let coalesced = BatchImputer::new(Arc::clone(&model), 64).impute_submissions(
            &[&queries],
            &pool,
            false,
            None,
            "impute_batch",
        );
        let (expected, expected_stats) =
            BatchImputer::new(Arc::clone(&model), 64).impute_batch(&queries, &pool);
        assert_eq!(coalesced.len(), 1);
        assert_results_identical(&coalesced[0].0, &expected);
        // Stats included: the degenerate case is indistinguishable from
        // never having coalesced at all.
        assert_eq!(coalesced[0].1, expected_stats);
    }

    mod scatter_gather {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            /// Scatter/gather never misroutes: for a random partition of
            /// a query stream into submissions — every query carrying a
            /// distinct duration, so any cross-submission or cross-index
            /// mixup changes the answer — each submission's coalesced
            /// results are byte-identical to running that submission
            /// alone on a cold imputer.
            #[test]
            fn coalescing_is_invisible_to_every_submission(
                sizes in proptest::collection::vec(0usize..6, 1..8),
                threads in 1usize..4,
            ) {
                let model = lane_model();
                let pool = ThreadPool::new(threads);
                let mut next = 0usize;
                let groups: Vec<Vec<GapQuery>> = sizes
                    .iter()
                    .map(|&n| {
                        (0..n)
                            .map(|_| {
                                let i = next;
                                next += 1;
                                let k = i % 3;
                                // Unique duration per query: misrouting
                                // would shift every imputed timestamp.
                                GapQuery::new(
                                    10.05 + k as f64 * 0.01,
                                    56.0,
                                    0,
                                    10.4 + k as f64 * 0.05,
                                    56.0,
                                    3600 + i as i64 * 60,
                                )
                            })
                            .collect()
                    })
                    .collect();
                let slices: Vec<&[GapQuery]> = groups.iter().map(Vec::as_slice).collect();
                let coalesced = BatchImputer::new(Arc::clone(&model), 64)
                    .impute_submissions(&slices, &pool, false, None, "impute");
                prop_assert_eq!(coalesced.len(), groups.len());
                for (group, (results, stats)) in groups.iter().zip(&coalesced) {
                    let (expected, direct) = BatchImputer::new(Arc::clone(&model), 64)
                        .impute_batch(group, &pool);
                    assert_results_identical(results, &expected);
                    prop_assert_eq!(stats.queries, direct.queries);
                    prop_assert_eq!(stats.ok, direct.ok);
                    prop_assert_eq!(stats.failed, direct.failed);
                }
            }
        }
    }
}
