//! # habit-engine — the parallel serving subsystem
//!
//! `habit-core` fits one model on one core and answers one gap at a
//! time. This crate is the scale-out layer the ROADMAP's north star asks
//! for, in three pieces:
//!
//! * [`pool::ThreadPool`] — a hand-rolled fixed pool (the offline
//!   workspace has no `rayon`) with a scoped, order-preserving
//!   [`ThreadPool::map_chunks`] primitive;
//! * [`shard::fit_sharded`] — the fit as explicit `accumulate → merge
//!   → finalize` stages over `habit_core::FitState`: the two group-bys
//!   partitioned by spatial tile ([`hexgrid::TilePartitioner`]) and
//!   executed per shard on the pool, merged through `aggdb`'s mergeable
//!   partial aggregates in deterministic shard order. The resulting
//!   model — and its embedded, persistable fit state — serializes
//!   **byte-identically** to the sequential `HabitModel::fit` at every
//!   shard and thread count (property-tested);
//! * [`refit::refit_state`] / [`refit::refit_model`] — incremental
//!   refit: a delta of new trips accumulates through the same sharded
//!   pipeline and merges into a saved state, byte-identical to a
//!   from-scratch fit over `history ∪ delta` (property-tested);
//! * [`batch::BatchImputer`] — batched imputation: snap all queries,
//!   A*-search each *distinct* cell pair once, reuse routes across
//!   batches through a bounded LRU ([`lru::LruCache`]), and run the
//!   per-query tail on the pool. Per-query failures are data
//!   ([`batch::BatchFailure`]), not batch aborts.
//!
//! The `habit batch` CLI subcommand and the `throughput` experiment of
//! `habit-bench` are thin clients of this crate.
//!
//! ```
//! use habit_engine::{BatchImputer, ThreadPool, fit_sharded};
//! use habit_core::{GapQuery, HabitConfig};
//! use aggdb::{Column, Table};
//!
//! // A toy trip table: one vessel sailing east (columns as in ais::COLS).
//! let n = 200usize;
//! let table = Table::from_columns(vec![
//!     ("trip_id", Column::from_u64(vec![1; n])),
//!     ("vessel_id", Column::from_u64(vec![9; n])),
//!     ("ts", Column::from_i64((0..n as i64).map(|i| i * 60).collect())),
//!     ("lon", Column::from_f64((0..n).map(|i| 10.0 + i as f64 * 0.002).collect())),
//!     ("lat", Column::from_f64(vec![56.0; n])),
//!     ("sog", Column::from_f64(vec![12.0; n])),
//!     ("cog", Column::from_f64(vec![90.0; n])),
//! ]).unwrap();
//!
//! let pool = ThreadPool::new(4);
//! let model = std::sync::Arc::new(fit_sharded(&table, HabitConfig::default(), 4, &pool).unwrap());
//! let imputer = BatchImputer::new(model, 1024);
//! let queries = vec![GapQuery::new(10.05, 56.0, 0, 10.3, 56.0, 3600); 16];
//! let (results, stats) = imputer.impute_batch(&queries, &pool);
//! assert_eq!(stats.ok, 16);
//! assert_eq!(stats.unique_routes, 1, "identical queries share one search");
//! assert!(results.iter().all(Result::is_ok));
//! ```
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod batch;
pub mod lru;
pub mod pool;
pub mod refit;
pub mod shard;

#[cfg(test)]
mod proptests;

pub use batch::{BatchFailure, BatchImputer, BatchStats};
pub use lru::LruCache;
pub use pool::ThreadPool;
pub use refit::{refit_model, refit_model_traced, refit_state, refit_state_traced, RefitOutcome};
pub use shard::{
    accumulate_per_shard, accumulate_sharded, accumulate_sharded_traced, fit_sharded,
    fit_sharded_traced, sharded_transition_graph,
};
