//! A small hand-rolled thread pool with a scoped `map_chunks` primitive.
//!
//! The offline workspace has no `rayon`; this module provides the one
//! parallel shape the engine needs — *split a slice into chunks, run a
//! pure function over every chunk on a fixed set of worker threads, and
//! collect the results in chunk order* — in ~150 lines of std.
//!
//! Results are returned **in chunk order regardless of completion
//! order**, so every caller is deterministic by construction as long as
//! the mapped function is. Worker panics are caught, the scope still
//! joins, and the panic is re-raised on the calling thread.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads fed from one shared queue.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads.max(1)` workers.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx: Arc<Mutex<Receiver<Job>>> = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("habit-engine-{i}"))
                    .spawn(move || loop {
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // channel closed: pool dropped
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits one fire-and-forget job to the pool.
    ///
    /// Unlike [`map_chunks`](Self::map_chunks) this does not block: the
    /// job runs whenever a worker frees up, and dropping the pool joins
    /// it (the queue is drained before the workers exit). This is the
    /// shape a blocking accept loop needs — hand each connection to a
    /// worker and keep accepting.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.tx
            .as_ref()
            .expect("pool sender alive")
            .send(Box::new(job))
            .expect("pool workers alive");
    }

    /// Splits `items` into chunks of `chunk_size` and maps `f(chunk_index,
    /// chunk)` over them on the pool, blocking until every chunk is done.
    /// Results come back in chunk order. The calling thread only waits —
    /// with one worker this still makes progress, just without overlap.
    pub fn map_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let chunk_size = chunk_size.max(1);
        let n_chunks = items.len().div_ceil(chunk_size);
        let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
        let latch = Latch::new(n_chunks);
        let panicked = AtomicBool::new(false);

        for (c, slot) in slots.iter().enumerate() {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(items.len());
            let chunk = &items[lo..hi];
            let latch_ref = &latch;
            let panicked_ref = &panicked;
            let f_ref = &f;
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                // Count down even if `f` panics, so `wait` always returns.
                let _done = CountDownOnDrop(latch_ref);
                match catch_unwind(AssertUnwindSafe(|| f_ref(c, chunk))) {
                    Ok(r) => *slot.lock().expect("slot lock") = Some(r),
                    Err(_) => panicked_ref.store(true, Ordering::SeqCst),
                }
            });
            // SAFETY: the job borrows `items`, `slots`, `latch`, `panicked`
            // and `f` from this stack frame. `latch.wait()` below blocks
            // until every submitted job has finished running (the count-down
            // guard fires even on panic), so no borrow outlives this frame.
            let job: Job = unsafe { std::mem::transmute(job) };
            self.tx
                .as_ref()
                .expect("pool sender alive")
                .send(job)
                .expect("pool workers alive");
        }
        latch.wait();

        if panicked.load(Ordering::SeqCst) {
            panic!("habit-engine: a pooled task panicked");
        }
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot lock")
                    .expect("every chunk produced a result")
            })
            .collect()
    }

    /// Maps `f` over every item, chunking so each worker gets a few
    /// chunks (load-balancing against uneven item costs). Results are in
    /// item order.
    pub fn map_items<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let chunk = items.len().div_ceil(self.threads() * 4).max(1);
        self.map_chunks(items, chunk, |_, slice| {
            slice.iter().map(&f).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue; workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A count-down latch: `wait` blocks until `count_down` ran `n` times.
struct Latch {
    remaining: Mutex<usize>,
    all_done: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Self {
            remaining: Mutex::new(n),
            all_done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock");
        *remaining -= 1;
        if *remaining == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock");
        while *remaining > 0 {
            remaining = self.all_done.wait(remaining).expect("latch wait");
        }
    }
}

struct CountDownOnDrop<'a>(&'a Latch);

impl Drop for CountDownOnDrop<'_> {
    fn drop(&mut self) {
        self.0.count_down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_preserves_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..103).collect();
        let out = pool.map_chunks(&items, 10, |idx, chunk| (idx, chunk.iter().sum::<u64>()));
        assert_eq!(out.len(), 11);
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
        let total: u64 = out.iter().map(|(_, s)| s).sum();
        assert_eq!(total, items.iter().sum::<u64>());
    }

    #[test]
    fn map_items_matches_sequential_map() {
        for threads in [1usize, 2, 4] {
            let pool = ThreadPool::new(threads);
            let items: Vec<i64> = (0..57).collect();
            let out = pool.map_items(&items, |x| x * x);
            let expected: Vec<i64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_and_oversized_chunks() {
        let pool = ThreadPool::new(2);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.map_chunks(&empty, 8, |_, c| c.len()).is_empty());
        let one = [42u8];
        assert_eq!(
            pool.map_chunks(&one, 1000, |_, c| c.to_vec()),
            vec![vec![42]]
        );
        assert_eq!(ThreadPool::new(0).threads(), 1, "clamped to one worker");
    }

    #[test]
    fn pool_survives_many_rounds() {
        let pool = ThreadPool::new(3);
        for round in 0..20 {
            let items: Vec<usize> = (0..round * 3 + 1).collect();
            let out = pool.map_items(&items, |x| x + round);
            assert_eq!(out.len(), items.len());
        }
    }

    #[test]
    fn execute_runs_detached_jobs_and_drop_drains_them() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(2);
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers after the queue drains
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn worker_panic_propagates_but_pool_stays_usable() {
        let pool = ThreadPool::new(2);
        let items = [1u32, 2, 3];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_items(&items, |x| {
                if *x == 2 {
                    panic!("boom");
                }
                *x
            })
        }));
        assert!(result.is_err(), "panic must surface on the caller");
        // The pool joined the failed scope; later rounds still work.
        assert_eq!(pool.map_items(&items, |x| x * 10), vec![10, 20, 30]);
    }
}
