//! Incremental refit: merge a delta of **new trips** into a saved
//! [`FitState`] instead of re-scanning months of history.
//!
//! `refit_state(state, delta)` is, by construction, byte-identical to a
//! from-scratch fit over `history ∪ delta` (the engine's property tests
//! assert it at every shard/thread count): the delta accumulates
//! through the exact same sharded partial-aggregate pipeline as a fit
//! ([`crate::shard::accumulate_sharded`]) and merges into the state,
//! which re-canonicalizes. The only contract is the fit-state one —
//! the delta must hold *whole* trips whose trip ids (and vessel ids)
//! are disjoint from the history's, i.e. "a day's new trips".
//!
//! Cost model: a refit accumulates only the delta's rows and re-pays
//! the merge + finalize (proportional to the number of *distinct*
//! cells and transitions, not to history rows) — the `incremental`
//! bench experiment reports the resulting refit-vs-full-fit wall-clock
//! gap.

use crate::pool::ThreadPool;
use crate::shard::accumulate_sharded_traced;
use aggdb::Table;
use habit_core::{FitState, HabitError, HabitModel};
use habit_obs::Recorder;

/// What a refit absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefitOutcome {
    /// Distinct trips merged in from the delta.
    pub trips_added: u64,
    /// AIS reports merged in from the delta.
    pub reports_added: u64,
}

/// Accumulates `delta` (sharded, on `pool`) under the state's own
/// configuration and merges it into `state`. An empty delta — zero
/// rows — is a no-op; a delta whose trips are all drift-filtered still
/// counts into provenance (exactly as a from-scratch fit over the
/// union would count it).
pub fn refit_state(
    state: &mut FitState,
    delta: &Table,
    shards: usize,
    pool: &ThreadPool,
) -> Result<RefitOutcome, HabitError> {
    refit_state_traced(state, delta, shards, pool, None, "refit")
}

/// [`refit_state`] with phase spans: the delta accumulation records the
/// `fit.*` phases and the state merge records `refit.merge`, all under
/// `op`. The merged state is unaffected.
pub fn refit_state_traced(
    state: &mut FitState,
    delta: &Table,
    shards: usize,
    pool: &ThreadPool,
    recorder: Option<&Recorder>,
    op: &str,
) -> Result<RefitOutcome, HabitError> {
    if delta.num_rows() == 0 {
        return Ok(RefitOutcome::default());
    }
    let delta_state =
        accumulate_sharded_traced(delta, *state.config(), shards, pool, recorder, op)?;
    let outcome = RefitOutcome {
        trips_added: delta_state.provenance().trips,
        reports_added: delta_state.provenance().reports,
    };
    let merge_span = recorder.map(|r| r.span("refit.merge", op));
    let merged = state.merge(delta_state);
    if let (Some(mut s), Err(_)) = (merge_span, &merged) {
        s.fail();
    }
    merged?;
    Ok(outcome)
}

/// Refits a whole model: merges `delta` into the model's embedded
/// state and re-finalizes the graph. Fails with
/// [`HabitError::StateVersion`] (`found: 0`) when the model carries no
/// state — v1 blobs serve but cannot be refitted.
pub fn refit_model(
    model: &HabitModel,
    delta: &Table,
    shards: usize,
    pool: &ThreadPool,
) -> Result<(HabitModel, RefitOutcome), HabitError> {
    refit_model_traced(model, delta, shards, pool, None, "refit")
}

/// [`refit_model`] with phase spans under `op`: the state refit's
/// phases plus a final `fit.finalize` for the graph rebuild.
pub fn refit_model_traced(
    model: &HabitModel,
    delta: &Table,
    shards: usize,
    pool: &ThreadPool,
    recorder: Option<&Recorder>,
    op: &str,
) -> Result<(HabitModel, RefitOutcome), HabitError> {
    let mut state = model.state().cloned().ok_or(HabitError::StateVersion {
        found: 0,
        supported: habit_core::FITSTATE_VERSION,
    })?;
    let outcome = refit_state_traced(&mut state, delta, shards, pool, recorder, op)?;
    let span = recorder.map(|r| r.span("fit.finalize", op));
    let finalized = HabitModel::from_fit_state(state);
    if let (Some(mut s), Err(_)) = (span, &finalized) {
        s.fail();
    }
    Ok((finalized?, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::fit_sharded;
    use ais::{trips_to_table, AisPoint, Trip};
    use habit_core::HabitConfig;

    fn lane(trip_id: u64, mmsi: u64, lat: f64, n: usize) -> Trip {
        Trip {
            trip_id,
            mmsi,
            points: (0..n)
                .map(|i| {
                    AisPoint::new(
                        mmsi,
                        i as i64 * 60,
                        10.0 + i as f64 * 0.004,
                        lat,
                        12.0,
                        90.0,
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn refit_equals_full_fit_over_union() {
        let history: Vec<Trip> = (0..3).map(|k| lane(k + 1, 100 + k, 56.0, 120)).collect();
        let delta: Vec<Trip> = (0..2).map(|k| lane(k + 4, 200 + k, 56.015, 100)).collect();
        let union: Vec<Trip> = history.iter().chain(&delta).cloned().collect();
        let config = HabitConfig::default();
        let pool = ThreadPool::new(2);

        let incremental = {
            let model = fit_sharded(&trips_to_table(&history), config, 2, &pool).unwrap();
            let (refitted, outcome) =
                refit_model(&model, &trips_to_table(&delta), 4, &pool).unwrap();
            assert_eq!(outcome.trips_added, 2);
            assert_eq!(outcome.reports_added, 200);
            refitted
        };
        let full = fit_sharded(&trips_to_table(&union), config, 2, &pool).unwrap();
        assert_eq!(
            incremental.to_bytes_full(),
            full.to_bytes_full(),
            "refit must be byte-identical to the from-scratch fit, state included"
        );
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let history = trips_to_table(&[lane(1, 100, 56.0, 120)]);
        let pool = ThreadPool::new(1);
        let model = fit_sharded(&history, HabitConfig::default(), 1, &pool).unwrap();
        let empty = history.take(&[]);
        let (refitted, outcome) = refit_model(&model, &empty, 1, &pool).unwrap();
        assert_eq!(outcome, RefitOutcome::default());
        assert_eq!(refitted.to_bytes_full(), model.to_bytes_full());
    }

    #[test]
    fn stateless_models_cannot_refit() {
        let history = trips_to_table(&[lane(1, 100, 56.0, 120)]);
        let pool = ThreadPool::new(1);
        let model = fit_sharded(&history, HabitConfig::default(), 1, &pool)
            .unwrap()
            .without_state();
        let err = match refit_model(&model, &history, 1, &pool) {
            Err(e) => e,
            Ok(_) => panic!("stateless refit must fail"),
        };
        assert!(
            matches!(err, HabitError::StateVersion { found: 0, .. }),
            "{err}"
        );
    }
}
