//! The Prometheus-style plaintext renderer for metric snapshots.
//!
//! One sample per line — `name{label="v",…} value` (no braces when a
//! sample has no labels) — rendered from a [`Snapshot`], whose sample
//! order is already pinned, so the whole payload is deterministic for
//! a given counter state and golden-testable byte for byte. Values
//! render through Rust's shortest-round-trip `f64` `Display`, which
//! prints integral values with no fraction (`42`, not `42.0`).

use crate::metrics::Snapshot;

/// Renders a snapshot as the text exposition payload.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for sample in &snapshot.samples {
        out.push_str(&sample.name);
        if !sample.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in sample.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(k);
                out.push_str("=\"");
                push_escaped(&mut out, v);
                out.push('"');
            }
            out.push('}');
        }
        out.push(' ');
        push_value(&mut out, sample.value);
        out.push('\n');
    }
    out
}

/// Label values escape backslash, quote, and newline (the exposition
/// format's required set).
fn push_escaped(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
}

/// Shortest-round-trip rendering; integral values have no fraction.
fn push_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
    } else {
        out.push_str(&format!("{v}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Registry, LATENCY_BUCKETS_US};

    #[test]
    fn renders_labels_values_and_escapes() {
        let reg = Registry::new();
        reg.counter("habit_requests_total", &[("op", "impute")])
            .add(3);
        reg.counter("habit_requests_total", &[("op", "health")])
            .inc();
        reg.gauge("habit_connections_open", &[]).set(2);
        reg.counter("weird", &[("path", "a\"b\\c\nd")]).inc();
        let text = render(&reg.snapshot());
        assert!(text.contains("habit_requests_total{op=\"health\"} 1\n"));
        assert!(text.contains("habit_requests_total{op=\"impute\"} 3\n"));
        assert!(text.contains("habit_connections_open 2\n"));
        assert!(text.contains("weird{path=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    /// The golden byte-layout test: a seeded, synthetic request
    /// sequence injected into a registry must render to exactly these
    /// bytes — pinning family order, bucket expansion, label
    /// rendering, and value formatting all at once.
    #[test]
    fn golden_text_layout_for_a_seeded_sequence() {
        let reg = Registry::new();
        // The scripted sequence: 2 imputes (ok, 180 µs and 420 µs),
        // 1 health (ok, 40 µs), 1 failed impute (bad_request, 9 µs).
        let lat = |op| reg.histogram("habit_request_latency_us", &[("op", op)], &[100, 500]);
        for (op, us, ok) in [
            ("impute", 180u64, true),
            ("health", 40, true),
            ("impute", 420, true),
            ("impute", 9, false),
        ] {
            reg.counter("habit_requests_total", &[("op", op)]).inc();
            lat(op).observe(us);
            if !ok {
                reg.counter("habit_errors_total", &[("code", "bad_request"), ("op", op)])
                    .inc();
            }
        }
        reg.counter("habit_route_cache_hits_total", &[]).add(5);
        reg.counter("habit_route_cache_misses_total", &[]).add(2);
        reg.gauge("habit_connections_open", &[]).set(1);

        let expected = "\
habit_errors_total{code=\"bad_request\",op=\"impute\"} 1
habit_requests_total{op=\"health\"} 1
habit_requests_total{op=\"impute\"} 3
habit_route_cache_hits_total 5
habit_route_cache_misses_total 2
habit_connections_open 1
habit_request_latency_us_bucket{op=\"health\",le=\"100\"} 1
habit_request_latency_us_bucket{op=\"health\",le=\"500\"} 1
habit_request_latency_us_bucket{op=\"health\",le=\"+Inf\"} 1
habit_request_latency_us_count{op=\"health\"} 1
habit_request_latency_us_sum{op=\"health\"} 40
habit_request_latency_us{op=\"health\",quantile=\"0.5\"} 100
habit_request_latency_us{op=\"health\",quantile=\"0.95\"} 100
habit_request_latency_us{op=\"health\",quantile=\"0.99\"} 100
habit_request_latency_us_bucket{op=\"impute\",le=\"100\"} 1
habit_request_latency_us_bucket{op=\"impute\",le=\"500\"} 3
habit_request_latency_us_bucket{op=\"impute\",le=\"+Inf\"} 3
habit_request_latency_us_count{op=\"impute\"} 3
habit_request_latency_us_sum{op=\"impute\"} 609
habit_request_latency_us{op=\"impute\",quantile=\"0.5\"} 300
habit_request_latency_us{op=\"impute\",quantile=\"0.95\"} 500
habit_request_latency_us{op=\"impute\",quantile=\"0.99\"} 500
";
        assert_eq!(render(&reg.snapshot()), expected);
        // Byte-stable across renders.
        assert_eq!(render(&reg.snapshot()), render(&reg.snapshot()));
    }

    #[test]
    fn non_finite_values_render_in_exposition_form() {
        use crate::metrics::{Sample, Snapshot};
        let snap = Snapshot {
            samples: vec![
                Sample {
                    name: "a".into(),
                    labels: vec![],
                    value: f64::NAN,
                },
                Sample {
                    name: "b".into(),
                    labels: vec![],
                    value: f64::INFINITY,
                },
            ],
        };
        assert_eq!(render(&snap), "a NaN\nb +Inf\n");
    }

    #[test]
    fn default_latency_buckets_are_increasing() {
        assert!(LATENCY_BUCKETS_US.windows(2).all(|w| w[0] < w[1]));
    }
}
