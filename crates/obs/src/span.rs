//! Monotonic-clock spans with a bounded ring buffer.
//!
//! A [`Recorder`] owns one [`std::time::Instant`] epoch; every span
//! start and duration is expressed in **ticks** — microseconds since
//! that epoch — so serialized records never touch `SystemTime` and fit
//! the wire's exact-integer domain for centuries of uptime. Spans are
//! recorded on drop ([`SpanGuard`]) or injected directly
//! ([`Recorder::record`], which deterministic tests use), and the ring
//! keeps the most recent `capacity` records.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// One finished span: a named stage of one operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (`"parse"`, `"route"`, `"impute"`, `"render"`,
    /// `"fit.accumulate"`, …). Static so hot-path spans never allocate
    /// for the name.
    pub name: &'static str,
    /// Operation label — usually the wire op token (`"impute"`,
    /// `"refit"`, …) or `"unknown"` for unparseable requests.
    pub op: String,
    /// Start, in µs ticks since the recorder's epoch.
    pub start_ticks: u64,
    /// Duration in µs ticks.
    pub duration_ticks: u64,
    /// Whether the stage completed without error.
    pub ok: bool,
}

/// Thread-safe span sink: a monotonic epoch plus a bounded ring of the
/// most recent [`SpanRecord`]s.
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
}

impl Recorder {
    /// A recorder keeping at most `capacity` records (oldest evicted
    /// first). Capacity 0 keeps nothing but still hands out ticks.
    pub fn new(capacity: usize) -> Self {
        Recorder {
            epoch: Instant::now(),
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Microseconds elapsed since this recorder was created. Monotonic;
    /// saturates at `u64::MAX` µs (≈ 585 000 years).
    pub fn ticks(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Starts a span; the guard records on [`SpanGuard::finish`] or
    /// drop.
    pub fn span(&self, name: &'static str, op: impl Into<String>) -> SpanGuard<'_> {
        SpanGuard {
            recorder: self,
            name,
            op: op.into(),
            start_ticks: self.ticks(),
            ok: true,
            armed: true,
        }
    }

    /// Appends a record directly — the injection seam deterministic
    /// tests use, and what [`SpanGuard`] calls.
    pub fn record(&self, record: SpanRecord) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Snapshot of the ring, oldest first.
    pub fn recent(&self) -> Vec<SpanRecord> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().cloned().collect()
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// An in-flight span; records itself into the recorder when finished
/// or dropped — so early returns and panics still leave a record.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    name: &'static str,
    op: String,
    start_ticks: u64,
    ok: bool,
    armed: bool,
}

impl SpanGuard<'_> {
    /// Marks the span as failed; it still records on finish/drop.
    pub fn fail(&mut self) {
        self.ok = false;
    }

    /// Ends the span now and returns its duration in µs ticks.
    pub fn finish(mut self) -> u64 {
        self.armed = false;
        let duration = self.recorder.ticks().saturating_sub(self.start_ticks);
        self.recorder.record(SpanRecord {
            name: self.name,
            op: std::mem::take(&mut self.op),
            start_ticks: self.start_ticks,
            duration_ticks: duration,
            ok: self.ok,
        });
        duration
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let duration = self.recorder.ticks().saturating_sub(self.start_ticks);
        self.recorder.record(SpanRecord {
            name: self.name,
            op: std::mem::take(&mut self.op),
            start_ticks: self.start_ticks,
            duration_ticks: duration,
            ok: self.ok,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic() {
        let r = Recorder::new(8);
        let a = r.ticks();
        let b = r.ticks();
        assert!(b >= a);
    }

    #[test]
    fn guard_records_on_finish_and_on_drop() {
        let r = Recorder::new(8);
        let d = r.span("parse", "impute").finish();
        {
            let mut g = r.span("handle", "impute");
            g.fail();
            // dropped here without finish()
        }
        let spans = r.recent();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "parse");
        assert!(spans[0].ok);
        assert_eq!(spans[0].duration_ticks, d);
        assert_eq!(spans[1].name, "handle");
        assert!(!spans[1].ok, "fail() survives the drop path");
    }

    #[test]
    fn ring_is_bounded_oldest_first_out() {
        let r = Recorder::new(3);
        for i in 0..5u64 {
            r.record(SpanRecord {
                name: "s",
                op: format!("op{i}"),
                start_ticks: i,
                duration_ticks: 1,
                ok: true,
            });
        }
        let spans = r.recent();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].op, "op2");
        assert_eq!(spans[2].op, "op4");
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn zero_capacity_recorder_keeps_nothing() {
        let r = Recorder::new(0);
        r.span("s", "op").finish();
        assert!(r.is_empty());
        assert!(r.ticks() < u64::MAX);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let r = std::sync::Arc::new(Recorder::new(128));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for _ in 0..16 {
                        r.span("stage", format!("op{t}")).finish();
                    }
                });
            }
        });
        assert_eq!(r.len(), 64);
    }
}
