//! Typed metrics: counters, gauges, fixed-bucket histograms, and a
//! registry with deterministic snapshots.
//!
//! Handles are `Arc`s resolved once per `(name, labels)` key; the
//! per-event cost is one or two atomic adds. Histograms observe
//! **integer µs ticks** into a bucket layout fixed at construction, so
//! bucket counts — and the quantiles estimated from them — are a pure
//! function of the observed multiset, never of timing jitter in the
//! estimator itself. [`Registry::snapshot`] emits samples in a pinned
//! order (BTreeMap key order; per histogram: buckets by bound, then
//! `_count`, `_sum`, then `quantile="0.5|0.95|0.99"`), which is what
//! makes the text endpoint golden-testable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency bucket upper bounds, in µs ticks: 50 µs … 30 s.
pub const LATENCY_BUCKETS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000,
    30_000_000,
];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (set / add / sub).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (negative to subtract).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over integer µs ticks.
///
/// Bucket `i` counts observations `v` with `bounds[i-1] < v <=
/// bounds[i]`; one overflow bucket past the last bound catches the
/// tail. Quantiles interpolate linearly inside the bracketing bucket,
/// clamped to the last finite bound for the overflow bucket — so an
/// estimate always lands inside (or on the edge of) the bucket holding
/// the true quantile, which the crate's proptest pins.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with the given strictly increasing, non-empty upper
    /// bounds.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(!bounds.is_empty());
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation (µs ticks).
    pub fn observe(&self, value: u64) {
        let i = self.bounds.partition_point(|&b| b < value);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (µs ticks).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Cumulative count of observations `<= bounds[i]`, plus the total
    /// as a final entry (the `+Inf` bucket).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut cum = 0u64;
        self.buckets
            .iter()
            .map(|b| {
                cum += b.load(Ordering::Relaxed);
                cum
            })
            .collect()
    }

    /// Estimates the `q`-quantile (0 < q <= 1) from the bucket counts:
    /// the bracketing bucket is found by rank `ceil(q·count)`, then
    /// linearly interpolated. Returns 0 for an empty histogram; the
    /// overflow bucket clamps to the last finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        let last = *self.bounds.last().expect("non-empty bounds") as f64;
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        let mut lo = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if cum + in_bucket >= rank {
                let Some(&hi) = self.bounds.get(i) else {
                    return last; // overflow bucket: clamp
                };
                let into = (rank - cum) as f64 / in_bucket as f64;
                return lo as f64 + (hi - lo) as f64 * into;
            }
            cum += in_bucket;
            lo = self.bounds.get(i).copied().unwrap_or(lo);
        }
        last
    }
}

/// One rendered sample: a metric name, its label pairs (sorted,
/// deterministic), and a value. Counter/gauge values are exact as f64
/// below 2^53 — far beyond any counter this process will reach.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric (family) name, e.g. `habit_requests_total`.
    pub name: String,
    /// Label pairs in pinned order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A deterministic point-in-time view of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Samples in the registry's pinned order.
    pub samples: Vec<Sample>,
}

type Key = (String, Vec<(String, String)>);

/// A registry of counters, gauges, and histograms keyed by
/// `(name, labels)`.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<Key, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<Key, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<Key, Arc<Histogram>>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    (
        name.to_string(),
        labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    )
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter for `(name, labels)`, created on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(key(name, labels)).or_default())
    }

    /// The gauge for `(name, labels)`, created on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(key(name, labels)).or_default())
    }

    /// The histogram for `(name, labels)`, created on first use with
    /// the given bounds. Bounds are fixed by whoever registers first.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(key(name, labels))
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Renders every metric into a [`Snapshot`] in pinned order:
    /// counters, then gauges, then histograms, each in BTreeMap key
    /// order; histograms expand to `_bucket{le=…}` rows in bound order
    /// (ending with `+Inf`), `_count`, `_sum`, and p50/p95/p99
    /// `quantile` rows.
    pub fn snapshot(&self) -> Snapshot {
        let mut samples = Vec::new();
        {
            let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            for ((name, labels), c) in map.iter() {
                samples.push(Sample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: c.get() as f64,
                });
            }
        }
        {
            let map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
            for ((name, labels), g) in map.iter() {
                samples.push(Sample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: g.get() as f64,
                });
            }
        }
        {
            let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
            for ((name, labels), h) in map.iter() {
                let cumulative = h.cumulative();
                for (i, &bound) in h.bounds().iter().enumerate() {
                    let mut ls = labels.clone();
                    ls.push(("le".to_string(), bound.to_string()));
                    samples.push(Sample {
                        name: format!("{name}_bucket"),
                        labels: ls,
                        value: cumulative[i] as f64,
                    });
                }
                let mut ls = labels.clone();
                ls.push(("le".to_string(), "+Inf".to_string()));
                samples.push(Sample {
                    name: format!("{name}_bucket"),
                    labels: ls,
                    value: *cumulative.last().unwrap_or(&0) as f64,
                });
                samples.push(Sample {
                    name: format!("{name}_count"),
                    labels: labels.clone(),
                    value: h.count() as f64,
                });
                samples.push(Sample {
                    name: format!("{name}_sum"),
                    labels: labels.clone(),
                    value: h.sum() as f64,
                });
                for (tag, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                    let mut ls = labels.clone();
                    ls.push(("quantile".to_string(), tag.to_string()));
                    samples.push(Sample {
                        name: name.clone(),
                        labels: ls,
                        value: h.quantile(q),
                    });
                }
            }
        }
        Snapshot { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = Registry::new();
        let c = reg.counter("req", &[("op", "impute")]);
        c.inc();
        c.add(2);
        assert_eq!(reg.counter("req", &[("op", "impute")]).get(), 3);
        // A different label set is a different counter.
        assert_eq!(reg.counter("req", &[("op", "health")]).get(), 0);

        let g = reg.gauge("conns", &[]);
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(7);
        assert_eq!(reg.gauge("conns", &[]).get(), 7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 5, 10, 11, 90, 500, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1 + 5 + 10 + 11 + 90 + 500 + 5000);
        // <=10: 3, <=100: 5, <=1000: 6, +Inf: 7.
        assert_eq!(h.cumulative(), vec![3, 5, 6, 7]);
        // Median rank 4 lands in the (10, 100] bucket.
        let p50 = h.quantile(0.5);
        assert!((10.0..=100.0).contains(&p50), "{p50}");
        // The tail rank lands in the overflow bucket: clamped.
        assert_eq!(h.quantile(0.99), 1000.0);
        // Empty histogram.
        assert_eq!(Histogram::new(&[10]).quantile(0.5), 0.0);
    }

    #[test]
    fn snapshot_order_is_pinned() {
        let reg = Registry::new();
        reg.counter("b_total", &[]).inc();
        reg.counter("a_total", &[("op", "x")]).add(2);
        reg.gauge("g", &[]).set(-1);
        reg.histogram("lat", &[("op", "x")], &[10, 100]).observe(7);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "a_total",
                "b_total",
                "g",
                "lat_bucket",
                "lat_bucket",
                "lat_bucket",
                "lat_count",
                "lat_sum",
                "lat",
                "lat",
                "lat",
            ]
        );
        assert_eq!(snap.samples[3].labels[1], ("le".into(), "10".into()));
        assert_eq!(snap.samples[5].labels[1], ("le".into(), "+Inf".into()));
        assert_eq!(snap.samples[8].labels[1], ("quantile".into(), "0.5".into()));
        // Deterministic: a second snapshot is identical.
        assert_eq!(snap, reg.snapshot());
    }

    /// Finds the index of the bucket (0-based, `bounds.len()` =
    /// overflow) a value falls into.
    fn bucket_of(bounds: &[u64], v: u64) -> usize {
        bounds.partition_point(|&b| b < v)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The quantile estimate must bracket the true quantile: both
        /// land in the same bucket, so the estimate lies within the
        /// true value's bucket bounds (clamped to the last finite
        /// bound for the overflow bucket).
        #[test]
        fn quantile_estimate_brackets_the_true_quantile(
            samples in proptest::collection::vec(0u64..100_000, 1..200),
            q_millis in 1u64..=1000,
        ) {
            let q = q_millis as f64 / 1000.0;
            let bounds = LATENCY_BUCKETS_US;
            let h = Histogram::new(&bounds);
            for &v in &samples {
                h.observe(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let true_q = sorted[rank - 1];
            let estimate = h.quantile(q);

            let bi = bucket_of(&bounds, true_q);
            if bi >= bounds.len() {
                // True quantile is past the last bound: the estimate
                // clamps to the last finite bound.
                prop_assert_eq!(estimate, *bounds.last().unwrap() as f64);
            } else {
                let lo = if bi == 0 { 0 } else { bounds[bi - 1] } as f64;
                let hi = bounds[bi] as f64;
                prop_assert!(
                    estimate >= lo && estimate <= hi,
                    "estimate {} outside bucket [{}, {}] of true quantile {}",
                    estimate, lo, hi, true_q
                );
            }
        }
    }
}
