//! Span records as line-delimited JSON.
//!
//! One object per line, newest last — the `GET /spans` debug surface
//! of the metrics endpoint. Hand-rolled like the wire codec: the only
//! dynamic strings are the stage name and op label, escaped per JSON's
//! required set; all times are integer µs ticks, so every number is
//! exact on the wire.

use crate::span::SpanRecord;

/// Renders spans as one JSON object per line.
pub fn render_spans(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str("{\"name\":\"");
        push_escaped(&mut out, s.name);
        out.push_str("\",\"op\":\"");
        push_escaped(&mut out, &s.op);
        out.push_str(&format!(
            "\",\"start_us\":{},\"dur_us\":{},\"ok\":{}}}\n",
            s.start_ticks, s.duration_ticks, s.ok
        ));
    }
    out
}

fn push_escaped(out: &mut String, v: &str) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_span_lines() {
        let spans = vec![
            SpanRecord {
                name: "parse",
                op: "impute".to_string(),
                start_ticks: 10,
                duration_ticks: 3,
                ok: true,
            },
            SpanRecord {
                name: "handle",
                op: "unknown".to_string(),
                start_ticks: 13,
                duration_ticks: 40,
                ok: false,
            },
        ];
        assert_eq!(
            render_spans(&spans),
            "{\"name\":\"parse\",\"op\":\"impute\",\"start_us\":10,\"dur_us\":3,\"ok\":true}\n\
             {\"name\":\"handle\",\"op\":\"unknown\",\"start_us\":13,\"dur_us\":40,\"ok\":false}\n"
        );
    }

    #[test]
    fn op_labels_are_escaped() {
        let spans = vec![SpanRecord {
            name: "s",
            op: "a\"b\\c\nd\u{1}".to_string(),
            start_ticks: 0,
            duration_ticks: 0,
            ok: true,
        }];
        let line = render_spans(&spans);
        assert!(line.contains("a\\\"b\\\\c\\nd\\u0001"), "{line}");
    }

    #[test]
    fn empty_input_renders_nothing() {
        assert_eq!(render_spans(&[]), "");
    }
}
