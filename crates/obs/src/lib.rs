//! # habit-obs — structured tracing + metrics for the serving stack
//!
//! A dependency-free (std-only) observability substrate shared by the
//! engine, the service facade, and the daemon:
//!
//! * [`span`] — a hand-rolled monotonic-clock span recorder
//!   ([`Recorder`] / [`SpanGuard`]) with a bounded ring buffer. All
//!   serialized timestamps are **ticks**: microseconds since the
//!   recorder's own [`std::time::Instant`] epoch — never
//!   `std::time::SystemTime`, so serialized output stays inside the
//!   wire's ±2^53 exact-integer domain (2^53 µs ≈ 285 years) and is
//!   immune to wall-clock steps.
//! * [`metrics`] — typed [`Counter`] / [`Gauge`] / [`Histogram`]
//!   primitives behind a [`Registry`] keyed by `(name, labels)`. The
//!   histogram layout is fixed at construction (deterministic bucket
//!   bounds), and [`Registry::snapshot`] renders a fully deterministic
//!   sample list: BTreeMap key order, buckets in bound order, then
//!   count / sum / p50 / p95 / p99.
//! * [`text`] — the Prometheus-style plaintext renderer
//!   (`name{label="v"} value`, one sample per line) behind
//!   `habit serve --metrics-port`.
//! * [`spanjson`] — span records as line-delimited JSON, the
//!   `GET /spans` debug surface of the metrics endpoint.
//!
//! Everything is thread-safe behind `&self` (atomics + one mutex per
//! registry map / ring buffer) and allocation-light on the hot path: a
//! caller holds `Arc<Counter>` / `Arc<Histogram>` handles resolved
//! once, and per-request cost is a few atomic adds.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod metrics;
pub mod span;
pub mod spanjson;
pub mod text;

pub use metrics::{Counter, Gauge, Histogram, Registry, Sample, Snapshot, LATENCY_BUCKETS_US};
pub use span::{Recorder, SpanGuard, SpanRecord};
