//! # hexgrid — a hierarchical hexagonal spatial index with H3 semantics
//!
//! HABIT (the paper) indexes AIS positions with Uber's H3 grid. This crate
//! is a from-scratch substitute that preserves every H3 operation the
//! method uses:
//!
//! * [`HexGrid::cell`] — latitude/longitude → cell at a resolution
//!   (`latLngToCell`);
//! * [`HexGrid::center`] — cell → representative point (`cellToLatLng`);
//! * [`HexGrid::grid_distance`] — hex-count distance between cells
//!   (`gridDistance`), used as an edge statistic and A* heuristic;
//! * [`ops::neighbors`] / [`ops::disk`] — adjacency and k-rings
//!   (`gridDisk`), used for endpoint snapping;
//! * [`ops::grid_path`] — cells on the line between two cells
//!   (`gridPathCells`);
//! * parent/child traversal across resolutions (aperture 7).
//!
//! ## Relation to real H3
//!
//! H3 tiles the icosahedron; this crate tiles the spherical-Mercator plane
//! with a pointy-top hexagonal lattice. Each finer resolution shrinks the
//! edge by √7 and rotates the lattice by `atan(√3/5) ≈ 19.1°` — the same
//! aperture-7 construction H3 uses on its faces. Resolution edge lengths
//! match H3's published global averages (res 0 ≈ 1107.7 km … res 15 ≈
//! 0.5 m), so resolution numbers in the paper map one-to-one. Because
//! Mercator is conformal, cells are perfectly regular hexagons locally;
//! their *ground* size scales by `cos(lat)` (≈0.56 at the Danish sites,
//! ≈0.79 in the Saronic gulf), uniformly within a study region. All
//! relative comparisons across resolutions — what the paper's experiments
//! sweep — are unaffected. See `DESIGN.md` §3.
//!
//! ## Cell identifiers
//!
//! A [`HexCell`] is a packed `u64`: a 4-bit tag, a 4-bit resolution and two
//! zig-zag-encoded 28-bit axial coordinates. IDs are stable across runs and
//! machines and order-independent, so they can be used as graph node keys
//! and serialized.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cell;
pub mod cover;
pub mod error;
pub mod grid;
pub mod ops;
pub mod tiling;

pub use cell::HexCell;
pub use error::HexError;
pub use grid::{HexGrid, MAX_RESOLUTION};
pub use tiling::TilePartitioner;

#[cfg(test)]
mod proptests;
