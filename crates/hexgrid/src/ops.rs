//! Neighborhood and path operations on the hex lattice.

use crate::cell::HexCell;
use crate::error::HexError;
use crate::grid::HexGrid;

/// The six axial direction vectors of a pointy-top hex lattice, in
/// counter-clockwise order starting east.
pub const DIRECTIONS: [(i64, i64); 6] = [(1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1)];

/// The six neighbors of a cell (H3 `gridDisk(cell, 1)` minus the center).
pub fn neighbors(cell: HexCell) -> Result<[HexCell; 6], HexError> {
    let res = cell.resolution();
    let (q, r) = cell.axial();
    let mut out = [cell; 6];
    for (i, (dq, dr)) in DIRECTIONS.iter().enumerate() {
        out[i] = HexCell::from_axial(res, q + dq, r + dr)?;
    }
    Ok(out)
}

/// All cells within grid distance `k` of `center`, center included
/// (H3 `gridDisk`). Returned in ring order: center, ring 1, ring 2, …
pub fn disk(center: HexCell, k: u32) -> Result<Vec<HexCell>, HexError> {
    let mut out = Vec::with_capacity((3 * k * (k + 1) + 1) as usize);
    out.push(center);
    for radius in 1..=k {
        ring_into(center, radius, &mut out)?;
    }
    Ok(out)
}

/// The cells at exactly grid distance `k` from `center` (H3 `gridRing`).
/// `k = 0` yields just the center.
pub fn ring(center: HexCell, k: u32) -> Result<Vec<HexCell>, HexError> {
    if k == 0 {
        return Ok(vec![center]);
    }
    let mut out = Vec::with_capacity((6 * k) as usize);
    ring_into(center, k, &mut out)?;
    Ok(out)
}

fn ring_into(center: HexCell, k: u32, out: &mut Vec<HexCell>) -> Result<(), HexError> {
    let res = center.resolution();
    let (cq, cr) = center.axial();
    // Start k steps in direction 4 (south-west in axial space), then walk
    // the six sides of the ring.
    let mut q = cq + DIRECTIONS[4].0 * k as i64;
    let mut r = cr + DIRECTIONS[4].1 * k as i64;
    for (dq, dr) in DIRECTIONS {
        for _ in 0..k {
            out.push(HexCell::from_axial(res, q, r)?);
            q += dq;
            r += dr;
        }
    }
    Ok(())
}

/// The cells on the straight lattice line from `a` to `b`, inclusive
/// (H3 `gridPathCells`). Result length is `grid_distance(a, b) + 1`.
pub fn grid_path(a: HexCell, b: HexCell) -> Result<Vec<HexCell>, HexError> {
    let grid = HexGrid::new();
    let n = grid.grid_distance(a, b)?;
    let res = a.resolution();
    if n == 0 {
        return Ok(vec![a]);
    }
    // Interpolate in cube coordinates with a tiny epsilon nudge to break
    // ties deterministically (same trick as the reference H3 code).
    let (aq, ar) = a.axial();
    let (bq, br) = b.axial();
    let (aqf, arf) = (aq as f64 + 1e-7, ar as f64 + 1e-7);
    let (bqf, brf) = (bq as f64 + 1e-7, br as f64 + 1e-7);
    let mut out = Vec::with_capacity(n as usize + 1);
    for i in 0..=n {
        let t = i as f64 / n as f64;
        let qf = aqf + (bqf - aqf) * t;
        let rf = arf + (brf - arf) * t;
        let (q, r) = cube_round(qf, rf);
        out.push(HexCell::from_axial(res, q, r)?);
    }
    out.dedup();
    Ok(out)
}

fn cube_round(qf: f64, rf: f64) -> (i64, i64) {
    let sf = -qf - rf;
    let mut q = qf.round();
    let mut r = rf.round();
    let s = sf.round();
    let dq = (q - qf).abs();
    let dr = (r - rf).abs();
    let ds = (s - sf).abs();
    if dq > dr && dq > ds {
        q = -r - s;
    } else if dr > ds {
        r = -q - s;
    }
    (q as i64, r as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::HexGrid;
    use geo_kernel::GeoPoint;

    fn cell_at(lon: f64, lat: f64, res: u8) -> HexCell {
        HexGrid::new().cell(&GeoPoint::new(lon, lat), res).unwrap()
    }

    #[test]
    fn six_unique_neighbors_at_distance_one() {
        let g = HexGrid::new();
        let c = cell_at(10.0, 56.0, 9);
        let ns = neighbors(c).unwrap();
        let mut set = std::collections::HashSet::new();
        for n in ns {
            assert_eq!(g.grid_distance(c, n).unwrap(), 1);
            set.insert(n);
        }
        assert_eq!(set.len(), 6);
        assert!(!set.contains(&c));
    }

    #[test]
    fn disk_sizes_follow_centered_hex_numbers() {
        let c = cell_at(10.0, 56.0, 9);
        for k in 0..5u32 {
            let d = disk(c, k).unwrap();
            let expected = 3 * k * (k + 1) + 1;
            assert_eq!(d.len() as u32, expected, "k={k}");
            // No duplicates.
            let set: std::collections::HashSet<_> = d.iter().collect();
            assert_eq!(set.len(), d.len());
        }
    }

    #[test]
    fn ring_is_exactly_at_distance_k() {
        let g = HexGrid::new();
        let c = cell_at(12.0, 55.0, 8);
        for k in 1..4u32 {
            let r = ring(c, k).unwrap();
            assert_eq!(r.len() as u32, 6 * k);
            for cell in r {
                assert_eq!(g.grid_distance(c, cell).unwrap(), k, "k={k}");
            }
        }
        assert_eq!(ring(c, 0).unwrap(), vec![c]);
    }

    #[test]
    fn grid_path_connects_and_is_minimal() {
        let g = HexGrid::new();
        let a = cell_at(10.0, 56.0, 8);
        let b = cell_at(10.4, 56.15, 8);
        let path = grid_path(a, b).unwrap();
        assert_eq!(path.first(), Some(&a));
        assert_eq!(path.last(), Some(&b));
        let d = g.grid_distance(a, b).unwrap() as usize;
        assert_eq!(path.len(), d + 1);
        for w in path.windows(2) {
            assert_eq!(
                g.grid_distance(w[0], w[1]).unwrap(),
                1,
                "consecutive cells adjacent"
            );
        }
    }

    #[test]
    fn grid_path_trivial_cases() {
        let a = cell_at(10.0, 56.0, 9);
        assert_eq!(grid_path(a, a).unwrap(), vec![a]);
        let n = neighbors(a).unwrap()[0];
        assert_eq!(grid_path(a, n).unwrap(), vec![a, n]);
    }
}
