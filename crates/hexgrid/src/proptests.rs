//! Property-based tests for the hex grid invariants.

use crate::grid::HexGrid;
use crate::ops;
use geo_kernel::{haversine_m, GeoPoint};
use proptest::prelude::*;

/// Strategy: points inside the union of the paper's study regions
/// (Baltic/Danish waters and the Aegean), where the grid must be exact.
fn study_point() -> impl Strategy<Value = GeoPoint> {
    prop_oneof![
        // Danish waters
        (9.0f64..13.0, 54.0f64..58.0).prop_map(|(lon, lat)| GeoPoint::new(lon, lat)),
        // Saronic gulf
        (23.0f64..24.0, 37.4f64..38.1).prop_map(|(lon, lat)| GeoPoint::new(lon, lat)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cell_center_is_fixed_point(p in study_point(), res in 5u8..=11) {
        let g = HexGrid::new();
        let c = g.cell(&p, res).unwrap();
        let center = g.center(c);
        let c2 = g.cell(&center, res).unwrap();
        prop_assert_eq!(c, c2);
    }

    #[test]
    fn point_is_near_its_cell_center(p in study_point(), res in 5u8..=11) {
        let g = HexGrid::new();
        let c = g.cell(&p, res).unwrap();
        let d = haversine_m(&p, &g.center(c));
        // Nominal circumradius is an upper bound on the ground distance
        // because Mercator shrinks ground cells away from the equator.
        prop_assert!(d <= g.edge_length_m(res).unwrap() * 1.0001);
    }

    #[test]
    fn grid_distance_triangle_inequality(
        p1 in study_point(), p2 in study_point(), p3 in study_point()
    ) {
        let g = HexGrid::new();
        let a = g.cell(&p1, 8).unwrap();
        let b = g.cell(&p2, 8).unwrap();
        let c = g.cell(&p3, 8).unwrap();
        let ab = g.grid_distance(a, b).unwrap();
        let bc = g.grid_distance(b, c).unwrap();
        let ac = g.grid_distance(a, c).unwrap();
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn neighbors_are_mutual(p in study_point()) {
        let c = HexGrid::new().cell(&p, 9).unwrap();
        for n in ops::neighbors(c).unwrap() {
            let back = ops::neighbors(n).unwrap();
            prop_assert!(back.contains(&c));
        }
    }

    #[test]
    fn grid_path_length_equals_distance_plus_one(p1 in study_point(), p2 in study_point()) {
        let g = HexGrid::new();
        let a = g.cell(&p1, 7).unwrap();
        let b = g.cell(&p2, 7).unwrap();
        let path = ops::grid_path(a, b).unwrap();
        prop_assert_eq!(path.len() as u32, g.grid_distance(a, b).unwrap() + 1);
    }

    #[test]
    fn parent_is_consistent_across_two_levels(p in study_point()) {
        let g = HexGrid::new();
        let c10 = g.cell(&p, 10).unwrap();
        let via9 = g.parent(g.parent(c10, 9).unwrap(), 8).unwrap();
        let direct = g.parent(c10, 8).unwrap();
        // Two-step and direct coarsening may differ by at most one cell on
        // lattice boundaries; both must contain the fine cell's center
        // within one coarse step.
        let d = g.grid_distance(via9, direct).unwrap();
        prop_assert!(d <= 1, "distance {}", d);
    }
}
