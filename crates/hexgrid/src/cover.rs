//! Region coverage: cell boundaries and polyfill.
//!
//! HABIT itself only needs point → cell bucketing, but its applications
//! (density maps, region statistics) need the reverse: which cells cover
//! an area of interest, and what does one cell look like on a map. These
//! are the H3 `cellToBoundary` / `polygonToCells` equivalents.

use crate::cell::HexCell;
use crate::error::HexError;
use crate::grid::HexGrid;
use geo_kernel::{BBox, GeoPoint, Polygon};

/// Upper bound on the number of cells a single polyfill may produce;
/// beyond it the call fails rather than exhausting memory. (At res 9 this
/// covers a region of roughly 450 000 km².)
pub const MAX_COVER_CELLS: u64 = 5_000_000;

impl HexGrid {
    /// The six boundary vertices of a cell, counter-clockwise
    /// (H3 `cellToBoundary`).
    pub fn boundary(&self, cell: HexCell) -> [GeoPoint; 6] {
        let res = cell.resolution();
        let size = self.edge_length_m(res).expect("stored res is valid");
        let (cx, cy) = self.center_planar(cell);
        let mut out = [GeoPoint::new(0.0, 0.0); 6];
        for (k, slot) in out.iter_mut().enumerate() {
            // Pointy-top: vertices at 30° + 60°·k in the lattice frame.
            let theta = std::f64::consts::PI / 6.0 + k as f64 * std::f64::consts::PI / 3.0;
            let vx = cx + size * theta.cos();
            let vy = cy + size * theta.sin();
            *slot = self.planar_inverse(res, vx, vy);
        }
        out
    }

    /// All cells at `res` whose center lies inside `bbox`
    /// (H3 `polygonToCells` on a rectangle).
    pub fn polyfill_bbox(&self, bbox: &BBox, res: u8) -> Result<Vec<HexCell>, HexError> {
        self.cover(bbox, res, |_| true)
    }

    /// All cells at `res` whose center lies inside `polygon`.
    pub fn polyfill(&self, polygon: &Polygon, res: u8) -> Result<Vec<HexCell>, HexError> {
        let bbox = BBox::from_points(polygon.ring())
            .ok_or(HexError::InvalidCoordinate { lon: 0.0, lat: 0.0 })?;
        self.cover(&bbox, res, |p| polygon.contains(p))
    }

    /// Shared scan: enumerate the axial parallelogram image of `bbox`,
    /// keep cells whose center is in the box and passes `keep`.
    fn cover<F: Fn(&GeoPoint) -> bool>(
        &self,
        bbox: &BBox,
        res: u8,
        keep: F,
    ) -> Result<Vec<HexCell>, HexError> {
        if res > crate::grid::MAX_RESOLUTION {
            return Err(HexError::InvalidResolution(res));
        }
        // The Mercator → axial transform is linear, so the axial image of
        // the box is a parallelogram whose extremes sit at the corners.
        let corners = [
            GeoPoint::new(bbox.min_lon, bbox.min_lat),
            GeoPoint::new(bbox.min_lon, bbox.max_lat),
            GeoPoint::new(bbox.max_lon, bbox.min_lat),
            GeoPoint::new(bbox.max_lon, bbox.max_lat),
        ];
        let mut qmin = i64::MAX;
        let mut qmax = i64::MIN;
        let mut rmin = i64::MAX;
        let mut rmax = i64::MIN;
        for c in corners {
            let cell = self.cell(&c, res)?;
            qmin = qmin.min(cell.q());
            qmax = qmax.max(cell.q());
            rmin = rmin.min(cell.r());
            rmax = rmax.max(cell.r());
        }
        // One cell of slack for axial rounding at the edges.
        qmin -= 1;
        rmin -= 1;
        qmax += 1;
        rmax += 1;

        let span = (qmax - qmin + 1) as u64 * (rmax - rmin + 1) as u64;
        if span > MAX_COVER_CELLS {
            return Err(HexError::CoverTooLarge { estimated: span });
        }

        let mut out = Vec::new();
        for q in qmin..=qmax {
            for r in rmin..=rmax {
                let cell = HexCell::from_axial(res, q, r)?;
                let center = self.center(cell);
                if bbox.contains(&center) && keep(&center) {
                    out.push(cell);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_kernel::haversine_m;

    #[test]
    fn boundary_vertices_are_one_edge_from_center() {
        let grid = HexGrid::new();
        for res in [6u8, 8, 10] {
            let cell = grid.cell(&GeoPoint::new(10.3, 56.1), res).unwrap();
            let center = grid.center(cell);
            let edge = grid.edge_length_m(res).unwrap();
            let boundary = grid.boundary(cell);
            for v in &boundary {
                let d = haversine_m(&center, v);
                // Ground distances shrink by cos(lat) under Mercator; the
                // ratio to the nominal edge must match that factor.
                let shrink = (56.1f64).to_radians().cos();
                assert!(
                    (d / (edge * shrink) - 1.0).abs() < 0.05,
                    "res {res}: vertex at {d:.1} m, edge {edge:.1} m"
                );
            }
            // Vertices are distinct.
            for i in 0..6 {
                let d = haversine_m(&boundary[i], &boundary[(i + 1) % 6]);
                assert!(d > edge * shrink_at(56.1) * 0.9, "side {i} degenerate");
            }
        }
    }

    fn shrink_at(lat: f64) -> f64 {
        lat.to_radians().cos()
    }

    #[test]
    fn boundary_contains_the_points_that_map_to_the_cell() {
        // Sample points known to bucket into the cell: the polygon formed
        // by the boundary must contain them.
        let grid = HexGrid::new();
        let cell = grid.cell(&GeoPoint::new(23.6, 37.9), 9).unwrap();
        let poly = Polygon::new(grid.boundary(cell).to_vec());
        let center = grid.center(cell);
        assert!(poly.contains(&center));
    }

    #[test]
    fn polyfill_bbox_covers_expected_area() {
        let grid = HexGrid::new();
        let bbox = BBox::new(10.0, 56.0, 10.2, 56.1);
        let res = 8;
        let cells = grid.polyfill_bbox(&bbox, res).unwrap();
        assert!(!cells.is_empty());
        // Expected count ≈ box area / cell ground area (Mercator shrink²).
        let lat_m = 0.1 * 111_195.0;
        let lon_m = 0.2 * 111_195.0 * shrink_at(56.05);
        let cell_area_m2 =
            grid.hex_area_km2(res).unwrap() * 1e6 * shrink_at(56.05) * shrink_at(56.05);
        let expected = (lat_m * lon_m) / cell_area_m2;
        let n = cells.len() as f64;
        assert!(
            n > expected * 0.7 && n < expected * 1.3,
            "{n} cells vs expected ~{expected:.0}"
        );
        // All centers inside the box; no duplicates.
        let mut seen = std::collections::HashSet::new();
        for c in &cells {
            assert!(bbox.contains(&grid.center(*c)));
            assert!(seen.insert(c.raw()));
        }
    }

    #[test]
    fn polyfill_polygon_subset_of_bbox_fill() {
        let grid = HexGrid::new();
        // A triangle inside the box.
        let tri = Polygon::new(vec![
            GeoPoint::new(10.0, 56.0),
            GeoPoint::new(10.2, 56.0),
            GeoPoint::new(10.1, 56.1),
        ]);
        let bbox = BBox::new(10.0, 56.0, 10.2, 56.1);
        let in_tri = grid.polyfill(&tri, 8).unwrap();
        let in_box = grid.polyfill_bbox(&bbox, 8).unwrap();
        assert!(!in_tri.is_empty());
        assert!(in_tri.len() < in_box.len());
        let box_set: std::collections::HashSet<u64> = in_box.iter().map(|c| c.raw()).collect();
        for c in &in_tri {
            assert!(box_set.contains(&c.raw()), "triangle cell outside box fill");
            assert!(tri.contains(&grid.center(*c)));
        }
        // Roughly half the box area.
        let ratio = in_tri.len() as f64 / in_box.len() as f64;
        assert!((0.3..0.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn oversized_cover_rejected() {
        let grid = HexGrid::new();
        let bbox = BBox::new(-170.0, -60.0, 170.0, 60.0);
        let err = grid.polyfill_bbox(&bbox, 12).unwrap_err();
        assert!(matches!(err, HexError::CoverTooLarge { .. }), "{err:?}");
    }

    #[test]
    fn polyfill_respects_resolution_bounds() {
        let grid = HexGrid::new();
        let bbox = BBox::new(10.0, 56.0, 10.1, 56.05);
        assert!(grid.polyfill_bbox(&bbox, 16).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every point sampled inside a bbox lands in a cell that the
        /// bbox polyfill knows about, or in one adjacent to a fill cell
        /// (edge cells can have centers just outside the box).
        #[test]
        fn polyfill_covers_sampled_points(
            lon in 9.0f64..12.0,
            lat in 54.5f64..57.0,
            dlon in 0.05f64..0.25,
            dlat in 0.05f64..0.2,
            fx in 0.0f64..1.0,
            fy in 0.0f64..1.0,
        ) {
            let grid = HexGrid::new();
            let res = 8u8;
            let bbox = BBox::new(lon, lat, lon + dlon, lat + dlat);
            let cells = grid.polyfill_bbox(&bbox, res).unwrap();
            prop_assert!(!cells.is_empty());
            let fill: std::collections::HashSet<u64> =
                cells.iter().map(|c| c.raw()).collect();

            let p = GeoPoint::new(lon + dlon * fx, lat + dlat * fy);
            let cell = grid.cell(&p, res).unwrap();
            let covered = fill.contains(&cell.raw())
                || crate::ops::neighbors(cell)
                    .unwrap()
                    .iter()
                    .any(|n| fill.contains(&n.raw()));
            prop_assert!(covered, "point {p} cell not covered by polyfill");
        }

        /// Boundary vertices surround the center: walking the hexagon
        /// ring gives six sides of comparable length, and the vertex
        /// centroid coincides with the cell center.
        #[test]
        fn boundary_is_a_regular_hexagon(
            lon in -170.0f64..170.0,
            lat in -65.0f64..65.0,
            res in 5u8..=11,
        ) {
            let grid = HexGrid::new();
            let cell = grid.cell(&GeoPoint::new(lon, lat), res).unwrap();
            let b = grid.boundary(cell);
            let center = grid.center(cell);

            let mut sides = Vec::with_capacity(6);
            for i in 0..6 {
                sides.push(geo_kernel::haversine_m(&b[i], &b[(i + 1) % 6]));
            }
            let min = sides.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = sides.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(min > 0.0);
            // Mercator keeps local shapes; side lengths match within 1%.
            prop_assert!(max / min < 1.01, "sides {sides:?}");

            let centroid = GeoPoint::new(
                b.iter().map(|v| v.lon).sum::<f64>() / 6.0,
                b.iter().map(|v| v.lat).sum::<f64>() / 6.0,
            );
            let d = geo_kernel::haversine_m(&centroid, &center);
            let edge = grid.edge_length_m(res).unwrap();
            prop_assert!(d < edge * 0.05, "centroid {d:.1} m off center");
        }
    }
}
