//! Lattice geometry: point ↔ cell conversion and resolution metadata.

use crate::cell::HexCell;
use crate::error::HexError;
use geo_kernel::{mercator, mercator_inverse, GeoPoint};

/// Finest supported resolution (same as H3).
pub const MAX_RESOLUTION: u8 = 15;

/// Average hexagon edge length of resolution 0 in meters, chosen so that
/// every resolution reproduces H3's published average edge lengths
/// (res 9 ≈ 174.4 m, res 10 ≈ 65.9 m, …): each finer resolution divides
/// the edge by √7.
const RES0_EDGE_M: f64 = 1_107_712.591;

/// Aperture-7 inter-resolution rotation: `atan(√3 / 5)` ≈ 19.1066°.
/// Identical to the rotation H3 applies between successive resolutions.
fn aperture7_rotation_rad() -> f64 {
    (3.0f64.sqrt() / 5.0).atan()
}

/// The hexagonal grid itself: a family of 16 pointy-top hex lattices over
/// the Mercator plane, one per resolution, linked by the aperture-7
/// hierarchy.
///
/// The struct is zero-sized and all methods are cheap; it exists so that
/// call sites read naturally (`grid.cell(&p, 9)`) and so alternative grid
/// constructions can be swapped in experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct HexGrid;

impl HexGrid {
    /// Creates the grid.
    pub fn new() -> Self {
        HexGrid
    }

    /// Average hexagon edge length (circumradius) in meters at `res`,
    /// nominal at the equator.
    pub fn edge_length_m(&self, res: u8) -> Result<f64, HexError> {
        if res > MAX_RESOLUTION {
            return Err(HexError::InvalidResolution(res));
        }
        Ok(RES0_EDGE_M * 7f64.powf(-(res as f64) / 2.0))
    }

    /// Average hexagon area in km² at `res`, nominal at the equator.
    pub fn hex_area_km2(&self, res: u8) -> Result<f64, HexError> {
        let e = self.edge_length_m(res)?;
        Ok(1.5 * 3f64.sqrt() * e * e / 1e6)
    }

    /// Rotation of the lattice at `res` relative to resolution 0, radians.
    fn rotation_rad(&self, res: u8) -> f64 {
        res as f64 * aperture7_rotation_rad()
    }

    /// Maps a geographic point to its cell at `res` (H3 `latLngToCell`).
    pub fn cell(&self, p: &GeoPoint, res: u8) -> Result<HexCell, HexError> {
        if res > MAX_RESOLUTION {
            return Err(HexError::InvalidResolution(res));
        }
        if !p.is_valid() {
            return Err(HexError::InvalidCoordinate {
                lon: p.lon,
                lat: p.lat,
            });
        }
        let (x, y) = mercator(p);
        // Rotate the frame by -rotation so the lattice becomes axis-aligned.
        let rot = self.rotation_rad(res);
        let (sin_r, cos_r) = rot.sin_cos();
        let xr = x * cos_r + y * sin_r;
        let yr = -x * sin_r + y * cos_r;

        let size = self.edge_length_m(res).expect("validated");
        // Pointy-top axial coordinates.
        let qf = (3f64.sqrt() / 3.0 * xr - yr / 3.0) / size;
        let rf = (2.0 / 3.0 * yr) / size;
        let (q, r) = axial_round(qf, rf);
        HexCell::from_axial(res, q, r)
    }

    /// Geometric center of a cell (H3 `cellToLatLng`). This is the paper's
    /// projection option `p = c`.
    pub fn center(&self, cell: HexCell) -> GeoPoint {
        let (xr, yr) = self.center_planar(cell);
        self.planar_inverse(cell.resolution(), xr, yr)
    }

    /// Center of a cell in the (rotated) lattice frame, meters.
    pub(crate) fn center_planar(&self, cell: HexCell) -> (f64, f64) {
        let res = cell.resolution();
        let size = self.edge_length_m(res).expect("stored res is valid");
        let q = cell.q() as f64;
        let r = cell.r() as f64;
        (
            size * (3f64.sqrt() * q + 3f64.sqrt() / 2.0 * r),
            size * (1.5 * r),
        )
    }

    /// Maps lattice-frame coordinates back to a geographic point.
    pub(crate) fn planar_inverse(&self, res: u8, xr: f64, yr: f64) -> GeoPoint {
        let rot = self.rotation_rad(res);
        let (sin_r, cos_r) = rot.sin_cos();
        let x = xr * cos_r - yr * sin_r;
        let y = xr * sin_r + yr * cos_r;
        mercator_inverse(x, y)
    }

    /// Number of hexagon steps between two cells of the same resolution
    /// (H3 `gridDistance`).
    pub fn grid_distance(&self, a: HexCell, b: HexCell) -> Result<u32, HexError> {
        if a.resolution() != b.resolution() {
            return Err(HexError::ResolutionMismatch {
                a: a.resolution(),
                b: b.resolution(),
            });
        }
        let dq = a.q() - b.q();
        let dr = a.r() - b.r();
        let ds = dq + dr;
        Ok(((dq.abs() + dr.abs() + ds.abs()) / 2) as u32)
    }

    /// Parent cell at a coarser resolution: the cell whose area contains
    /// this cell's center.
    pub fn parent(&self, cell: HexCell, parent_res: u8) -> Result<HexCell, HexError> {
        if parent_res > cell.resolution() {
            return Err(HexError::ResolutionMismatch {
                a: cell.resolution(),
                b: parent_res,
            });
        }
        self.cell(&self.center(cell), parent_res)
    }

    /// Child cells at `child_res` whose centers fall within this cell.
    ///
    /// For `child_res = res + 1` this returns ~7 cells (aperture 7).
    pub fn children(&self, cell: HexCell, child_res: u8) -> Result<Vec<HexCell>, HexError> {
        let res = cell.resolution();
        if child_res < res || child_res > MAX_RESOLUTION {
            return Err(HexError::InvalidResolution(child_res));
        }
        if child_res == res {
            return Ok(vec![cell]);
        }
        // Children live within a bounded ring of the center's child cell:
        // each level expands the candidate radius by √7 ≈ 2.65 hexes.
        let levels = (child_res - res) as u32;
        let radius = (7f64.powf(levels as f64 / 2.0) * 1.5).ceil() as u32;
        let center_child = self.cell(&self.center(cell), child_res)?;
        let mut out = Vec::new();
        for candidate in crate::ops::disk(center_child, radius)? {
            if self.parent(candidate, res)? == cell {
                out.push(candidate);
            }
        }
        Ok(out)
    }
}

/// Rounds fractional axial coordinates to the nearest hex (cube rounding).
fn axial_round(qf: f64, rf: f64) -> (i64, i64) {
    let sf = -qf - rf;
    let mut q = qf.round();
    let mut r = rf.round();
    let s = sf.round();

    let dq = (q - qf).abs();
    let dr = (r - rf).abs();
    let ds = (s - sf).abs();

    if dq > dr && dq > ds {
        q = -r - s;
    } else if dr > ds {
        r = -q - s;
    }
    (q as i64, r as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_kernel::haversine_m;

    #[test]
    fn edge_lengths_match_h3_published_averages() {
        let g = HexGrid::new();
        // (resolution, H3 average edge length in meters)
        for (res, expected) in [
            (6u8, 3_229.0),
            (7, 1_220.6),
            (8, 461.4),
            (9, 174.4),
            (10, 65.9),
        ] {
            let e = g.edge_length_m(res).unwrap();
            assert!(
                (e - expected).abs() / expected < 0.01,
                "res {res}: {e} vs {expected}"
            );
        }
        assert!(g.edge_length_m(16).is_err());
    }

    #[test]
    fn cell_center_round_trip() {
        let g = HexGrid::new();
        let p = GeoPoint::new(11.97, 57.69); // Gothenburg
        for res in [6u8, 8, 9, 10] {
            let c = g.cell(&p, res).unwrap();
            let back = g.cell(&g.center(c), res).unwrap();
            assert_eq!(back, c, "res {res}");
        }
    }

    #[test]
    fn center_is_within_one_circumradius() {
        let g = HexGrid::new();
        let p = GeoPoint::new(23.55, 37.95);
        for res in [7u8, 9, 10] {
            let c = g.cell(&p, res).unwrap();
            let center = g.center(c);
            let d = haversine_m(&p, &center);
            // Mercator inflation makes the ground cell smaller than nominal,
            // so the nominal edge length is a safe upper bound.
            let max = g.edge_length_m(res).unwrap();
            assert!(d <= max, "res {res}: {d} > {max}");
        }
    }

    #[test]
    fn distinct_points_in_distinct_cells_at_fine_res() {
        let g = HexGrid::new();
        let a = GeoPoint::new(10.0, 56.0);
        let b = GeoPoint::new(10.1, 56.0); // ~6.2 km apart
        assert_ne!(g.cell(&a, 10).unwrap(), g.cell(&b, 10).unwrap());
        // At res 0 (edge ~1100 km) they share a cell.
        assert_eq!(g.cell(&a, 0).unwrap(), g.cell(&b, 0).unwrap());
    }

    #[test]
    fn grid_distance_properties() {
        let g = HexGrid::new();
        let a = g.cell(&GeoPoint::new(10.0, 56.0), 8).unwrap();
        let b = g.cell(&GeoPoint::new(10.3, 56.1), 8).unwrap();
        let d_ab = g.grid_distance(a, b).unwrap();
        let d_ba = g.grid_distance(b, a).unwrap();
        assert_eq!(d_ab, d_ba);
        assert_eq!(g.grid_distance(a, a).unwrap(), 0);
        assert!(d_ab > 0);
        let c9 = g.cell(&GeoPoint::new(10.0, 56.0), 9).unwrap();
        assert!(g.grid_distance(a, c9).is_err());
    }

    #[test]
    fn grid_distance_scales_with_resolution() {
        let g = HexGrid::new();
        let p1 = GeoPoint::new(10.0, 56.0);
        let p2 = GeoPoint::new(10.5, 56.0);
        let d8 = g
            .grid_distance(g.cell(&p1, 8).unwrap(), g.cell(&p2, 8).unwrap())
            .unwrap();
        let d9 = g
            .grid_distance(g.cell(&p1, 9).unwrap(), g.cell(&p2, 9).unwrap())
            .unwrap();
        let ratio = d9 as f64 / d8 as f64;
        assert!((ratio - 7f64.sqrt()).abs() < 0.35, "ratio {ratio}");
    }

    #[test]
    fn parent_contains_child_center() {
        let g = HexGrid::new();
        let p = GeoPoint::new(11.5, 55.3);
        let child = g.cell(&p, 10).unwrap();
        let parent = g.parent(child, 9).unwrap();
        assert_eq!(parent.resolution(), 9);
        // The parent of the child's center cell must be itself.
        let center_cell = g.cell(&g.center(parent), 9).unwrap();
        assert_eq!(center_cell, parent);
        assert!(g.parent(parent, 10).is_err(), "parent res must be coarser");
    }

    #[test]
    fn children_count_is_about_seven() {
        let g = HexGrid::new();
        let cell = g.cell(&GeoPoint::new(12.6, 55.6), 8).unwrap();
        let kids = g.children(cell, 9).unwrap();
        assert!(
            (5..=9).contains(&kids.len()),
            "aperture-7 children: got {}",
            kids.len()
        );
        for k in &kids {
            assert_eq!(g.parent(*k, 8).unwrap(), cell);
        }
        assert_eq!(g.children(cell, 8).unwrap(), vec![cell]);
    }

    #[test]
    fn rejects_invalid_input() {
        let g = HexGrid::new();
        assert!(g.cell(&GeoPoint::new(181.0, 91.0), 9).is_err());
        assert!(g.cell(&GeoPoint::new(10.0, 50.0), 16).is_err());
    }

    #[test]
    fn axial_round_exact_centers() {
        assert_eq!(axial_round(0.0, 0.0), (0, 0));
        assert_eq!(axial_round(3.0, -2.0), (3, -2));
        assert_eq!(axial_round(2.4, 0.2), (2, 0));
    }
}
