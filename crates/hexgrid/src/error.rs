//! Error type for hex-grid operations.

use std::fmt;

/// Errors returned by hex-grid operations.
#[derive(Debug, Clone, PartialEq)]
pub enum HexError {
    /// Resolution outside `0..=15`.
    InvalidResolution(u8),
    /// Operation requires two cells of the same resolution.
    ResolutionMismatch {
        /// Resolution of the first operand.
        a: u8,
        /// Resolution of the second operand.
        b: u8,
    },
    /// The `u64` is not a valid packed cell id.
    InvalidCell(u64),
    /// Latitude/longitude outside the valid WGS84 range.
    InvalidCoordinate {
        /// Offending longitude.
        lon: f64,
        /// Offending latitude.
        lat: f64,
    },
    /// Axial coordinates exceed the 28-bit packing range.
    CoordinateOverflow,
    /// A polyfill would enumerate more cells than
    /// [`MAX_COVER_CELLS`](crate::cover::MAX_COVER_CELLS).
    CoverTooLarge {
        /// Estimated cell count of the requested cover.
        estimated: u64,
    },
}

impl fmt::Display for HexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HexError::InvalidResolution(r) => write!(f, "invalid resolution {r} (expected 0..=15)"),
            HexError::ResolutionMismatch { a, b } => {
                write!(f, "resolution mismatch: {a} vs {b}")
            }
            HexError::InvalidCell(id) => write!(f, "invalid cell id {id:#018x}"),
            HexError::InvalidCoordinate { lon, lat } => {
                write!(f, "invalid coordinate lon={lon} lat={lat}")
            }
            HexError::CoordinateOverflow => write!(f, "axial coordinate overflows packing range"),
            HexError::CoverTooLarge { estimated } => {
                write!(
                    f,
                    "cover would enumerate ~{estimated} cells (limit exceeded)"
                )
            }
        }
    }
}

impl std::error::Error for HexError {}
