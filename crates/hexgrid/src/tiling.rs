//! Spatial tiles: mapping fine cells onto coarse shards.
//!
//! `habit-engine` parallelizes the fit by partitioning the trip table
//! *spatially*: every cell belongs to exactly one **tile** (its ancestor
//! a fixed number of aperture-7 levels up), and tiles are assigned to
//! shards by a deterministic hash. Keys of both HABIT group-bys (`cl`
//! and `(lag_cl, cl)` keyed by the destination cell) then never straddle
//! shards, and the shard layout is a pure function of the cell id —
//! identical across runs, machines and thread counts.

use crate::cell::HexCell;
use crate::error::HexError;
use crate::grid::HexGrid;

/// Maps cells to coarse tiles and tiles to shard indices.
#[derive(Debug, Clone, Copy)]
pub struct TilePartitioner {
    grid: HexGrid,
    tile_res: u8,
    shards: usize,
}

/// How many aperture-7 levels above the working resolution a tile sits
/// by default: 3 levels ≈ 7³ = 343 cells per tile — coarse enough that
/// group-by work per tile amortizes, fine enough to spread a regional
/// dataset over many shards.
pub const DEFAULT_TILE_LEVELS_UP: u8 = 3;

impl TilePartitioner {
    /// Creates a partitioner for cells at `cell_res`, with tiles
    /// `levels_up` resolutions coarser (clamped at resolution 0) and
    /// `shards ≥ 1` shards.
    pub fn new(cell_res: u8, levels_up: u8, shards: usize) -> Self {
        Self {
            grid: HexGrid::new(),
            tile_res: cell_res.saturating_sub(levels_up),
            shards: shards.max(1),
        }
    }

    /// The tile resolution cells are coarsened to.
    pub fn tile_res(&self) -> u8 {
        self.tile_res
    }

    /// Number of shards tiles are spread over.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// The tile containing `cell` (its ancestor at the tile resolution).
    pub fn tile_of(&self, cell: HexCell) -> Result<HexCell, HexError> {
        if cell.resolution() == self.tile_res {
            return Ok(cell);
        }
        self.grid.parent(cell, self.tile_res)
    }

    /// Deterministic shard index of `cell`: a splitmix64 finalizer over
    /// the tile id, reduced modulo the shard count. Stable across runs
    /// and platforms.
    pub fn shard_of(&self, cell: HexCell) -> Result<usize, HexError> {
        let tile = self.tile_of(cell)?;
        Ok((splitmix64(tile.raw()) % self.shards as u64) as usize)
    }
}

/// The splitmix64 finalizer — a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_kernel::GeoPoint;

    fn cell_at(lon: f64, lat: f64, res: u8) -> HexCell {
        HexGrid::new().cell(&GeoPoint::new(lon, lat), res).unwrap()
    }

    #[test]
    fn tile_is_ancestor_and_shared_by_near_cells() {
        let p = TilePartitioner::new(9, DEFAULT_TILE_LEVELS_UP, 8);
        assert_eq!(p.tile_res(), 6);
        let a = cell_at(10.000, 56.000, 9);
        let b = cell_at(10.001, 56.000, 9); // ~60 m away, same coarse tile
        assert_eq!(p.tile_of(a).unwrap().resolution(), 6);
        assert_eq!(p.tile_of(a).unwrap(), p.tile_of(b).unwrap());
        assert_eq!(p.shard_of(a).unwrap(), p.shard_of(b).unwrap());
    }

    #[test]
    fn shard_assignment_is_deterministic_and_bounded() {
        let p = TilePartitioner::new(9, 3, 5);
        for i in 0..50 {
            let c = cell_at(10.0 + i as f64 * 0.05, 56.0, 9);
            let s = p.shard_of(c).unwrap();
            assert!(s < 5);
            assert_eq!(s, p.shard_of(c).unwrap());
        }
    }

    #[test]
    fn distant_tiles_spread_over_shards() {
        let p = TilePartitioner::new(9, 2, 4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..40 {
            let c = cell_at(5.0 + i as f64 * 0.8, 50.0 + (i % 7) as f64, 9);
            seen.insert(p.shard_of(c).unwrap());
        }
        assert!(seen.len() >= 3, "only shards {seen:?} used");
    }

    #[test]
    fn clamps_at_resolution_zero_and_one_shard() {
        let p = TilePartitioner::new(2, 9, 0);
        assert_eq!(p.tile_res(), 0);
        assert_eq!(p.num_shards(), 1);
        let c = cell_at(10.0, 56.0, 2);
        assert_eq!(p.shard_of(c).unwrap(), 0);
        // A cell already at the tile resolution is its own tile.
        let t = cell_at(10.0, 56.0, 0);
        assert_eq!(TilePartitioner::new(0, 0, 3).tile_of(t).unwrap(), t);
    }
}
