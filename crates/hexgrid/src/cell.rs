//! Packed hexagonal cell identifiers.

use crate::error::HexError;
use std::fmt;
use std::str::FromStr;

/// Bit layout of a packed cell id (most- to least-significant):
/// `[tag:4][res:4][q_zigzag:28][r_zigzag:28]`.
const TAG: u64 = 0x8;
const TAG_SHIFT: u32 = 60;
const RES_SHIFT: u32 = 56;
const Q_SHIFT: u32 = 28;
const COORD_MASK: u64 = (1 << 28) - 1;

/// Maximum absolute axial coordinate representable in 28 zig-zag bits.
pub(crate) const MAX_ABS_COORD: i64 = (1 << 27) - 1;

/// A cell of the hierarchical hexagonal grid, packed into a `u64`.
///
/// Cells are identified by their resolution (0..=15) and axial lattice
/// coordinates `(q, r)`. The packed form sorts arbitrarily but hashes and
/// compares cheaply, making it suitable as a graph node key — exactly how
/// the paper uses H3 indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HexCell(u64);

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

impl HexCell {
    /// Packs resolution and axial coordinates into a cell id.
    pub fn from_axial(res: u8, q: i64, r: i64) -> Result<Self, HexError> {
        if res > 15 {
            return Err(HexError::InvalidResolution(res));
        }
        if q.abs() > MAX_ABS_COORD || r.abs() > MAX_ABS_COORD {
            return Err(HexError::CoordinateOverflow);
        }
        let packed = (TAG << TAG_SHIFT)
            | ((res as u64) << RES_SHIFT)
            | (zigzag_encode(q) << Q_SHIFT)
            | zigzag_encode(r);
        Ok(HexCell(packed))
    }

    /// Reconstructs a cell from its raw `u64`, validating the layout.
    pub fn from_raw(raw: u64) -> Result<Self, HexError> {
        let cell = HexCell(raw);
        if raw >> TAG_SHIFT != TAG || cell.resolution() > 15 {
            return Err(HexError::InvalidCell(raw));
        }
        Ok(cell)
    }

    /// The raw packed id.
    #[inline]
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Grid resolution of this cell (0 = coarsest, 15 = finest).
    #[inline]
    pub fn resolution(&self) -> u8 {
        ((self.0 >> RES_SHIFT) & 0xF) as u8
    }

    /// Axial `q` coordinate.
    #[inline]
    pub fn q(&self) -> i64 {
        zigzag_decode((self.0 >> Q_SHIFT) & COORD_MASK)
    }

    /// Axial `r` coordinate.
    #[inline]
    pub fn r(&self) -> i64 {
        zigzag_decode(self.0 & COORD_MASK)
    }

    /// Axial coordinates `(q, r)`.
    #[inline]
    pub fn axial(&self) -> (i64, i64) {
        (self.q(), self.r())
    }

    /// Cube `s` coordinate (`-q - r`), useful for hex arithmetic.
    #[inline]
    pub fn s(&self) -> i64 {
        -self.q() - self.r()
    }
}

impl fmt::Display for HexCell {
    /// Displays as 16 hex digits, visually similar to H3 ids.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl FromStr for HexCell {
    type Err = HexError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let raw = u64::from_str_radix(s, 16).map_err(|_| HexError::InvalidCell(0))?;
        HexCell::from_raw(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trip() {
        for v in [
            -5_000_000i64,
            -1,
            0,
            1,
            42,
            7_777_777,
            MAX_ABS_COORD,
            -MAX_ABS_COORD,
        ] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        for (res, q, r) in [
            (0u8, 0i64, 0i64),
            (9, 12345, -9876),
            (15, -MAX_ABS_COORD, MAX_ABS_COORD),
        ] {
            let c = HexCell::from_axial(res, q, r).unwrap();
            assert_eq!(c.resolution(), res);
            assert_eq!(c.q(), q);
            assert_eq!(c.r(), r);
            assert_eq!(c.s(), -q - r);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            HexCell::from_axial(16, 0, 0),
            Err(HexError::InvalidResolution(16))
        );
        assert_eq!(
            HexCell::from_axial(5, MAX_ABS_COORD + 1, 0),
            Err(HexError::CoordinateOverflow)
        );
        assert!(HexCell::from_raw(0).is_err(), "missing tag bits");
    }

    #[test]
    fn display_parse_round_trip() {
        let c = HexCell::from_axial(9, 4242, -17).unwrap();
        let s = c.to_string();
        assert_eq!(s.len(), 16);
        let back: HexCell = s.parse().unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn distinct_cells_distinct_ids() {
        let a = HexCell::from_axial(9, 1, 2).unwrap();
        let b = HexCell::from_axial(9, 2, 1).unwrap();
        let c = HexCell::from_axial(10, 1, 2).unwrap();
        assert_ne!(a.raw(), b.raw());
        assert_ne!(a.raw(), c.raw());
    }
}
