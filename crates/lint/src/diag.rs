//! Diagnostics: the findings lints emit, their rustc-style rendering,
//! and the machine-readable JSON report.
//!
//! The JSON writer is hand-rolled (the crate is dependency-free so the
//! whole workspace — including this crate — can be linted by it), and
//! every rendering is deterministic: diagnostics and suppressions are
//! sorted by `(file, line, col, lint)` before output, so the committed
//! `reports/lint.json` is a pure function of the scanned tree.

use std::fmt::Write as _;

/// One finding: a lint fired at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The lint's stable ID (`L001` …).
    pub lint: &'static str,
    /// Workspace-relative path (forward slashes) of the file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// 1-based column of the finding.
    pub col: u32,
    /// What is wrong, concretely, at this site.
    pub message: String,
    /// How to fix it (rendered as a `= note:` line).
    pub note: String,
}

/// One applied suppression: a well-formed `habit-lint: allow` directive
/// that silenced at least one diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The silenced lint's ID.
    pub lint: String,
    /// Workspace-relative path of the directive.
    pub file: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// The written reason (mandatory; audited by L005).
    pub reason: String,
}

/// The outcome of a whole-tree scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsilenced findings, sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// Applied suppressions, sorted.
    pub suppressions: Vec<Suppression>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts diagnostics and suppressions into the canonical order.
    pub fn canonicalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            key(&a.file, a.line, a.col, a.lint).cmp(&key(&b.file, b.line, b.col, b.lint))
        });
        self.suppressions.sort_by(|a, b| {
            key(&a.file, a.line, 0, &a.lint).cmp(&key(&b.file, b.line, 0, &b.lint))
        });
    }

    /// Renders every diagnostic rustc-style, plus a one-line summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}", render_diagnostic(d));
        }
        let _ = writeln!(
            out,
            "habit-lint: {} violation{} ({} suppression{}) in {} files",
            self.diagnostics.len(),
            plural(self.diagnostics.len()),
            self.suppressions.len(),
            plural(self.suppressions.len()),
            self.files_scanned,
        );
        out
    }

    /// Renders the machine-readable report (`habit-lint-report/v1`).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": \"habit-lint-report/v1\",\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"violations\": {},", self.diagnostics.len());
        let _ = writeln!(out, "  \"suppression_count\": {},", self.suppressions.len());
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
                json_str(d.lint),
                json_str(&d.file),
                d.line,
                d.col,
                json_str(&d.message),
            );
        }
        if self.diagnostics.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"suppressions\": [");
        for (i, s) in self.suppressions.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(&s.lint),
                json_str(&s.file),
                s.line,
                json_str(&s.reason),
            );
        }
        if self.suppressions.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

/// Renders one diagnostic in rustc's `warning[ID]` shape.
pub fn render_diagnostic(d: &Diagnostic) -> String {
    format!(
        "warning[{id}]: {msg}\n  --> {file}:{line}:{col}\n   = note: {note}",
        id = d.lint,
        msg = d.message,
        file = d.file,
        line = d.line,
        col = d.col,
        note = d.note,
    )
}

fn key<'a>(file: &'a str, line: u32, col: u32, lint: &'a str) -> (&'a str, u32, u32, &'a str) {
    (file, line, col, lint)
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            diagnostics: vec![
                Diagnostic {
                    lint: "L003",
                    file: "b.rs".into(),
                    line: 2,
                    col: 5,
                    message: "float".into(),
                    note: "use total_cmp".into(),
                },
                Diagnostic {
                    lint: "L001",
                    file: "a.rs".into(),
                    line: 9,
                    col: 1,
                    message: "unordered".into(),
                    note: "sort".into(),
                },
            ],
            suppressions: vec![Suppression {
                lint: "L001".into(),
                file: "c.rs".into(),
                line: 4,
                reason: "order-free: feeds a membership set".into(),
            }],
            files_scanned: 3,
        };
        r.canonicalize();
        r
    }

    #[test]
    fn human_rendering_is_rustc_style_and_sorted() {
        let text = sample().render_human();
        let a = text.find("a.rs:9:1").expect("a.rs diagnostic rendered");
        let b = text.find("b.rs:2:5").expect("b.rs diagnostic rendered");
        assert!(a < b, "diagnostics sorted by file");
        assert!(text.contains("warning[L001]: unordered"));
        assert!(text.contains("= note: sort"));
        assert!(text.contains("2 violations (1 suppression) in 3 files"));
    }

    #[test]
    fn json_report_shape() {
        let json = sample().render_json();
        assert!(json.contains("\"version\": \"habit-lint-report/v1\""));
        assert!(json.contains("\"violations\": 2"));
        assert!(json.contains("\"suppression_count\": 1"));
        assert!(json.contains("\"file\": \"a.rs\""));
        assert!(json.contains("\"reason\": \"order-free: feeds a membership set\""));
        // Deterministic.
        assert_eq!(json, sample().render_json());
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let json = Report::default().render_json();
        assert!(json.contains("\"diagnostics\": [],"));
        assert!(json.contains("\"suppressions\": []\n"));
        assert!(json.contains("\"violations\": 0"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), r#""a\"b\\c\n""#);
    }
}
