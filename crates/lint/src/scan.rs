//! Workspace scanning: file collection, `allow` directives, and the
//! analysis driver that runs every lint and applies suppressions.
//!
//! The walker collects every `.rs` file under the root except
//! `target/`, `vendor/` (external API stubs, not our code), `.git/`,
//! and `fixtures/` directories (seeded-violation test inputs), plus
//! the root `README.md` (the error-taxonomy lint checks its table).
//! Paths are sorted, so a scan is deterministic.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, Report, Suppression};
use crate::lexer::{lex, Token};
use crate::lints;
use crate::registry;

/// Directory names the walker never descends into.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// A well-formed `// habit-lint: allow(Lxxx) -- reason` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The lint ID the directive silences.
    pub lint: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// The mandatory written reason.
    pub reason: String,
}

/// One lexed source file plus its parsed suppression directives.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// The full token stream (comments included).
    pub tokens: Vec<Token>,
    /// Well-formed allow directives, in line order.
    pub allows: Vec<Allow>,
    /// L005 diagnostics for malformed directives.
    pub bad_allows: Vec<Diagnostic>,
}

impl SourceFile {
    /// Lexes `src` into a file ready for linting.
    pub fn new(rel_path: String, src: &str) -> Self {
        let tokens = lex(src);
        let (allows, bad_allows) = parse_allows(&rel_path, &tokens);
        Self {
            rel_path,
            tokens,
            allows,
            bad_allows,
        }
    }
}

/// Everything a scan collected: lexed sources plus auxiliary texts
/// (currently the root `README.md`) the project-level lints read.
#[derive(Debug)]
pub struct Workspace {
    /// Lexed `.rs` files, sorted by path.
    pub files: Vec<SourceFile>,
    /// Raw auxiliary texts keyed by relative path.
    pub texts: BTreeMap<String, String>,
}

impl Workspace {
    /// The first file whose relative path ends with `suffix`.
    pub fn file_by_suffix(&self, suffix: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path.ends_with(suffix))
    }
}

/// Walks `root` and lexes every eligible file.
pub fn scan_root(root: &Path) -> io::Result<Workspace> {
    let mut paths = Vec::new();
    collect_rs(root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        let src = fs::read_to_string(p)?;
        files.push(SourceFile::new(rel(root, p), &src));
    }
    let mut texts = BTreeMap::new();
    let readme = root.join("README.md");
    if readme.is_file() {
        texts.insert("README.md".to_string(), fs::read_to_string(&readme)?);
    }
    Ok(Workspace { files, texts })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs every lint over the workspace, applies suppressions, and
/// returns the canonical report.
pub fn analyze(ws: &Workspace) -> Report {
    let mut raw: Vec<Diagnostic> = Vec::new();
    for file in &ws.files {
        raw.extend(lints::l001::run(file));
        raw.extend(lints::l002::run(file));
        raw.extend(lints::l003::run(file));
    }
    raw.extend(lints::l004::run(ws));

    // Apply suppressions: an allow silences diagnostics of its lint on
    // its own line or the line directly below it. L005 findings are
    // never suppressible — the audit trail must not audit itself away.
    let mut report = Report {
        files_scanned: ws.files.len(),
        ..Report::default()
    };
    let mut used: BTreeMap<(String, u32), bool> = BTreeMap::new();
    for file in &ws.files {
        for allow in &file.allows {
            used.insert((file.rel_path.clone(), allow.line), false);
        }
    }
    for d in raw {
        let allow = ws
            .files
            .iter()
            .find(|f| f.rel_path == d.file)
            .and_then(|f| {
                f.allows
                    .iter()
                    .find(|a| a.lint == d.lint && (a.line == d.line || a.line + 1 == d.line))
            });
        match allow {
            Some(a) => {
                used.insert((d.file.clone(), a.line), true);
                report.suppressions.push(Suppression {
                    lint: a.lint.clone(),
                    file: d.file.clone(),
                    line: a.line,
                    reason: a.reason.clone(),
                });
            }
            None => report.diagnostics.push(d),
        }
    }
    // L005: malformed directives, plus well-formed ones that silenced
    // nothing (dead suppressions hide real coverage).
    for file in &ws.files {
        report.diagnostics.extend(file.bad_allows.iter().cloned());
        for allow in &file.allows {
            if !used
                .get(&(file.rel_path.clone(), allow.line))
                .copied()
                .unwrap_or(false)
            {
                report.diagnostics.push(Diagnostic {
                    lint: "L005",
                    file: file.rel_path.clone(),
                    line: allow.line,
                    col: 1,
                    message: format!(
                        "allow({}) silences nothing — the violation it covered is gone",
                        allow.lint
                    ),
                    note: "delete the stale directive; suppressions must map 1:1 to live \
                           violations"
                        .to_string(),
                });
            }
        }
    }
    report.suppressions.dedup();
    report.canonicalize();
    report
}

/// Convenience: scan + analyze in one call.
pub fn check_root(root: &Path) -> io::Result<Report> {
    Ok(analyze(&scan_root(root)?))
}

/// Parses every `habit-lint:` directive in the comment stream.
fn parse_allows(rel_path: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        // A directive *starts* the comment; a mid-sentence mention of
        // the syntax (docs, this file) is not a directive.
        let Some(rest) = t.text.strip_prefix("habit-lint:") else {
            continue;
        };
        let directive = rest.trim();
        match parse_allow_body(directive) {
            Ok((lint, reason)) => {
                if registry::by_id(&lint).is_none() {
                    bad.push(bad_allow(
                        rel_path,
                        t,
                        format!("allow names unknown lint `{lint}`"),
                    ));
                } else if lint == "L005" {
                    bad.push(bad_allow(
                        rel_path,
                        t,
                        "L005 cannot be silenced — fix or delete the directive".to_string(),
                    ));
                } else {
                    allows.push(Allow {
                        lint,
                        line: t.line,
                        reason,
                    });
                }
            }
            Err(why) => bad.push(bad_allow(rel_path, t, why.to_string())),
        }
    }
    (allows, bad)
}

/// Parses `allow(Lxxx) -- reason`; the reason is mandatory.
fn parse_allow_body(s: &str) -> Result<(String, String), &'static str> {
    let rest = s
        .strip_prefix("allow(")
        .ok_or("directive must be `allow(Lxxx) -- reason`")?;
    let close = rest.find(')').ok_or("unclosed `allow(`")?;
    let lint = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim();
    let reason = tail
        .strip_prefix("--")
        .ok_or("bare allow: a `-- reason` is mandatory")?
        .trim();
    if reason.is_empty() {
        return Err("bare allow: a `-- reason` is mandatory");
    }
    Ok((lint, reason.to_string()))
}

fn bad_allow(rel_path: &str, t: &Token, message: String) -> Diagnostic {
    Diagnostic {
        lint: "L005",
        file: rel_path.to_string(),
        line: t.line,
        col: t.col,
        message,
        note: "the only silencing form is `// habit-lint: allow(Lxxx) -- reason`".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_parsing_accepts_the_canonical_form() {
        let f = SourceFile::new(
            "x.rs".into(),
            "// habit-lint: allow(L001) -- order-free membership set\nlet x = 1;\n",
        );
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].lint, "L001");
        assert_eq!(f.allows[0].reason, "order-free membership set");
        assert!(f.bad_allows.is_empty());
    }

    #[test]
    fn bare_and_unknown_allows_are_l005() {
        let f = SourceFile::new(
            "x.rs".into(),
            "// habit-lint: allow(L001)\n// habit-lint: allow(L999) -- nope\n\
             // habit-lint: allow(L005) -- meta\n// habit-lint: disallow(L001)\n",
        );
        assert!(f.allows.is_empty());
        assert_eq!(f.bad_allows.len(), 4);
        assert!(f.bad_allows[0].message.contains("bare allow"));
        assert!(f.bad_allows[1].message.contains("unknown lint"));
        assert!(f.bad_allows[2].message.contains("L005 cannot be silenced"));
        assert!(f.bad_allows[3].message.contains("must be"));
    }

    #[test]
    fn unused_allow_is_reported_dead() {
        let ws = Workspace {
            files: vec![SourceFile::new(
                "x.rs".into(),
                "// habit-lint: allow(L003) -- stale\nfn f() {}\n",
            )],
            texts: BTreeMap::new(),
        };
        let report = analyze(&ws);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].lint, "L005");
        assert!(report.diagnostics[0].message.contains("silences nothing"));
    }
}
