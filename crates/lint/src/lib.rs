//! `habit-lint` — the workspace's hand-rolled static-analysis pass.
//!
//! The repo's headline guarantee — models and `FitState` blobs
//! byte-identical at any shard/thread count — and its API contracts
//! (an auditable `unsafe` surface, a drift-free wire error taxonomy)
//! are enforced dynamically by proptests and golden files. This crate
//! makes them *statically inspectable*: a comment- and string-aware
//! lexer ([`lexer`]) plus a lightweight token scanner (no `syn`,
//! consistent with the workspace's no-registry, hand-rolled style)
//! drive a pinned registry of lints ([`registry::ALL`]):
//!
//! | ID | name |
//! |----|------|
//! | L001 | unordered-iteration-to-sink |
//! | L002 | unsafe-without-safety |
//! | L003 | float-ordering-hazard |
//! | L004 | error-taxonomy-drift |
//! | L005 | lint-suppression-audit |
//!
//! The `habit-lint` binary runs them over the whole workspace
//! (`--check` for CI, `--json` for the committed machine-readable
//! report); `LINTS.md` is generated from the registry. Silencing is
//! inline only — `// habit-lint: allow(Lxxx) -- reason` — and every
//! suppression is itself audited (L005) and committed to
//! `reports/lint.json`.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod diag;
pub mod lexer;
pub mod lints;
pub mod registry;
pub mod scan;

pub use diag::{Diagnostic, Report, Suppression};
pub use registry::{render_lints_md, Lint, ALL};
pub use scan::{analyze, check_root, scan_root, SourceFile, Workspace};
