//! A comment- and string-aware Rust lexer.
//!
//! `habit-lint` does not parse Rust — it scans token streams. The one
//! property every lint depends on is that *comments and string literals
//! are real tokens*, never mistaken for code: a `HashMap` mentioned in
//! a doc comment or an error message must not trip the determinism
//! lints, and a `// SAFETY:` comment must be visible to the
//! unsafe-audit lint. This module produces exactly that stream:
//! identifiers, numbers, punctuation, string/char literals, lifetimes,
//! and comments, each carrying its 1-based line and column.
//!
//! The lexer is intentionally forgiving: unterminated literals lex as
//! running to end-of-file instead of erroring, because the linter must
//! degrade gracefully on code that `rustc` itself would reject.

/// What a token is. Lints typically scan [`TokenKind::Ident`] /
/// [`TokenKind::Punct`] sequences and consult comments separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`let`, `unsafe`, `HashMap`, …).
    Ident,
    /// A numeric literal (`42`, `2.0`, `0x3f`).
    Number,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`),
    /// with its quotes/hashes stripped.
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`), without the leading quote.
    Lifetime,
    /// A single punctuation character (`.`, `:`, `{`, …).
    Punct,
    /// A `// …` comment, text after the slashes, trimmed.
    LineComment,
    /// A `/* … */` comment (nesting-aware), delimiters stripped.
    BlockComment,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification of the token.
    pub kind: TokenKind,
    /// The token's text (delimiters stripped for literals/comments).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// `true` for comment tokens (which code-pattern scans skip).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into a token stream. Never fails; malformed input
/// degrades to best-effort tokens.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
            _src: src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col),
                '"' => self.string(line, col),
                'r' if self.is_raw_string_start(0) => self.raw_string(line, col),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line, col);
                }
                'b' if self.peek(1) == Some('r') && self.is_raw_string_start(1) => {
                    self.bump();
                    self.raw_string(line, col);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal(line, col);
                }
                '\'' => self.quote(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text.trim().to_string(), line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text.trim().to_string(), line, col);
    }

    fn string(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push('\\');
                    text.push(esc);
                }
            } else if c == '"' {
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// Is `r"` or `r#…#"` starting at offset `at` (which points at `r`)?
    fn is_raw_string_start(&self, at: usize) -> bool {
        let mut i = at + 1;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        i > at && self.peek(i) == Some('"')
    }

    fn raw_string(&mut self, line: u32, col: u32) {
        self.bump(); // `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                // A closing quote must be followed by `hashes` hashes.
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        text.push(c);
                        self.bump();
                        continue 'outer;
                    }
                }
                self.bump();
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// A bare `'`: either a char literal (`'a'`, `'\n'`) or a lifetime
    /// (`'a`, `'static`). A quote followed by an identifier is a char
    /// literal only when the very next character closes it.
    fn quote(&mut self, line: u32, col: u32) {
        match self.peek(1) {
            Some('\\') => self.char_literal(line, col),
            Some(c) if c.is_alphanumeric() || c == '_' => {
                if self.peek(2) == Some('\'') {
                    self.char_literal(line, col);
                } else {
                    self.bump(); // quote
                    let mut text = String::new();
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Lifetime, text, line, col);
                }
            }
            _ => self.char_literal(line, col),
        }
    }

    fn char_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push('\\');
                    text.push(esc);
                }
            } else if c == '\'' {
                self.bump();
                break;
            } else if c == '\n' {
                break; // malformed; don't eat the rest of the file
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Char, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        // Raw identifiers (`r#match`) lex as the bare identifier.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            if let Some(c) = self.peek(2) {
                if c.is_alphabetic() || c == '_' {
                    self.bump();
                    self.bump();
                }
            }
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' {
                // Consume the dot only for a fractional part: `2.0` is one
                // number, `0..n` and `2.sqrt()` are not.
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        text.push(c);
                        self.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("let x = a.iter();");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
        assert_eq!(toks[3], (TokenKind::Ident, "a".into()));
        assert_eq!(toks[4], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokenKind::Ident, "iter".into()));
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let toks = lex("// SAFETY: fine\nunsafe {}\n/* HashMap */");
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert_eq!(toks[0].text, "SAFETY: fine");
        assert_eq!(toks[1].kind, TokenKind::Ident);
        assert_eq!(toks[1].text, "unsafe");
        assert_eq!(toks.last().unwrap().kind, TokenKind::BlockComment);
        assert_eq!(toks.last().unwrap().text, "HashMap");
    }

    #[test]
    fn strings_hide_their_contents_from_code_scans() {
        let toks = kinds(r#"let s = "HashMap.iter() // not a comment";"#);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("HashMap"));
        // No Ident token leaked out of the string.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r##"let s = r#"a "quoted" b"#;"##);
        let s = toks.iter().find(|(k, _)| *k == TokenKind::Str).unwrap();
        assert_eq!(s.1, r#"a "quoted" b"#);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "x"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "\\n"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ tail */ x");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text.contains("inner"));
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("0..n 2.0 1.max(3)");
        assert_eq!(toks[0], (TokenKind::Number, "0".into()));
        assert_eq!(toks[1], (TokenKind::Punct, ".".into()));
        assert!(toks.contains(&(TokenKind::Number, "2.0".into())));
        assert!(toks.contains(&(TokenKind::Ident, "max".into())));
    }
}
