//! The pinned lint registry.
//!
//! Every lint `habit-lint` implements is declared here, exactly once,
//! with its stable ID, rationale, and silencing instructions — the same
//! "pinned table" discipline as `ErrorCode::ALL` in `habit-service`:
//! anything that adds, removes, or renames a lint changes this array
//! and the tests that pin it, so the registry can never drift
//! silently. `LINTS.md` is rendered from this table
//! ([`render_lints_md`]) and CI fails when the committed copy is stale.

/// One registered lint: identity plus the documentation that
/// `LINTS.md` renders.
#[derive(Debug, Clone, Copy)]
pub struct Lint {
    /// Stable ID (`L001` …). Never reused, never renumbered.
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line summary (README / diagnostics).
    pub summary: &'static str,
    /// Why the rule exists, in terms of the invariant it protects.
    pub rationale: &'static str,
    /// A minimal violating example.
    pub example: &'static str,
    /// How to fix — and when fixing is wrong, how to silence.
    pub fix: &'static str,
}

/// Every lint, in ID order. Pinned by `registry_is_pinned` in the
/// crate tests; golden fixture tests pin each lint's diagnostics.
pub const ALL: [Lint; 5] = [
    Lint {
        id: "L001",
        name: "unordered-iteration-to-sink",
        summary: "HashMap/HashSet iteration inside a codec/serialization/report module",
        rationale: "The repo's headline guarantee is that models and FitState blobs are \
                    byte-identical at any shard/thread count. Hash-map iteration order is \
                    arbitrary (and randomized across std versions), so iterating an unordered \
                    map or set on a path that produces serialized bytes or report rows makes \
                    the output depend on hasher state instead of the input set. Inside the \
                    pinned sink modules (codecs, wire/JSON/CSV serializers, report builders) \
                    every such iteration must be sorted or canonicalized first, or the \
                    container switched to a BTreeMap/BTreeSet.",
        example: "for (cell, stats) in &self.cells { out.extend(encode(cell, stats)); }",
        fix: "Sort the entries before producing bytes (`let mut v: Vec<_> = m.iter().collect(); \
              v.sort_by_key(…)`), call `canonicalize()`, or store a BTreeMap. If the iteration \
              provably cannot reach the sink, silence with \
              `// habit-lint: allow(L001) -- <why the order cannot matter>`.",
    },
    Lint {
        id: "L002",
        name: "unsafe-without-safety",
        summary: "an `unsafe` block, fn, or impl without a `// SAFETY:` comment",
        rationale: "The workspace is hand-rolled std-only Rust with exactly one audited unsafe \
                    surface (the scoped-lifetime transmute in `engine/src/pool.rs`). Every \
                    `unsafe` must state the proof obligation it discharges next to the code, \
                    so the audit surface stays greppable and reviewable; an unjustified \
                    `unsafe` is either unsound or undocumented, and both block review.",
        example: "let job: Job = unsafe { std::mem::transmute(job) }; // no SAFETY comment",
        fix: "Write a `// SAFETY:` comment within the 12 lines above the `unsafe` keyword \
              naming the invariant that makes it sound (what bounds the borrow, who \
              synchronizes, why the cast holds). There is no legitimate silencing: if the \
              justification cannot be written down, the unsafe should not be merged.",
    },
    Lint {
        id: "L003",
        name: "float-ordering-hazard",
        summary: "`partial_cmp(…).unwrap()` / `.expect(…)` instead of a total order on floats",
        rationale: "`partial_cmp` on floats is None for NaN, so `.unwrap()`/`.expect()` turns \
                    an unexpected NaN into a panic deep inside a sort — and under the \
                    pre-total_cmp idiom `-0.0 == 0.0`, leaving the final order of equal keys \
                    to the sort algorithm instead of the data. Deterministic paths (fit, \
                    codecs, reports) must use a total order: `f64::total_cmp` is panic-free \
                    and totally ordered, which is exactly the byte-identity discipline.",
        example: "values.sort_by(|a, b| a.partial_cmp(b).unwrap());",
        fix: "Use `a.total_cmp(b)` for float keys (panic-free, total). For genuinely partial \
              comparisons keep `partial_cmp` but handle `None` explicitly \
              (`unwrap_or(Ordering::Equal)` is a shim the lint accepts). Silence only with \
              `// habit-lint: allow(L003) -- <why NaN is impossible and order is pinned>`.",
    },
    Lint {
        id: "L004",
        name: "error-taxonomy-drift",
        summary: "the wire error-code taxonomy drifted between its pinned surfaces",
        rationale: "`ErrorCode` is part of the wire protocol and the CLI exit-code contract: \
                    clients match on the snake_case tokens and the README documents them. The \
                    taxonomy lives in four places that must agree — the `ErrorCode` enum + \
                    `ALL` array + `as_str` table in `service/src/error.rs`, the generic \
                    encode/decode in `service/src/wire.rs`, the `HabitError::code()` seam in \
                    `core/src/error.rs`, and the README error table. A variant missing from \
                    any of them is an error a client cannot decode or an exit code nobody \
                    documented.",
        example: "pub enum ErrorCode { …, Overloaded } // absent from ALL / as_str / README",
        fix: "Add the new code to `ErrorCode::ALL`, the `as_str` match, the doc-comment table \
              in `service/src/error.rs`, and regenerate the README \
              (`cargo run -p habit-bench --bin gen_readme`); map new `HabitError` variants in \
              `HabitError::code()`. Do not silence — the taxonomy has no legitimate drift.",
    },
    Lint {
        id: "L005",
        name: "lint-suppression-audit",
        summary: "a malformed, reasonless, or dead `habit-lint: allow` directive",
        rationale: "Inline `// habit-lint: allow(Lxxx) -- reason` is the *only* silencing \
                    mechanism, and the written reason is the point: every suppression is an \
                    auditable decision in the committed lint report, so the count can only \
                    move in review, never silently. A bare allow (no reason), an unknown lint \
                    ID, or an allow that no longer silences anything is itself a violation.",
        example: "// habit-lint: allow(L001)            (bare: no `-- reason`)",
        fix: "Write `// habit-lint: allow(L001) -- <one-line reason>` on the flagged line or \
              the line directly above it; delete directives whose violation is gone. L005 \
              itself cannot be silenced.",
    },
];

/// Looks a lint up by ID.
pub fn by_id(id: &str) -> Option<&'static Lint> {
    ALL.iter().find(|l| l.id == id)
}

/// Renders the generated `LINTS.md` from the registry. Deterministic;
/// CI fails when the committed file differs (`habit-lint --check-docs`).
pub fn render_lints_md() -> String {
    let mut out = String::new();
    out.push_str(
        "# habit-lint — the workspace lint registry\n\n\
         <!-- GENERATED FILE — do not edit by hand.\n\
         Regenerate:\n\n    cargo run -p habit-lint --release -- --gen-docs\n\n\
         CI runs `habit-lint --check-docs` and fails when this file is stale. -->\n\n\
         `habit-lint` is the repo's hand-rolled static-analysis pass: a comment- and\n\
         string-aware lexer plus a lightweight scanner (no `syn`) that enforces the\n\
         invariants the test suite can only probe dynamically — byte-identical\n\
         serialization, an auditable `unsafe` surface, and a drift-free wire error\n\
         taxonomy. It runs over the whole workspace in CI:\n\n\
         ```sh\n\
         cargo run -p habit-lint --release -- --check          # fail on any violation\n\
         cargo run -p habit-lint --release -- --json reports/lint.json\n\
         ```\n\n\
         Silencing: `// habit-lint: allow(Lxxx) -- reason` on the flagged line or the\n\
         line directly above it. The reason is mandatory, audited by L005, and every\n\
         suppression appears in the committed `reports/lint.json`, which CI diffs —\n\
         so the suppression count can never grow without showing up in review.\n\n",
    );
    for lint in &ALL {
        out.push_str(&format!("## {} `{}`\n\n", lint.id, lint.name));
        out.push_str(&format!("**{}.**\n\n", lint.summary));
        out.push_str(&format!("{}\n\n", lint.rationale));
        out.push_str(&format!("```rust\n{}\n```\n\n", lint.example));
        out.push_str(&format!("**Fix / silencing:** {}\n\n", lint.fix));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the registry: count and IDs, like `ErrorCode::ALL`.
    /// Adding a lint must be a deliberate change to this table.
    #[test]
    fn registry_is_pinned() {
        let ids: Vec<&str> = ALL.iter().map(|l| l.id).collect();
        assert_eq!(ids, ["L001", "L002", "L003", "L004", "L005"]);
        let names: Vec<&str> = ALL.iter().map(|l| l.name).collect();
        assert_eq!(
            names,
            [
                "unordered-iteration-to-sink",
                "unsafe-without-safety",
                "float-ordering-hazard",
                "error-taxonomy-drift",
                "lint-suppression-audit",
            ]
        );
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(by_id("L002").map(|l| l.name), Some("unsafe-without-safety"));
        assert!(by_id("L999").is_none());
    }

    #[test]
    fn lints_md_documents_every_lint() {
        let md = render_lints_md();
        assert!(md.starts_with("# habit-lint"));
        assert!(md.contains("GENERATED FILE"));
        for lint in &ALL {
            assert!(md.contains(lint.id), "LINTS.md must document {}", lint.id);
            assert!(md.contains(lint.name));
            assert!(md.contains(lint.rationale));
        }
        // Deterministic render.
        assert_eq!(md, render_lints_md());
    }
}
