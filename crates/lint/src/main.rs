//! The `habit-lint` binary: scan the workspace, print rustc-style
//! diagnostics, and gate CI.
//!
//! ```text
//! habit-lint [--root DIR] [--check] [--json [FILE]]
//!            [--gen-docs [FILE]] [--check-docs]
//! ```
//!
//! Exit codes follow the workspace taxonomy: `0` clean, `1` violations
//! found (with `--check`) or stale docs (with `--check-docs`), `2`
//! usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use habit_lint::{check_root, render_lints_md};

struct Args {
    root: PathBuf,
    check: bool,
    json: Option<PathBuf>,
    gen_docs: Option<PathBuf>,
    check_docs: bool,
}

fn usage() -> &'static str {
    "USAGE: habit-lint [--root DIR] [--check] [--json [FILE]] [--gen-docs [FILE]] [--check-docs]\n\
     \n\
     Runs the pinned lint registry (L001..L005, see LINTS.md) over every .rs file\n\
     under the root (vendor/, target/, and test fixtures excluded).\n\
     \n\
       --root DIR        scan DIR instead of the current directory\n\
       --check           exit 1 when any unsilenced violation is found\n\
       --json [FILE]     write the machine-readable report (default reports/lint.json)\n\
       --gen-docs [FILE] render LINTS.md from the lint registry (default LINTS.md)\n\
       --check-docs      exit 1 when the committed LINTS.md is stale"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        check: false,
        json: None,
        gen_docs: None,
        check_docs: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--root" => {
                i += 1;
                let dir = argv.get(i).ok_or("--root needs a directory")?;
                args.root = PathBuf::from(dir);
            }
            "--check" => args.check = true,
            "--json" => {
                // Optional value: a following non-flag token is the path.
                if let Some(v) = argv.get(i + 1).filter(|v| !v.starts_with("--")) {
                    args.json = Some(PathBuf::from(v));
                    i += 1;
                } else {
                    args.json = Some(PathBuf::from("reports/lint.json"));
                }
            }
            "--gen-docs" => {
                if let Some(v) = argv.get(i + 1).filter(|v| !v.starts_with("--")) {
                    args.gen_docs = Some(PathBuf::from(v));
                    i += 1;
                } else {
                    args.gen_docs = Some(PathBuf::from("LINTS.md"));
                }
            }
            "--check-docs" => args.check_docs = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("habit-lint: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    // Docs generation / freshness is root-relative like everything else.
    if let Some(path) = &args.gen_docs {
        let target = args.root.join(path);
        if let Err(e) = std::fs::write(&target, render_lints_md()) {
            eprintln!("habit-lint: cannot write {}: {e}", target.display());
            return ExitCode::from(1);
        }
        println!("wrote {}", target.display());
    }
    if args.check_docs {
        let target = args.root.join("LINTS.md");
        let committed = std::fs::read_to_string(&target).unwrap_or_default();
        if committed != render_lints_md() {
            eprintln!(
                "habit-lint: {} is stale — regenerate with `habit-lint --gen-docs`",
                target.display()
            );
            return ExitCode::from(1);
        }
        println!("LINTS.md is fresh");
    }
    if args.gen_docs.is_some() && args.json.is_none() && !args.check {
        return ExitCode::SUCCESS;
    }

    let report = match check_root(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("habit-lint: scan failed: {e}");
            return ExitCode::from(1);
        }
    };
    print!("{}", report.render_human());

    if let Some(path) = &args.json {
        let target = args.root.join(path);
        if let Err(e) = std::fs::write(&target, report.render_json()) {
            eprintln!("habit-lint: cannot write {}: {e}", target.display());
            return ExitCode::from(1);
        }
        println!("wrote {}", target.display());
    }

    if args.check && !report.diagnostics.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
