//! L003 `float-ordering-hazard`: `partial_cmp(…).unwrap()` or
//! `.expect(…)` instead of a total order.
//!
//! `partial_cmp` returns `None` for NaN, so unwrapping it plants a
//! panic inside sorts and min/max scans — and on the pre-`total_cmp`
//! idiom `-0.0 == 0.0`, the relative order of equal keys is left to
//! the sort algorithm instead of the data, which is exactly the kind
//! of nondeterminism the byte-identity guarantee forbids. The fix is
//! `f64::total_cmp`; an explicit `None` shim (`unwrap_or(…)`) is
//! accepted as a deliberate decision.

use crate::diag::Diagnostic;
use crate::lints::CodeView;
use crate::scan::SourceFile;

/// Runs L003 over one file.
pub fn run(file: &SourceFile) -> Vec<Diagnostic> {
    let code = CodeView::new(&file.tokens);
    let mut out = Vec::new();
    for i in 0..code.len() {
        if !code.is_ident(i, "partial_cmp") || !code.is_punct(i + 1, "(") {
            continue;
        }
        let Some(close) = code.matching_close(i + 1) else {
            continue;
        };
        if !code.is_punct(close + 1, ".") {
            continue;
        }
        let next = code.text(close + 2);
        if (next == "unwrap" || next == "expect") && code.is_punct(close + 3, "(") {
            let t = code.get(i).expect("checked ident");
            out.push(Diagnostic {
                lint: "L003",
                file: file.rel_path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`partial_cmp(…).{next}(…)` — partial order on floats, panics on NaN"
                ),
                note: "use `f64::total_cmp` (total and panic-free), or handle `None` \
                       explicitly with `unwrap_or` (LINTS.md#l003)"
                    .to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        run(&SourceFile::new("x.rs".into(), src))
    }

    #[test]
    fn unwrap_and_expect_are_flagged() {
        let d = lint(
            "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n\
             fn g(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).expect(\"finite\")); }",
        );
        assert_eq!(d.len(), 2);
        assert!(d[0].message.contains(".unwrap("));
        assert!(d[1].message.contains(".expect("));
    }

    #[test]
    fn total_cmp_and_shims_pass() {
        assert!(lint(
            "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }\n\
             fn g(a: f64, b: f64) -> Ordering { a.partial_cmp(&b).unwrap_or(Ordering::Equal) }"
        )
        .is_empty());
    }

    #[test]
    fn nested_arguments_do_not_confuse_the_matcher() {
        let d = lint("fn f() { x.partial_cmp(&g(a, (b, c))).unwrap(); }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn partial_cmp_returning_the_option_is_fine() {
        assert!(lint(
            "impl PartialOrd for S { fn partial_cmp(&self, o: &S) -> Option<Ordering> { \
             self.x.partial_cmp(&o.x) } }"
        )
        .is_empty());
    }
}
