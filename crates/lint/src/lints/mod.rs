//! The lint implementations, one module per registered lint ID.
//!
//! Each per-file lint works over a [`CodeView`]: the token stream with
//! comments filtered out, so code-pattern scans can never match inside
//! a comment or string while the raw stream (with comments) stays
//! available for the lints that need it (L002's `// SAFETY:` audit).

pub mod l001;
pub mod l002;
pub mod l003;
pub mod l004;

use crate::lexer::{Token, TokenKind};

/// A comment-free view over a file's tokens, preserving raw indices.
pub struct CodeView<'a> {
    tokens: &'a [Token],
    /// Indices of non-comment tokens in `tokens`.
    code: Vec<usize>,
}

impl<'a> CodeView<'a> {
    /// Builds the view over a full token stream.
    pub fn new(tokens: &'a [Token]) -> Self {
        let code = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        Self { tokens, code }
    }

    /// Number of code tokens.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` when the file has no code tokens.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The `i`-th code token.
    pub fn get(&self, i: usize) -> Option<&Token> {
        self.code.get(i).map(|&ri| &self.tokens[ri])
    }

    /// The raw-stream index of the `i`-th code token.
    pub fn raw_index(&self, i: usize) -> Option<usize> {
        self.code.get(i).copied()
    }

    /// The text of the `i`-th code token, or "" past the end.
    pub fn text(&self, i: usize) -> &str {
        self.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    /// `true` when code token `i` is an identifier equal to `s`.
    pub fn is_ident(&self, i: usize, s: &str) -> bool {
        self.get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
    }

    /// `true` when code token `i` is the punctuation `s`.
    pub fn is_punct(&self, i: usize, s: &str) -> bool {
        self.get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == s)
    }

    /// `true` when code token `i` is any identifier.
    pub fn is_any_ident(&self, i: usize) -> bool {
        self.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    /// `true` when code token `i` is a lifetime (`'a`).
    pub fn is_lifetime(&self, i: usize) -> bool {
        self.get(i).is_some_and(|t| t.kind == TokenKind::Lifetime)
    }

    /// Finds the matching close for the open delimiter at code index
    /// `open` (`(`, `[`, or `{`), returning the close's code index.
    pub fn matching_close(&self, open: usize) -> Option<usize> {
        let (o, c) = match self.text(open) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return None,
        };
        let mut depth = 0i32;
        for i in open..self.len() {
            if self.is_punct(i, o) {
                depth += 1;
            } else if self.is_punct(i, c) {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
        None
    }

    /// Skips an attribute (`#[…]`) starting at `i`; returns the index
    /// just past it, or `i` unchanged when there is none.
    pub fn skip_attr(&self, i: usize) -> usize {
        if self.is_punct(i, "#") && (self.is_punct(i + 1, "[") || self.is_punct(i + 1, "!")) {
            let open = if self.is_punct(i + 1, "[") {
                i + 1
            } else {
                i + 2
            };
            if let Some(close) = self.matching_close(open) {
                return close + 1;
            }
        }
        i
    }
}
