//! L001 `unordered-iteration-to-sink`: iterating a `HashMap`/`HashSet`
//! inside a codec/serialization/report module without an intervening
//! sort or canonicalization.
//!
//! This is the invariant behind the repo's byte-identical model and
//! `FitState` blobs: inside the pinned sink modules, bytes and report
//! rows must be a pure function of the input *set*, never of hasher
//! state. The analysis is a documented heuristic, not a type check:
//!
//! 1. A file is a **sink** when its path ends with one of the pinned
//!    [`SINK_SUFFIXES`], or when it implements the `Codec` trait.
//! 2. An identifier is **unordered** when the file declares it (via a
//!    `let` binding, struct field, or fn parameter) whose head
//!    (outermost) type or initializer path is a
//!    `HashMap`/`HashSet`/`FxHashMap`/`FxHashSet` — an ordered
//!    container *of* hash refs (`Vec<(u64, &FxHashSet<u64>)>`) is
//!    not unordered.
//! 3. An **iteration** over an unordered identifier —
//!    `x.iter()`/`.keys()`/`.values()`/`.drain()`/`for … in &x` — is a
//!    violation unless the same statement or the next one applies a
//!    canonicalizer (a `sort*` call, `canonicalize`, collecting into a
//!    `BTreeMap`/`BTreeSet`/`BinaryHeap`) or an order-insensitive
//!    reduction (`sum`, `count`, `min`/`max`, `all`/`any`, `product`).
//!
//! `for`-loop iterations get no lookahead absolution — a loop body can
//! do anything, so it must be restructured or carry an `allow` with a
//! written reason.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::lints::CodeView;
use crate::scan::SourceFile;

/// The pinned sink modules: every path producing serialized bytes,
/// wire/JSON/CSV output, or committed report rows.
pub const SINK_SUFFIXES: [&str; 23] = [
    "crates/aggdb/src/partial.rs",
    "crates/aggdb/src/hll.rs",
    "crates/aggdb/src/csv.rs",
    "crates/core/src/fitstate.rs",
    "crates/core/src/model.rs",
    "crates/core/src/graphgen.rs",
    "crates/mobgraph/src/graph.rs",
    "crates/mobgraph/src/csr.rs",
    "crates/mobgraph/src/codec.rs",
    "crates/fleet/src/manifest.rs",
    "crates/fleet/src/builder.rs",
    "crates/service/src/wire.rs",
    "crates/service/src/csvio.rs",
    "crates/service/src/admission.rs",
    "crates/obs/src/text.rs",
    "crates/obs/src/spanjson.rs",
    "crates/eval/src/json.rs",
    "crates/eval/src/report.rs",
    "crates/density/src/map.rs",
    "crates/density/src/render.rs",
    "crates/geo/src/geojson.rs",
    "crates/bench/src/reports.rs",
    "crates/bench/src/docs.rs",
];

const UNORDERED_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Calls that pin an order (or are insensitive to it) within the
/// lookahead window after an iteration.
const SANCTIONERS: [&str; 21] = [
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sort_by_cached_key",
    "sort_by_columns",
    "canonicalize",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "sum",
    "count",
    "min",
    "max",
    "min_by",
    "max_by",
    "all",
    "any",
    "product",
];

/// Runs L001 over one file.
pub fn run(file: &SourceFile) -> Vec<Diagnostic> {
    let code = CodeView::new(&file.tokens);
    if !is_sink(&file.rel_path, &code) {
        return Vec::new();
    }
    let unordered = unordered_names(&code);
    if unordered.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    method_iterations(file, &code, &unordered, &mut out);
    for_iterations(file, &code, &unordered, &mut out);
    out
}

fn is_sink(rel_path: &str, code: &CodeView<'_>) -> bool {
    if SINK_SUFFIXES.iter().any(|s| rel_path.ends_with(s)) {
        return true;
    }
    // Any file implementing the Codec trait produces bytes.
    (0..code.len()).any(|i| {
        code.is_ident(i, "impl") && code.is_ident(i + 1, "Codec") && code.is_ident(i + 2, "for")
    })
}

/// Collects identifiers the file declares with an unordered hash type:
/// `let` bindings, struct fields, and fn parameters. Scope-insensitive
/// by design — a shared name anywhere in the file taints the name.
///
/// Only the *head* (outermost) type decides: `m: FxHashMap<…>` and
/// `let m = FxHashMap::default()` taint, but an ordered container of
/// hash refs — `spans: Vec<(u64, &FxHashSet<u64>)>` — does not.
fn unordered_names(code: &CodeView<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..code.len() {
        // let [mut] NAME [: HEAD…] [= HEAD…] ;  — simple-identifier
        // patterns only. The annotation's head wins when present; an
        // unannotated binding falls back to the initializer's head
        // path (`FxHashMap::default()`).
        if code.is_ident(i, "let") {
            let mut j = i + 1;
            if code.is_ident(j, "mut") {
                j += 1;
            }
            if code.is_any_ident(j) {
                let annotated = code.is_punct(j + 1, ":") && !code.is_punct(j + 2, ":");
                let initialized = code.is_punct(j + 1, "=");
                if (annotated || initialized) && head_is_unordered(code, j + 2) {
                    names.insert(code.text(j).to_string());
                }
            }
        }
        // NAME : HEAD…  — struct fields and fn parameters share this
        // shape. The `::` guards reject paths (`x::y`) on both sides.
        if code.is_any_ident(i)
            && code.is_punct(i + 1, ":")
            && !code.is_punct(i + 2, ":")
            && (i == 0 || !code.is_punct(i - 1, ":"))
            && head_is_unordered(code, i + 2)
        {
            names.insert(code.text(i).to_string());
        }
    }
    names
}

/// Is the head type (or head expression path) starting at `start` an
/// unordered hash container? Skips `&`/`mut`/lifetimes, then walks one
/// leading path — any segment of `aggdb::fxhash::FxHashMap<…>` or
/// `FxHashMap::default()` matches; the `Vec` of `Vec<&FxHashSet<u64>>`
/// does not.
fn head_is_unordered(code: &CodeView<'_>, start: usize) -> bool {
    let mut i = start;
    while code.is_punct(i, "&") || code.is_ident(i, "mut") || code.is_lifetime(i) {
        i += 1;
    }
    while code.is_any_ident(i) {
        if UNORDERED_TYPES.contains(&code.text(i)) {
            return true;
        }
        if code.is_punct(i + 1, ":") && code.is_punct(i + 2, ":") {
            i += 3;
        } else {
            break;
        }
    }
    false
}

/// Flags `x.iter()` / `self.cells.values()` … over unordered names.
fn method_iterations(
    file: &SourceFile,
    code: &CodeView<'_>,
    unordered: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..code.len() {
        if !code.is_any_ident(i) || !unordered.contains(code.text(i)) {
            continue;
        }
        if !code.is_punct(i + 1, ".") {
            continue;
        }
        let method = code.text(i + 2);
        if !ITER_METHODS.contains(&method) || !code.is_punct(i + 3, "(") {
            continue;
        }
        if sanctioned_after(code, i + 3) {
            continue;
        }
        let t = code.get(i).expect("checked ident");
        out.push(diagnostic(
            file,
            t.line,
            t.col,
            format!(
                "iteration over unordered `{}` via `.{}()` in a serialization/report module",
                t.text, method
            ),
        ));
    }
}

/// Flags `for … in [&[mut]] path.to.map {` over unordered names.
fn for_iterations(
    file: &SourceFile,
    code: &CodeView<'_>,
    unordered: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..code.len() {
        if !code.is_ident(i, "for") {
            continue;
        }
        // Find the `in` of this for-loop (patterns carry no braces in
        // this codebase), then the `{` opening the body. Hitting `{`
        // or `;` first means this `for` was a trait bound or
        // `impl … for …`, not a loop.
        let Some(in_idx) = (i + 1..code.len().min(i + 40))
            .take_while(|&j| !code.is_punct(j, "{") && !code.is_punct(j, ";"))
            .find(|&j| code.is_ident(j, "in"))
        else {
            continue;
        };
        let Some(body) = (in_idx + 1..code.len().min(in_idx + 60)).find(|&j| code.is_punct(j, "{"))
        else {
            continue;
        };
        for j in in_idx + 1..body {
            if !code.is_any_ident(j) || !unordered.contains(code.text(j)) {
                continue;
            }
            // The identifier must be the iterated collection itself:
            // directly before the body brace (`for x in &map {`), not a
            // sub-expression like `0..map.len()` — method iterations are
            // rule 1's job.
            if j + 1 != body {
                continue;
            }
            let t = code.get(j).expect("checked ident");
            out.push(diagnostic(
                file,
                t.line,
                t.col,
                format!(
                    "`for … in` over unordered `{}` in a serialization/report module",
                    t.text
                ),
            ));
        }
    }
}

/// Looks ahead from the iteration call for a sanctioning token within
/// the current statement and the next one.
fn sanctioned_after(code: &CodeView<'_>, from: usize) -> bool {
    let mut depth = 0i32;
    let mut statements_ended = 0;
    for i in from..code.len().min(from + 250) {
        let t = code.text(i);
        match t {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    // Left the enclosing expression (closure body, match
                    // arm…): stop before sanctioning against unrelated code.
                    return false;
                }
            }
            ";" if depth == 0 => {
                statements_ended += 1;
                if statements_ended >= 2 {
                    return false;
                }
            }
            _ if SANCTIONERS.contains(&t) => return true,
            _ => {}
        }
    }
    false
}

fn diagnostic(file: &SourceFile, line: u32, col: u32, message: String) -> Diagnostic {
    Diagnostic {
        lint: "L001",
        file: file.rel_path.clone(),
        line,
        col,
        message,
        note: "hash iteration order is arbitrary: sort or canonicalize before bytes/report \
               rows are produced, or store a BTreeMap (LINTS.md#l001)"
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        run(&SourceFile::new(path.into(), src))
    }

    #[test]
    fn flags_iteration_in_sink_files_only() {
        let src = "fn f() { let m: FxHashMap<u64, u64> = FxHashMap::default(); \
                   for (k, v) in &m { emit(k, v); } }";
        assert_eq!(lint("crates/service/src/wire.rs", src).len(), 1);
        assert!(lint("crates/engine/src/shard.rs", src).is_empty());
    }

    #[test]
    fn codec_impl_makes_any_file_a_sink() {
        let src = "impl Codec for T {}\nfn f(map: HashMap<u8, u8>) { \
                   for x in map.values() { push(x); } }";
        let d = lint("crates/other/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`map`"));
    }

    #[test]
    fn sort_in_the_next_statement_sanctions() {
        let src = "impl Codec for T {}\nfn f(set: FxHashSet<u8>) { \
                   let mut v: Vec<&u8> = set.iter().collect(); \
                   v.sort_by(|a, b| a.cmp(b)); emit(&v); }";
        assert!(lint("x.rs", src).is_empty());
    }

    #[test]
    fn order_insensitive_reduction_sanctions() {
        let src = "impl Codec for T {}\nfn f(m: FxHashMap<u8, u64>) -> u64 { \
                   m.values().sum() }";
        assert!(lint("x.rs", src).is_empty());
    }

    #[test]
    fn for_loops_get_no_lookahead_absolution() {
        let src = "impl Codec for T {}\nfn f(m: FxHashMap<u8, u64>) { \
                   for (k, v) in &m { out.push((k, v)); } out.sort(); }";
        assert_eq!(lint("x.rs", src).len(), 1);
    }

    #[test]
    fn names_in_comments_and_strings_do_not_taint() {
        let src = "impl Codec for T {}\n// a HashMap would be wrong here\n\
                   fn f(v: Vec<u8>) { let s = \"HashMap\"; for x in &v { emit(x); } }";
        assert!(lint("x.rs", src).is_empty());
    }

    #[test]
    fn loop_bounds_over_len_are_not_iterations() {
        let src = "impl Codec for T {}\nfn f(m: HashMap<u8, u8>) { \
                   for i in 0..m.len() { emit(i); } }";
        assert!(lint("x.rs", src).is_empty());
    }

    #[test]
    fn ordered_container_of_hash_refs_is_not_tainted() {
        let src = "impl Codec for T {}\nfn f(m: FxHashMap<u64, FxHashSet<u64>>) { \
                   let mut spans: Vec<(u64, &FxHashSet<u64>)> = \
                   m.iter().map(|(t, s)| (*t, s)).collect(); \
                   spans.sort_unstable_by_key(|(t, _)| *t); \
                   for (t, s) in spans { emit(t, s); } }";
        assert!(lint("x.rs", src).is_empty());
    }

    #[test]
    fn unannotated_default_initializer_taints() {
        let src = "impl Codec for T {}\nfn f() { let m = FxHashMap::default(); \
                   for (k, v) in &m { emit(k, v); } }";
        assert_eq!(lint("x.rs", src).len(), 1);
    }

    #[test]
    fn field_access_iteration_is_flagged() {
        let src = "impl Codec for T {}\nstruct S { cells: FxHashMap<u64, u64> }\n\
                   fn f(s: &S) { for (k, v) in &s.cells { emit(k, v); } }";
        let d = lint("x.rs", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`cells`"));
    }
}
