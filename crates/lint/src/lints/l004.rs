//! L004 `error-taxonomy-drift`: the wire error-code taxonomy must
//! agree across every pinned surface.
//!
//! The taxonomy's surfaces:
//!
//! 1. `crates/service/src/error.rs` — the `ErrorCode` enum, the
//!    `ALL` array, and the `as_str` token table must cover the same
//!    variants, with pairwise-distinct tokens;
//! 2. `crates/service/src/wire.rs` — errors must be encoded/decoded
//!    generically (`as_str` + `ErrorCode::parse`), so no code can be
//!    un-decodable on the wire;
//! 3. `crates/core/src/error.rs` — every `HabitError` variant must map
//!    to a known wire token in `HabitError::code()`, with no wildcard
//!    arm hiding unmapped variants;
//! 4. `README.md` — the generated error table must document every
//!    token.
//!
//! When the scanned tree has no `crates/service/src/error.rs` the lint
//! is inert, so `habit-lint` still works on arbitrary trees.

use crate::diag::Diagnostic;
use crate::lints::CodeView;
use crate::scan::{SourceFile, Workspace};

/// Runs L004 over the whole workspace.
pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let Some(service_err) = ws.file_by_suffix("crates/service/src/error.rs") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let code = CodeView::new(&service_err.tokens);

    let variants = enum_variants(&code, "ErrorCode");
    let all = all_entries(&code);
    let tokens = match_arms(&code, "as_str", "ErrorCode");

    for (v, line) in &variants {
        if !all.iter().any(|(a, _)| a == v) {
            out.push(diag(
                service_err,
                *line,
                format!("ErrorCode::{v} is missing from ErrorCode::ALL"),
                "add the variant to the ALL array (documentation order)",
            ));
        }
        if !tokens.iter().any(|(t, _, _)| t == v) {
            out.push(diag(
                service_err,
                *line,
                format!("ErrorCode::{v} has no wire token in as_str()"),
                "add a snake_case token arm to the as_str match",
            ));
        }
    }
    for (a, line) in &all {
        if !variants.iter().any(|(v, _)| v == a) {
            out.push(diag(
                service_err,
                *line,
                format!("ErrorCode::ALL lists `{a}`, which is not an ErrorCode variant"),
                "remove the stale entry from ALL",
            ));
        }
    }
    // Tokens must be pairwise distinct — two codes sharing a wire
    // token are indistinguishable to clients.
    for (i, (v, tok, line)) in tokens.iter().enumerate() {
        if tokens[..i].iter().any(|(_, t, _)| t == tok) {
            out.push(diag(
                service_err,
                *line,
                format!("wire token `{tok}` (ErrorCode::{v}) is not unique"),
                "every code needs a distinct snake_case token",
            ));
        }
    }

    // wire.rs must handle the taxonomy generically: encode through
    // `as_str`, decode through `ErrorCode::parse` — then every token,
    // present and future, round-trips.
    if let Some(wire) = ws.file_by_suffix("crates/service/src/wire.rs") {
        let wcode = CodeView::new(&wire.tokens);
        let has_parse = (0..wcode.len()).any(|i| {
            wcode.is_ident(i, "ErrorCode")
                && wcode.is_punct(i + 1, ":")
                && wcode.is_punct(i + 2, ":")
                && wcode.is_ident(i + 3, "parse")
        });
        let has_as_str = (0..wcode.len()).any(|i| wcode.is_ident(i, "as_str"));
        if !has_parse || !has_as_str {
            out.push(diag(
                wire,
                1,
                "wire.rs does not route error codes through ErrorCode::parse/as_str".to_string(),
                "decode error codes with ErrorCode::parse and encode with as_str so the \
                 taxonomy cannot drift from the wire",
            ));
        }
    }

    // Every HabitError variant must map onto a known wire token.
    if let Some(core_err) = ws.file_by_suffix("crates/core/src/error.rs") {
        let ccode = CodeView::new(&core_err.tokens);
        let habit_variants = enum_variants(&ccode, "HabitError");
        let arms = match_arms(&ccode, "code", "HabitError");
        for (v, line) in &habit_variants {
            match arms.iter().find(|(av, _, _)| av == v) {
                None => out.push(diag(
                    core_err,
                    *line,
                    format!("HabitError::{v} has no arm in HabitError::code()"),
                    "map the variant to a wire token so the service layer can classify it",
                )),
                Some((_, tok, aline)) => {
                    if !tokens.iter().any(|(_, t, _)| t == tok) {
                        out.push(diag(
                            core_err,
                            *aline,
                            format!(
                                "HabitError::{v} maps to `{tok}`, which is not an ErrorCode \
                                 wire token"
                            ),
                            "use one of the tokens from ErrorCode::as_str",
                        ));
                    }
                }
            }
        }
        if let Some(line) = wildcard_arm(&ccode, "code") {
            out.push(diag(
                core_err,
                line,
                "HabitError::code() has a wildcard arm".to_string(),
                "enumerate every variant explicitly so a new variant cannot silently \
                 inherit a wrong code",
            ));
        }
    }

    // The README error table must document every token.
    if let Some(readme) = ws.texts.get("README.md") {
        let header_line = readme
            .lines()
            .position(|l| l.contains("| code | exit |"))
            .map(|i| i as u32 + 1)
            .unwrap_or(1);
        for (v, tok, _) in &tokens {
            let row = format!("| `{tok}` |");
            if !readme.contains(&row) {
                out.push(Diagnostic {
                    lint: "L004",
                    file: "README.md".to_string(),
                    line: header_line,
                    col: 1,
                    message: format!("error table lacks a row for `{tok}` (ErrorCode::{v})"),
                    note: "document the code in the service error table and regenerate the \
                           README (gen_readme)"
                        .to_string(),
                });
            }
        }
    }
    out
}

fn diag(file: &SourceFile, line: u32, message: String, note: &str) -> Diagnostic {
    Diagnostic {
        lint: "L004",
        file: file.rel_path.clone(),
        line,
        col: 1,
        message,
        note: note.to_string(),
    }
}

/// Variant names (with lines) of `enum NAME { … }`.
fn enum_variants(code: &CodeView<'_>, name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let Some(open) = (0..code.len()).find(|&i| {
        code.is_ident(i, "enum") && code.is_ident(i + 1, name) && code.is_punct(i + 2, "{")
    }) else {
        return out;
    };
    let open = open + 2;
    let Some(close) = code.matching_close(open) else {
        return out;
    };
    let mut i = open + 1;
    let mut expecting_variant = true;
    while i < close {
        let skipped = code.skip_attr(i);
        if skipped != i {
            i = skipped;
            continue;
        }
        if expecting_variant && code.is_any_ident(i) {
            let t = code.get(i).expect("in range");
            out.push((t.text.clone(), t.line));
            expecting_variant = false;
            i += 1;
            continue;
        }
        // Skip variant payloads `{ … }` / `( … )` wholesale.
        if code.is_punct(i, "{") || code.is_punct(i, "(") {
            i = code.matching_close(i).map(|c| c + 1).unwrap_or(close);
            continue;
        }
        if code.is_punct(i, ",") {
            expecting_variant = true;
        }
        i += 1;
    }
    out
}

/// `(variant, "token", line)` triples from the match inside `fn FNAME`,
/// where arms look like `ENUM::Variant [payload] => "token"`.
fn match_arms(code: &CodeView<'_>, fname: &str, enum_name: &str) -> Vec<(String, String, u32)> {
    let mut out = Vec::new();
    let Some(fn_at) =
        (0..code.len()).find(|&i| code.is_ident(i, "fn") && code.is_ident(i + 1, fname))
    else {
        return out;
    };
    let Some(body_open) = (fn_at..code.len()).find(|&i| code.is_punct(i, "{")) else {
        return out;
    };
    let body_close = code.matching_close(body_open).unwrap_or(code.len());
    let mut i = body_open;
    while i < body_close {
        if code.is_ident(i, enum_name) && code.is_punct(i + 1, ":") && code.is_punct(i + 2, ":") {
            let variant_at = i + 3;
            if code.is_any_ident(variant_at) {
                let t = code.get(variant_at).expect("in range");
                let (variant, line) = (t.text.clone(), t.line);
                // Seek `=>` past any payload pattern, then a string.
                let mut j = variant_at + 1;
                if code.is_punct(j, "{") || code.is_punct(j, "(") {
                    j = code.matching_close(j).map(|c| c + 1).unwrap_or(j + 1);
                }
                if code.is_punct(j, "=") && code.is_punct(j + 1, ">") {
                    if let Some(t) = code.get(j + 2) {
                        if t.kind == crate::lexer::TokenKind::Str {
                            out.push((variant, t.text.clone(), line));
                        }
                    }
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Line of a `_ =>` arm inside `fn FNAME`, if any.
fn wildcard_arm(code: &CodeView<'_>, fname: &str) -> Option<u32> {
    let fn_at = (0..code.len()).find(|&i| code.is_ident(i, "fn") && code.is_ident(i + 1, fname))?;
    let body_open = (fn_at..code.len()).find(|&i| code.is_punct(i, "{"))?;
    let body_close = code.matching_close(body_open)?;
    (body_open..body_close).find_map(|i| {
        if code.is_ident(i, "_") && code.is_punct(i + 1, "=") && code.is_punct(i + 2, ">") {
            code.get(i).map(|t| t.line)
        } else {
            None
        }
    })
}

/// `ErrorCode::X` entries (with lines) of the `ALL: [ErrorCode; N]` array.
fn all_entries(code: &CodeView<'_>) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let Some(all_at) = (0..code.len()).find(|&i| {
        code.is_ident(i, "ALL") && code.is_punct(i + 1, ":") && code.is_punct(i + 2, "[")
    }) else {
        return out;
    };
    let Some(arr_open) =
        (all_at..code.len()).find(|&i| code.is_punct(i, "=") && code.is_punct(i + 1, "["))
    else {
        return out;
    };
    let arr_open = arr_open + 1;
    let close = code.matching_close(arr_open).unwrap_or(code.len());
    for i in arr_open..close {
        if code.is_ident(i, "ErrorCode")
            && code.is_punct(i + 1, ":")
            && code.is_punct(i + 2, ":")
            && code.is_any_ident(i + 3)
        {
            let t = code.get(i + 3).expect("in range");
            out.push((t.text.clone(), t.line));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn ws(files: Vec<(&str, &str)>, readme: Option<&str>) -> Workspace {
        let mut texts = BTreeMap::new();
        if let Some(r) = readme {
            texts.insert("README.md".to_string(), r.to_string());
        }
        Workspace {
            files: files
                .into_iter()
                .map(|(p, s)| SourceFile::new(p.into(), s))
                .collect(),
            texts,
        }
    }

    const CONSISTENT: &str = r#"
pub enum ErrorCode { Io, NoPath }
impl ErrorCode {
    pub const ALL: [ErrorCode; 2] = [ErrorCode::Io, ErrorCode::NoPath];
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Io => "io",
            ErrorCode::NoPath => "no_path",
        }
    }
}
"#;

    #[test]
    fn consistent_taxonomy_is_clean() {
        let w = ws(
            vec![
                ("crates/service/src/error.rs", CONSISTENT),
                (
                    "crates/service/src/wire.rs",
                    "fn d(s: &str) { ErrorCode::parse(s); } fn e(c: ErrorCode) { c.as_str(); }",
                ),
                (
                    "crates/core/src/error.rs",
                    "pub enum HabitError { NoPath }\nimpl HabitError { pub fn code(&self) -> \
                     &'static str { match self { HabitError::NoPath => \"no_path\" } } }",
                ),
            ],
            Some("| code | exit |\n| `io` | 1 |\n| `no_path` | 1 |\n"),
        );
        assert!(run(&w).is_empty());
    }

    #[test]
    fn variant_missing_from_all_and_as_str() {
        let drifted = CONSISTENT.replace(
            "pub enum ErrorCode { Io, NoPath }",
            "pub enum ErrorCode { Io, NoPath, Overloaded }",
        );
        let w = ws(vec![("crates/service/src/error.rs", &drifted)], None);
        let d = run(&w);
        assert_eq!(d.len(), 2);
        assert!(d[0]
            .message
            .contains("Overloaded is missing from ErrorCode::ALL"));
        assert!(d[1].message.contains("no wire token"));
    }

    #[test]
    fn unmapped_habit_error_variant() {
        let w = ws(
            vec![
                ("crates/service/src/error.rs", CONSISTENT),
                (
                    "crates/core/src/error.rs",
                    "pub enum HabitError { NoPath, Grid }\nimpl HabitError { pub fn code(&self) \
                     -> &'static str { match self { HabitError::NoPath => \"no_path\" } } }",
                ),
            ],
            None,
        );
        let d = run(&w);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("HabitError::Grid has no arm"));
    }

    #[test]
    fn readme_missing_a_token_row() {
        let w = ws(
            vec![("crates/service/src/error.rs", CONSISTENT)],
            Some("| code | exit |\n| `io` | 1 |\n"),
        );
        let d = run(&w);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].file, "README.md");
        assert!(d[0].message.contains("`no_path`"));
    }

    #[test]
    fn no_service_crate_means_inert() {
        let w = ws(vec![("src/lib.rs", "fn main() {}")], None);
        assert!(run(&w).is_empty());
    }
}
