//! L002 `unsafe-without-safety`: every `unsafe` block, fn, impl, or
//! trait must carry a `// SAFETY:` comment.
//!
//! The comment must appear within the 12 lines above the `unsafe`
//! keyword (attached to the statement, not somewhere in the file) or
//! trail on the same line. There is no allow-based silencing in
//! practice: if the proof obligation cannot be written down, the
//! `unsafe` should not exist.

use crate::diag::Diagnostic;
use crate::lints::CodeView;
use crate::scan::SourceFile;

/// How far above the `unsafe` keyword a `// SAFETY:` comment may sit.
const SAFETY_WINDOW_LINES: u32 = 12;

/// Runs L002 over one file.
pub fn run(file: &SourceFile) -> Vec<Diagnostic> {
    let code = CodeView::new(&file.tokens);
    let mut out = Vec::new();
    for i in 0..code.len() {
        if !code.is_ident(i, "unsafe") {
            continue;
        }
        let t = code.get(i).expect("checked ident");
        if has_safety_comment(file, code.raw_index(i).expect("in range"), t.line) {
            continue;
        }
        let what = match code.text(i + 1) {
            "fn" => "fn",
            "impl" => "impl",
            "trait" => "trait",
            _ => "block",
        };
        out.push(Diagnostic {
            lint: "L002",
            file: file.rel_path.clone(),
            line: t.line,
            col: t.col,
            message: format!("`unsafe` {what} without a `// SAFETY:` comment"),
            note: format!(
                "state the invariant that makes this sound in a `// SAFETY:` comment within \
                 the {SAFETY_WINDOW_LINES} lines above (LINTS.md#l002)"
            ),
        });
    }
    out
}

/// Is there a `SAFETY:` comment in the window above `line`, or
/// trailing on `line` itself?
fn has_safety_comment(file: &SourceFile, raw_idx: usize, line: u32) -> bool {
    let lo = line.saturating_sub(SAFETY_WINDOW_LINES);
    // Backwards over the raw stream: comments between `lo` and the
    // unsafe keyword.
    for t in file.tokens[..raw_idx].iter().rev() {
        if t.line < lo {
            break;
        }
        if t.is_comment() && t.text.contains("SAFETY:") {
            return true;
        }
    }
    // Forwards: a trailing comment on the same line.
    file.tokens[raw_idx..]
        .iter()
        .take_while(|t| t.line == line)
        .any(|t| t.is_comment() && t.text.contains("SAFETY:"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        run(&SourceFile::new("x.rs".into(), src))
    }

    #[test]
    fn unsafe_without_comment_is_flagged() {
        let d = lint("fn f() { let x = unsafe { std::mem::transmute(y) }; }");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`unsafe` block"));
    }

    #[test]
    fn safety_comment_above_passes() {
        assert!(lint(
            "fn f() {\n    // SAFETY: y outlives the call; the latch bounds the borrow.\n    \
             let x = unsafe { std::mem::transmute(y) };\n}"
        )
        .is_empty());
    }

    #[test]
    fn trailing_safety_comment_passes() {
        assert!(
            lint("fn f() { let x = unsafe { g() }; // SAFETY: g is a const lookup\n}").is_empty()
        );
    }

    #[test]
    fn comment_too_far_above_does_not_count() {
        let mut src = String::from("// SAFETY: stale, twenty lines away\n");
        src.push_str(&"\n".repeat(20));
        src.push_str("fn f() { unsafe { g() } }\n");
        assert_eq!(lint(&src).len(), 1);
    }

    #[test]
    fn unsafe_fn_and_impl_are_classified() {
        let d = lint("unsafe fn f() {}\nunsafe impl Send for T {}");
        assert_eq!(d.len(), 2);
        assert!(d[0].message.contains("`unsafe` fn"));
        assert!(d[1].message.contains("`unsafe` impl"));
    }

    #[test]
    fn unsafe_in_strings_and_comments_ignored() {
        assert!(lint("// unsafe is discussed here\nfn f() { let s = \"unsafe\"; }").is_empty());
    }
}
