//! Golden diagnostics over the seeded-violation fixtures, registry
//! pinning, docs freshness, and the workspace-clean gate.
//!
//! The fixtures live under `tests/fixtures/` — a directory name the
//! workspace walker skips, so the seeded violations never leak into a
//! real scan; the tests here scan the fixture roots directly.

use std::path::{Path, PathBuf};

use habit_lint::{analyze, check_root, render_lints_md, scan_root, ALL};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn golden(name: &str) -> String {
    std::fs::read_to_string(fixture(name)).expect("golden file")
}

#[test]
fn flat_fixtures_match_golden() {
    let report = analyze(&scan_root(&fixture("flat")).expect("scan flat"));
    assert_eq!(
        report.render_human(),
        golden("flat.expected"),
        "seeded per-file diagnostics drifted; inspect `habit-lint --root \
         crates/lint/tests/fixtures/flat`"
    );
}

#[test]
fn drift_fixture_matches_golden() {
    let report = analyze(&scan_root(&fixture("drift")).expect("scan drift"));
    assert_eq!(
        report.render_human(),
        golden("drift.expected"),
        "seeded taxonomy-drift diagnostics drifted; inspect `habit-lint --root \
         crates/lint/tests/fixtures/drift`"
    );
}

#[test]
fn allowed_fixture_counts_one_reasoned_suppression() {
    let report = analyze(&scan_root(&fixture("flat")).expect("scan flat"));
    assert_eq!(report.suppressions.len(), 1);
    let s = &report.suppressions[0];
    assert_eq!(s.lint, "L003");
    assert_eq!(s.file, "allowed.rs");
    assert_eq!(s.reason, "inputs validated finite upstream");
}

#[test]
fn registry_is_pinned() {
    let ids: Vec<&str> = ALL.iter().map(|l| l.id).collect();
    assert_eq!(ids, ["L001", "L002", "L003", "L004", "L005"]);
    let names: Vec<&str> = ALL.iter().map(|l| l.name).collect();
    assert_eq!(
        names,
        [
            "unordered-iteration-to-sink",
            "unsafe-without-safety",
            "float-ordering-hazard",
            "error-taxonomy-drift",
            "lint-suppression-audit",
        ]
    );
}

#[test]
fn lints_md_is_fresh() {
    let committed = std::fs::read_to_string(workspace_root().join("LINTS.md")).unwrap_or_default();
    assert_eq!(
        committed,
        render_lints_md(),
        "LINTS.md is stale — regenerate with `cargo run -p habit-lint -- --gen-docs`"
    );
}

#[test]
fn workspace_is_lint_clean() {
    let report = check_root(&workspace_root()).expect("scan workspace");
    assert!(
        report.diagnostics.is_empty(),
        "the workspace must stay habit-lint clean:\n{}",
        report.render_human()
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}
