//! Seeded L004 fixture: a bad token, an unmapped variant, and a
//! wildcard arm hiding it.

pub enum HabitError {
    Io,
    NoPath,
    Grid,
}

impl HabitError {
    pub fn code(&self) -> &'static str {
        match self {
            HabitError::Io => "disk_io",
            HabitError::NoPath => "no_path",
            _ => "io",
        }
    }
}
