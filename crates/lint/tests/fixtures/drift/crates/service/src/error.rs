//! Seeded L004 fixture: `Overloaded` drifted out of ALL and as_str.

pub enum ErrorCode {
    Io,
    NoPath,
    Overloaded,
}

impl ErrorCode {
    pub const ALL: [ErrorCode; 2] = [ErrorCode::Io, ErrorCode::NoPath];

    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Io => "io",
            ErrorCode::NoPath => "no_path",
        }
    }
}
