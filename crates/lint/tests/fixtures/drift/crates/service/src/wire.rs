//! Seeded L004 fixture: encodes through as_str but never decodes
//! through ErrorCode::parse — half the wire contract.

pub fn encode(c: ErrorCode) -> &'static str {
    c.as_str()
}
