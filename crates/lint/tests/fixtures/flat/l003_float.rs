//! Seeded L003 fixture: partial order unwrapped inside a sort.

pub fn sort_scores(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn fine(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.total_cmp(b));
}
