//! Seeded L002 fixture: `unsafe` without a SAFETY comment.

pub fn read_past(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}

/// Documented one for contrast — this must not be flagged.
pub fn fine(ptr: *const u8) -> u8 {
    // SAFETY: caller guarantees `ptr` is valid for reads.
    unsafe { *ptr }
}
