//! Seeded suppression fixture: the violation is silenced with a
//! reasoned allow, so it surfaces as a suppression, not a diagnostic.

pub fn max_score(v: &[f64]) -> f64 {
    let mut best = 0.0f64;
    for &x in v {
        // habit-lint: allow(L003) -- inputs validated finite upstream
        if x.partial_cmp(&best).expect("finite") == std::cmp::Ordering::Greater {
            best = x;
        }
    }
    best
}
