//! Seeded L001 fixture: hash iteration straight into encoded bytes.

impl Codec for Encoder {
    fn encode(&self, out: &mut Vec<u8>) {
        let counts: HashMap<u64, u64> = HashMap::new();
        for (k, v) in &counts {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        let keys: Vec<u64> = counts.keys().copied().collect();
        emit(&keys);
    }
}
