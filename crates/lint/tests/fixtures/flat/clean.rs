//! Clean fixture: nothing to report.

pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}
