//! Fitting, persisting, and loading a model fleet directory.
//!
//! A fleet directory holds one v2 model blob per **non-empty** shard
//! (`shard-0003.habit`) plus the [`MANIFEST_FILE`] describing them.
//! [`fit_fleet`] is the seam behind `habit fit --shards-out DIR`:
//! accumulate per-shard fit states on the pool, persist each as a full
//! v2 blob (graph **and** fit state, so every shard can be refitted in
//! place), and write the canonical manifest last — a crash mid-write
//! leaves a directory without a valid manifest, never a manifest
//! pointing at missing blobs. [`load_fleet`] walks the manifest back,
//! verifying every blob's FNV-1a hash and config fingerprint before
//! anything serves.

use crate::manifest::{config_fingerprint, fnv1a64, ShardBlob, ShardManifest, MANIFEST_FILE};
use crate::FleetError;
use aggdb::Table;
use habit_core::{FitState, HabitConfig, HabitModel};
use habit_engine::{accumulate_per_shard, ThreadPool};
use hexgrid::tiling::DEFAULT_TILE_LEVELS_UP;
use hexgrid::HexCell;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// The blob file name a shard's model is stored under inside the fleet
/// directory (`shard-0002.habit`). Fixed-width so directory listings
/// sort in shard order.
pub fn shard_blob_name(shard: u32) -> String {
    format!("shard-{shard:04}.habit")
}

/// A fleet loaded from disk and ready to route: the manifest, its
/// content hash (the identity `Health`/`ModelInfo` report), and the
/// per-shard models in ascending shard order.
pub struct LoadedFleet {
    /// The manifest the fleet was loaded under.
    pub manifest: ShardManifest,
    /// FNV-1a 64 of the canonical manifest bytes.
    pub manifest_hash: u64,
    /// Shard id → model, ascending by shard id; every entry carries an
    /// embedded fit state (v2 blobs only).
    pub models: Vec<(u32, Arc<HabitModel>)>,
}

/// Fits a fleet from a trip table and persists it to `dir`:
/// [`accumulate_per_shard`] on the pool, then [`write_fleet`]. The
/// returned manifest is exactly what `dir/fleet.hfm` now holds.
pub fn fit_fleet(
    table: &Table,
    config: HabitConfig,
    shards: u32,
    pool: &ThreadPool,
    dir: &Path,
) -> Result<ShardManifest, FleetError> {
    let states = accumulate_per_shard(table, config, shards as usize, pool)?;
    write_fleet(dir, states, shards)
}

/// Persists per-shard fit states as v2 blobs plus the `HFM1` manifest.
///
/// `shards` is the partition modulus the states were accumulated under
/// (`shard = hash(tile) % shards`); `states` holds only the non-empty
/// shards, as [`accumulate_per_shard`] returns them. Every state must
/// carry the same configuration ([`FleetError::ConfigMismatch`]
/// otherwise). Blobs are written before the manifest so a torn write
/// cannot yield a manifest referencing absent files.
pub fn write_fleet(
    dir: &Path,
    states: Vec<(u32, FitState)>,
    shards: u32,
) -> Result<ShardManifest, FleetError> {
    let shards = shards.max(1);
    let Some(config) = states.first().map(|(_, s)| *s.config()) else {
        return Err(FleetError::Habit(habit_core::HabitError::EmptyModel));
    };
    if states.iter().any(|(_, s)| s.config() != &config) {
        return Err(FleetError::ConfigMismatch);
    }
    std::fs::create_dir_all(dir)?;

    let partitioner =
        hexgrid::TilePartitioner::new(config.resolution, DEFAULT_TILE_LEVELS_UP, shards as usize);
    let mut blobs = BTreeMap::new();
    let mut tiles: BTreeMap<u64, u32> = BTreeMap::new();
    for (shard, state) in states {
        if shard >= shards {
            return Err(FleetError::BadManifest("shard id outside the modulus"));
        }
        let model = HabitModel::from_fit_state(state)?;
        // A shard's graph also holds *foreign* boundary cells — the
        // `lag_cl` side of transitions whose `cl` lands in this shard —
        // so only cells this shard actually owns claim their tile.
        for (id, _) in model.graph().nodes() {
            let cell = HexCell::from_raw(id).map_err(habit_core::HabitError::Grid)?;
            let owner = partitioner
                .shard_of(cell)
                .map_err(habit_core::HabitError::Grid)?;
            if owner as u32 != shard {
                continue;
            }
            let tile = partitioner
                .tile_of(cell)
                .map_err(habit_core::HabitError::Grid)?;
            if tiles
                .insert(tile.raw(), shard)
                .is_some_and(|prev| prev != shard)
            {
                return Err(FleetError::BadManifest("tile owned by two shards"));
            }
        }
        let bytes = model.to_bytes_full();
        let path = shard_blob_name(shard);
        std::fs::write(dir.join(&path), &bytes)?;
        blobs.insert(
            shard,
            ShardBlob {
                path,
                hash: fnv1a64(&bytes),
            },
        );
    }

    let manifest = ShardManifest {
        fingerprint: config_fingerprint(&config),
        resolution: config.resolution,
        levels_up: DEFAULT_TILE_LEVELS_UP,
        shards,
        blobs,
        tiles,
    };
    std::fs::write(dir.join(MANIFEST_FILE), manifest.to_bytes())?;
    Ok(manifest)
}

/// Loads a fleet directory back, verifying before anything serves:
/// every blob's bytes hash to what the manifest recorded
/// ([`FleetError::HashMismatch`]), every model was fitted under the
/// manifest's config fingerprint ([`FleetError::ConfigMismatch`]), and
/// every blob embeds a fit state (v2) so per-shard refit stays possible.
pub fn load_fleet(dir: &Path) -> Result<LoadedFleet, FleetError> {
    let manifest = ShardManifest::from_bytes(&std::fs::read(dir.join(MANIFEST_FILE))?)?;
    let manifest_hash = manifest.manifest_hash();
    let mut models = Vec::with_capacity(manifest.blobs.len());
    for (&shard, blob) in &manifest.blobs {
        let bytes = std::fs::read(dir.join(&blob.path))?;
        if fnv1a64(&bytes) != blob.hash {
            return Err(FleetError::HashMismatch { shard });
        }
        let model = HabitModel::from_bytes(&bytes)?;
        if config_fingerprint(model.config()) != manifest.fingerprint {
            return Err(FleetError::ConfigMismatch);
        }
        if model.state().is_none() {
            return Err(FleetError::BadManifest("shard blob carries no fit state"));
        }
        models.push((shard, Arc::new(model)));
    }
    Ok(LoadedFleet {
        manifest,
        manifest_hash,
        models,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use aggdb::Column;

    /// Two vessels sailing disjoint east-west corridors far apart
    /// (Denmark and the Aegean) so cells land in different tiles.
    pub(crate) fn two_corridor_table(n: usize) -> Table {
        let mut trip = Vec::new();
        let mut vessel = Vec::new();
        let mut ts = Vec::new();
        let mut lon = Vec::new();
        let mut lat = Vec::new();
        for (t, (lon0, lat0)) in [(10.0, 56.0), (24.0, 38.0)].iter().enumerate() {
            for i in 0..n {
                trip.push(t as u64 + 1);
                vessel.push(t as u64 + 9);
                ts.push(i as i64 * 60);
                lon.push(lon0 + i as f64 * 0.002);
                lat.push(*lat0);
            }
        }
        let rows = trip.len();
        Table::from_columns(vec![
            ("trip_id", Column::from_u64(trip)),
            ("vessel_id", Column::from_u64(vessel)),
            ("ts", Column::from_i64(ts)),
            ("lon", Column::from_f64(lon)),
            ("lat", Column::from_f64(lat)),
            ("sog", Column::from_f64(vec![12.0; rows])),
            ("cog", Column::from_f64(vec![90.0; rows])),
        ])
        .expect("test table")
    }

    #[test]
    fn fit_write_load_round_trips() {
        let table = two_corridor_table(120);
        let pool = ThreadPool::new(2);
        let dir = std::env::temp_dir().join("habit-fleet-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = fit_fleet(&table, HabitConfig::default(), 8, &pool, &dir).expect("fit");
        assert!(!manifest.blobs.is_empty());
        assert!(!manifest.tiles.is_empty());
        assert!(manifest.blobs.len() <= 8);

        let fleet = load_fleet(&dir).expect("load");
        assert_eq!(fleet.manifest, manifest);
        assert_eq!(fleet.manifest_hash, manifest.manifest_hash());
        assert_eq!(fleet.models.len(), manifest.blobs.len());
        for (shard, model) in &fleet.models {
            assert!(manifest.blobs.contains_key(shard));
            assert!(model.state().is_some(), "v2 blobs keep their fit state");
            assert!(model.node_count() > 0);
        }
        // Every owning shard in the tile map has a model to serve it.
        for shard in manifest.tiles.values() {
            assert!(fleet.models.iter().any(|(s, _)| s == shard));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_shard_fleet_blob_is_byte_identical_to_the_single_blob_fit() {
        let table = two_corridor_table(120);
        let pool = ThreadPool::new(2);
        let dir = std::env::temp_dir().join("habit-fleet-oneshard");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = fit_fleet(&table, HabitConfig::default(), 1, &pool, &dir).expect("fit");
        assert_eq!(manifest.blobs.len(), 1, "one shard, one blob");

        let global = habit_engine::fit_sharded(&table, HabitConfig::default(), 4, &pool)
            .expect("global fit");
        let blob = std::fs::read(dir.join(shard_blob_name(0))).expect("shard blob");
        assert_eq!(
            blob,
            global.to_bytes_full(),
            "the one-shard fleet blob IS the single-blob model"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_blobs_and_drifted_configs_are_refused() {
        let table = two_corridor_table(80);
        let pool = ThreadPool::new(2);
        let dir = std::env::temp_dir().join("habit-fleet-tamper");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = fit_fleet(&table, HabitConfig::default(), 8, &pool, &dir).expect("fit");
        let (&shard, blob) = manifest.blobs.iter().next().expect("a blob");
        let blob_path = dir.join(&blob.path);
        let original = std::fs::read(&blob_path).expect("blob bytes");

        let mut tampered = original.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0xff;
        std::fs::write(&blob_path, &tampered).expect("tamper");
        assert!(
            matches!(load_fleet(&dir), Err(FleetError::HashMismatch { shard: s }) if s == shard),
            "flipped blob byte must fail the manifest hash"
        );
        std::fs::write(&blob_path, &original).expect("restore");
        assert!(load_fleet(&dir).is_ok());

        // Mixed-config states never reach disk.
        let states = accumulate_per_shard(&table, HabitConfig::default(), 4, &pool).expect("acc");
        let mut drifted = HabitConfig::default();
        drifted.rdp_tolerance_m += 1.0;
        let mut mixed = states;
        let extra = accumulate_per_shard(&table, drifted, 1, &pool).expect("acc drifted");
        mixed.extend(extra.into_iter().map(|(_, s)| (3_999, s)));
        assert!(matches!(
            write_fleet(&dir, mixed, 4_000),
            Err(FleetError::ConfigMismatch)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
