//! The `HFM1` shard manifest: which shard owns which tile, and which
//! blob serves which shard.
//!
//! A fleet directory is fully described by one manifest: the fit
//! configuration fingerprint every blob must match, the
//! [`TilePartitioner`] parameters (cell resolution, levels-up,
//! modulus) that make tile ownership a pure function, the key-sorted
//! shard → blob path/hash table, and the key-sorted tile → shard map
//! of every tile that holds data. The codec is versioned,
//! self-delimiting (trailing bytes are corruption), and **canonical**:
//! entries live in `BTreeMap`s, so the serialized bytes are a pure
//! function of the entry *set*, never of insertion order — the same
//! L001 discipline as the model and fit-state blobs.

use crate::FleetError;
use habit_core::{CellProjection, HabitConfig, WeightScheme};
use hexgrid::TilePartitioner;
use mobgraph::Codec;
use std::collections::BTreeMap;

/// Magic bytes prefixing a serialized manifest ("HFM1").
const MANIFEST_MAGIC: u32 = 0x314D_4648;
/// Highest manifest version this build reads and writes.
const MANIFEST_VERSION: u8 = 1;
/// The manifest's file name inside a fleet directory.
pub const MANIFEST_FILE: &str = "fleet.hfm";

/// One shard's serving blob: its path relative to the fleet directory
/// and the FNV-1a hash of the blob bytes (verified on load).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardBlob {
    /// Blob file name, relative to the fleet directory (no separators).
    pub path: String,
    /// FNV-1a 64 hash of the blob file's bytes.
    pub hash: u64,
}

/// The versioned description of a model fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// [`config_fingerprint`] of the fit configuration every blob in
    /// the fleet was accumulated under.
    pub fingerprint: u64,
    /// Cell resolution of the fit (the partitioner's fine resolution).
    pub resolution: u8,
    /// How many resolution levels above the cells the owning tiles sit.
    pub levels_up: u8,
    /// The shard modulus: `shard(tile) = splitmix64(tile) % shards`.
    /// Blob keys are ids under this modulus; shards with no data have
    /// no blob entry.
    pub shards: u32,
    /// Shard id → serving blob, key-sorted.
    pub blobs: BTreeMap<u32, ShardBlob>,
    /// Tile raw id → owning shard id, key-sorted; one entry per tile
    /// that holds fitted data.
    pub tiles: BTreeMap<u64, u32>,
}

impl ShardManifest {
    /// The tile partitioner this manifest's ownership is defined by.
    pub fn partitioner(&self) -> TilePartitioner {
        TilePartitioner::new(self.resolution, self.levels_up, self.shards as usize)
    }

    /// FNV-1a 64 over the canonical manifest bytes — the fleet identity
    /// `Health`/`ModelInfo` report, changing whenever any blob, tile,
    /// or parameter changes.
    pub fn manifest_hash(&self) -> u64 {
        fnv1a64(&self.to_bytes())
    }

    /// Serializes the manifest. Canonical: both maps iterate in key
    /// order, so the bytes do not depend on how the maps were built.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        MANIFEST_MAGIC.encode(&mut out);
        MANIFEST_VERSION.encode(&mut out);
        self.fingerprint.encode(&mut out);
        self.resolution.encode(&mut out);
        self.levels_up.encode(&mut out);
        self.shards.encode(&mut out);
        (self.blobs.len() as u64).encode(&mut out);
        for (shard, blob) in &self.blobs {
            shard.encode(&mut out);
            (blob.path.len() as u64).encode(&mut out);
            out.extend_from_slice(blob.path.as_bytes());
            blob.hash.encode(&mut out);
        }
        (self.tiles.len() as u64).encode(&mut out);
        for (tile, shard) in &self.tiles {
            tile.encode(&mut out);
            shard.encode(&mut out);
        }
        out
    }

    /// Deserializes a manifest blob, validating structure: version,
    /// strictly ascending keys (non-canonical bytes are rejected, so
    /// decode∘encode is the identity), blob paths that stay inside the
    /// fleet directory, tiles owned only by shards that have blobs, and
    /// no trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FleetError> {
        let mut buf = bytes;
        let buf = &mut buf;
        let bad = FleetError::BadManifest;
        if u32::decode(buf) != Some(MANIFEST_MAGIC) {
            return Err(bad("missing HFM1 magic"));
        }
        let version = u8::decode(buf).ok_or(bad("truncated header"))?;
        if version != MANIFEST_VERSION {
            return Err(bad("unsupported manifest version"));
        }
        let fingerprint = u64::decode(buf).ok_or(bad("truncated header"))?;
        let resolution = u8::decode(buf).ok_or(bad("truncated header"))?;
        let levels_up = u8::decode(buf).ok_or(bad("truncated header"))?;
        let shards = u32::decode(buf).ok_or(bad("truncated header"))?;
        if shards == 0 {
            return Err(bad("zero shard modulus"));
        }

        let blob_count = u64::decode(buf).ok_or(bad("truncated blob table"))?;
        let mut blobs = BTreeMap::new();
        let mut prev_shard: Option<u32> = None;
        for _ in 0..blob_count {
            let shard = u32::decode(buf).ok_or(bad("truncated blob table"))?;
            if prev_shard.is_some_and(|p| p >= shard) {
                return Err(bad("blob table keys not strictly ascending"));
            }
            prev_shard = Some(shard);
            if shard >= shards {
                return Err(bad("blob shard id outside the modulus"));
            }
            let path_len = u64::decode(buf).ok_or(bad("truncated blob path"))? as usize;
            if path_len == 0 || path_len > buf.len() {
                return Err(bad("truncated blob path"));
            }
            let (head, rest) = buf.split_at(path_len);
            *buf = rest;
            let path =
                String::from_utf8(head.to_vec()).map_err(|_| bad("blob path is not UTF-8"))?;
            if path.contains('/') || path.contains('\\') || path.starts_with('.') {
                return Err(bad("blob path must be a plain file name"));
            }
            let hash = u64::decode(buf).ok_or(bad("truncated blob hash"))?;
            blobs.insert(shard, ShardBlob { path, hash });
        }
        if blobs.is_empty() {
            return Err(bad("manifest carries no shard blobs"));
        }

        let tile_count = u64::decode(buf).ok_or(bad("truncated tile table"))?;
        let mut tiles = BTreeMap::new();
        let mut prev_tile: Option<u64> = None;
        for _ in 0..tile_count {
            let tile = u64::decode(buf).ok_or(bad("truncated tile table"))?;
            if prev_tile.is_some_and(|p| p >= tile) {
                return Err(bad("tile table keys not strictly ascending"));
            }
            prev_tile = Some(tile);
            let shard = u32::decode(buf).ok_or(bad("truncated tile table"))?;
            if !blobs.contains_key(&shard) {
                return Err(bad("tile owned by a shard with no blob"));
            }
            tiles.insert(tile, shard);
        }
        if !buf.is_empty() {
            return Err(bad("trailing bytes after the tile table"));
        }
        Ok(Self {
            fingerprint,
            resolution,
            levels_up,
            shards,
            blobs,
            tiles,
        })
    }
}

/// A stable fingerprint of **every** fit tunable — the manifest-level
/// guard that all blobs in a fleet (and any delta refit) were
/// accumulated under one configuration. Hashes a fixed little-endian
/// layout (resolution, projection, weight, rdp bits, min_cell_span,
/// snap_max_rings) with FNV-1a 64.
pub fn config_fingerprint(config: &HabitConfig) -> u64 {
    let mut bytes = Vec::with_capacity(3 + 8 + 8 + 4);
    bytes.push(config.resolution);
    bytes.push(match config.projection {
        CellProjection::Center => 0,
        CellProjection::Median => 1,
    });
    bytes.push(match config.weight_scheme {
        WeightScheme::Hops => 0,
        WeightScheme::InverseTransitions => 1,
        WeightScheme::NegLogFrequency => 2,
    });
    bytes.extend_from_slice(&config.rdp_tolerance_m.to_le_bytes());
    bytes.extend_from_slice(&(config.min_cell_span as u64).to_le_bytes());
    bytes.extend_from_slice(&config.snap_max_rings.to_le_bytes());
    fnv1a64(&bytes)
}

/// FNV-1a 64 — the fleet's content hash for blobs and manifests.
/// Deterministic across platforms and runs (no hasher state).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn manifest_with(entries: &[(u64, u32)], shards: u32) -> ShardManifest {
        let mut blobs = BTreeMap::new();
        let mut tiles = BTreeMap::new();
        for &(tile, shard) in entries {
            blobs.entry(shard).or_insert_with(|| ShardBlob {
                path: format!("shard-{shard:04}.habit"),
                hash: 0x1234_5678_9abc_def0 ^ shard as u64,
            });
            tiles.insert(tile, shard);
        }
        ShardManifest {
            fingerprint: config_fingerprint(&HabitConfig::default()),
            resolution: 9,
            levels_up: 3,
            shards,
            blobs,
            tiles,
        }
    }

    #[test]
    fn round_trips_and_is_self_delimiting() {
        let m = manifest_with(&[(0x8510, 0), (0x8520, 2), (0x8530, 0)], 4);
        let bytes = m.to_bytes();
        let back = ShardManifest::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, m);
        assert_eq!(back.to_bytes(), bytes, "re-encode is stable");
        assert_eq!(back.manifest_hash(), m.manifest_hash());

        // Truncations and trailing bytes are corruption, not padding.
        for cut in [0usize, 4, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                ShardManifest::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(ShardManifest::from_bytes(&trailing).is_err());
    }

    #[test]
    fn structural_corruption_is_rejected() {
        let m = manifest_with(&[(10, 0), (20, 1)], 2);
        let mut bad_version = m.to_bytes();
        bad_version[4] = 9;
        assert!(matches!(
            ShardManifest::from_bytes(&bad_version),
            Err(FleetError::BadManifest("unsupported manifest version"))
        ));

        // A tile owned by a shard with no blob is inconsistent.
        let mut orphan = m.clone();
        orphan.shards = 8;
        orphan.tiles.insert(30, 7);
        assert!(ShardManifest::from_bytes(&orphan.to_bytes()).is_err());

        // Paths must stay inside the fleet directory.
        let mut escape = m.clone();
        escape.blobs.get_mut(&0).expect("shard 0").path = "../evil.habit".into();
        assert!(ShardManifest::from_bytes(&escape.to_bytes()).is_err());

        // A shard id at or above the modulus can never own a tile.
        let mut wide = m;
        wide.blobs.insert(
            5,
            ShardBlob {
                path: "shard-0005.habit".into(),
                hash: 1,
            },
        );
        assert!(ShardManifest::from_bytes(&wide.to_bytes()).is_err());
    }

    #[test]
    fn fingerprint_tracks_every_tunable() {
        let base = HabitConfig::default();
        let fp = config_fingerprint(&base);
        assert_eq!(fp, config_fingerprint(&base), "deterministic");
        let mut r = base;
        r.resolution = 8;
        let mut t = base;
        t.rdp_tolerance_m = 250.0;
        let mut s = base;
        s.snap_max_rings += 1;
        let mut c = base;
        c.min_cell_span += 1;
        for other in [r, t, s, c] {
            assert_ne!(fp, config_fingerprint(&other));
        }
    }

    #[test]
    fn golden_manifest_keeps_loading() {
        // The committed HFM1 layout pin: these bytes were produced by
        // this codec and must load (and re-encode byte-identically)
        // forever. Regenerating them on a layout change is a conscious,
        // reviewed act: HABIT_REGEN_GOLDEN=1 cargo test -p habit-fleet.
        let expected = manifest_with(&[(0x8510, 0), (0x8520, 2), (0x8530, 0)], 4);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fleet.hfm");
        if std::env::var_os("HABIT_REGEN_GOLDEN").is_some() {
            std::fs::write(path, expected.to_bytes()).expect("write golden manifest");
        }
        let golden = std::fs::read(path).expect("committed golden fleet.hfm");
        let m = ShardManifest::from_bytes(&golden).expect("golden manifest loads");
        assert_eq!(m, expected, "golden decodes to the pinned manifest");
        assert_eq!(m.to_bytes(), golden, "re-encode is stable");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Canonicalization: arbitrary tile sets, inserted in any
        /// order, round-trip through bytes that depend only on the
        /// entry set.
        #[test]
        fn arbitrary_manifests_round_trip_canonically(
            seed in 0u64..10_000,
            n_tiles in 1usize..24,
            shards in 1u32..9,
        ) {
            // Seeded tile ids (distinct via stride) and shard
            // assignments; two build orders, one byte image.
            let mut entries: Vec<(u64, u32)> = (0..n_tiles)
                .map(|i| {
                    let tile = seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(i as u64 * 0x100);
                    (tile, (tile % shards as u64) as u32)
                })
                .collect();
            let forward = manifest_with(&entries, shards);
            entries.reverse();
            let reversed = manifest_with(&entries, shards);
            prop_assert_eq!(forward.to_bytes(), reversed.to_bytes());

            let bytes = forward.to_bytes();
            let back = ShardManifest::from_bytes(&bytes).expect("round trip");
            prop_assert_eq!(&back, &forward);
            prop_assert_eq!(back.to_bytes(), bytes);
        }
    }
}
