//! The scatter/gather routing front over a loaded fleet.
//!
//! [`FleetRouter`] sits where the single-blob server keeps its one
//! `BatchImputer`, and classifies every gap by the **tiles of its
//! endpoints** (pure geometry — `cell → tile → hash(tile) % shards`,
//! no model lookups):
//!
//! * both endpoints owned by one loaded shard → **in-shard**: the gap
//!   joins that shard's sub-batch and runs through the owning shard's
//!   `BatchImputer` — the exact single-blob serving code path, with
//!   that shard's own route cache;
//! * endpoints owned by two loaded shards → **cross-shard**: the gap is
//!   routed leg by leg in its owning shards and stitched at a seam
//!   cell (see [`FleetRouter::impute_batch`] for the construction);
//! * an endpoint owned by a shard the manifest does not carry →
//!   **miss**: served by the optional global fallback model when one is
//!   loaded, failed with [`BatchFailure::ShardMiss`] otherwise. A miss
//!   is never silently rerouted to some other shard — psionic honesty
//!   over fake availability.
//!
//! Results come back in query order, deterministic at any thread count,
//! and a one-shard fleet answers byte-identically to the single-blob
//! imputer: classification sends every query in-shard to shard 0, whose
//! state is the global state.

use crate::builder::LoadedFleet;
use crate::manifest::{config_fingerprint, ShardManifest};
use crate::FleetError;
use geo_kernel::{haversine_m, GeoPoint, TimedPoint};
use habit_core::{CellProjection, GapQuery, HabitModel, Imputation};
use habit_engine::{BatchFailure, BatchImputer, BatchStats, ThreadPool};
use habit_obs::Recorder;
use hexgrid::{HexCell, HexGrid, TilePartitioner};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where one gap query goes, by endpoint tile ownership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Both endpoints owned by this loaded shard.
    InShard(u32),
    /// Endpoints owned by two different loaded shards.
    CrossShard {
        /// Shard owning the start endpoint's tile.
        start: u32,
        /// Shard owning the end endpoint's tile.
        end: u32,
    },
    /// An endpoint's owning shard has no blob in the manifest.
    Miss {
        /// The owning shard id.
        shard: u32,
        /// The raw id of the endpoint's tile.
        tile: u64,
    },
}

/// Fleet-level counters for one batch, on top of the summed
/// [`BatchStats`]: how traffic scattered across shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetBatchStats {
    /// Queries (and stitched legs) dispatched to each shard's imputer,
    /// keyed by shard id.
    pub shard_requests: BTreeMap<u32, u64>,
    /// Cross-shard gaps answered by a seam-stitched two-leg route.
    pub seam_routes: u64,
    /// Shard-miss gaps served by the global fallback model.
    pub fallbacks: u64,
    /// Shard-miss gaps failed with [`BatchFailure::ShardMiss`].
    pub misses: u64,
}

/// The serving front over per-shard [`BatchImputer`]s: classification,
/// per-shard sub-batching, seam stitching, fallback, and per-shard
/// hot-swap.
pub struct FleetRouter {
    manifest: ShardManifest,
    manifest_hash: u64,
    partitioner: TilePartitioner,
    grid: HexGrid,
    /// Shard id → imputer, ascending; per-shard route caches.
    shards: BTreeMap<u32, BatchImputer>,
    /// The optional global single-blob model serving shard misses.
    fallback: Option<BatchImputer>,
    cache_capacity: usize,
}

impl FleetRouter {
    /// Builds the front over a loaded fleet, with `cache_capacity`
    /// route-cache entries **per shard** (and for the fallback). The
    /// fallback, when given, must be fitted under the fleet's config
    /// fingerprint — an honest fallback answers from the same model
    /// family, not a different tuning.
    pub fn new(
        fleet: LoadedFleet,
        fallback: Option<Arc<HabitModel>>,
        cache_capacity: usize,
    ) -> Result<Self, FleetError> {
        let LoadedFleet {
            manifest,
            manifest_hash,
            models,
        } = fleet;
        if let Some(global) = &fallback {
            if config_fingerprint(global.config()) != manifest.fingerprint {
                return Err(FleetError::ConfigMismatch);
            }
        }
        let shards: BTreeMap<u32, BatchImputer> = models
            .into_iter()
            .map(|(shard, model)| (shard, BatchImputer::new(model, cache_capacity)))
            .collect();
        Ok(Self {
            partitioner: manifest.partitioner(),
            manifest,
            manifest_hash,
            grid: HexGrid::new(),
            shards,
            fallback: fallback.map(|m| BatchImputer::new(m, cache_capacity)),
            cache_capacity,
        })
    }

    /// The manifest the fleet serves under.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// FNV-1a 64 of the current manifest bytes (tracks hot-swaps).
    pub fn manifest_hash(&self) -> u64 {
        self.manifest_hash
    }

    /// Loaded shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether a global fallback model is loaded for shard misses.
    pub fn has_fallback(&self) -> bool {
        self.fallback.is_some()
    }

    /// The loaded shard models, ascending by shard id.
    pub fn models(&self) -> impl Iterator<Item = (u32, &HabitModel)> {
        self.shards.iter().map(|(&s, imp)| (s, imp.model()))
    }

    /// One shard's model, if loaded.
    pub fn model(&self, shard: u32) -> Option<&HabitModel> {
        self.shards.get(&shard).map(BatchImputer::model)
    }

    /// Routes currently cached across all shard imputers (and the
    /// fallback).
    pub fn cached_routes(&self) -> usize {
        self.shards
            .values()
            .chain(self.fallback.iter())
            .map(BatchImputer::cached_routes)
            .sum()
    }

    /// Classifies one gap by its endpoint tiles. Geometry errors
    /// (coordinates off the grid) surface as [`BatchFailure::Snap`],
    /// exactly where the single-blob path fails them.
    pub fn classify(&self, gap: &GapQuery) -> Result<Dispatch, BatchFailure> {
        let owner = |pos: &GeoPoint| -> Result<(u32, u64), BatchFailure> {
            let cell = self
                .grid
                .cell(pos, self.manifest.resolution)
                .map_err(|e| BatchFailure::Snap(e.to_string()))?;
            let tile = self
                .partitioner
                .tile_of(cell)
                .map_err(|e| BatchFailure::Snap(e.to_string()))?;
            let shard = self
                .partitioner
                .shard_of(cell)
                .map_err(|e| BatchFailure::Snap(e.to_string()))? as u32;
            Ok((shard, tile.raw()))
        };
        let (start, start_tile) = owner(&gap.start.pos)?;
        let (end, end_tile) = owner(&gap.end.pos)?;
        for (shard, tile) in [(start, start_tile), (end, end_tile)] {
            if !self.shards.contains_key(&shard) {
                return Ok(Dispatch::Miss { shard, tile });
            }
        }
        Ok(if start == end {
            Dispatch::InShard(start)
        } else {
            Dispatch::CrossShard { start, end }
        })
    }

    /// Answers a batch through the fleet: in-shard sub-batches per
    /// shard (ascending shard order, query order within), cross-shard
    /// gaps stitched, misses failed typed. When a global fallback blob
    /// is loaded, every query the fleet could not answer — shard miss,
    /// a shard-local no-path (the wanted corridor leaves the shard's
    /// tiles), a failed stitch — is honestly re-served by the fallback
    /// and counted in [`FleetBatchStats::fallbacks`]. Returns results
    /// in query order, the summed per-shard [`BatchStats`], and the
    /// fleet-level scatter counters.
    ///
    /// **Seam stitch.** A cross-shard gap start→end with owners A ≠ B
    /// becomes two legs joined at the tile-seam boundary cell: shard
    /// B's snap of the *start* position. B's graph reaches exactly one
    /// cell past its own tiles — the `lag` side of transitions crossing
    /// into B — so that snap lands on the boundary cell where traffic
    /// enters B: a full node of A's graph and an outbound-only node of
    /// B's. Its projected position (the model's own cell projection)
    /// and distance-proportional timestamp make the seam point; leg 1
    /// is start→seam in A, leg 2 is seam→end in B, and the legs are
    /// concatenated dropping the duplicated seam point. The stitch is
    /// approximate (each leg only sees its shard's subgraph) and is
    /// quality-gated by the `fleet_scale` experiment, not byte-pinned.
    pub fn impute_batch(
        &self,
        queries: &[GapQuery],
        pool: &ThreadPool,
        provenance: bool,
        recorder: Option<&Recorder>,
        op: &str,
    ) -> (
        Vec<Result<Imputation, BatchFailure>>,
        BatchStats,
        FleetBatchStats,
    ) {
        let mut stats = BatchStats {
            queries: queries.len(),
            ..BatchStats::default()
        };
        let mut fleet_stats = FleetBatchStats::default();
        let mut results: Vec<Option<Result<Imputation, BatchFailure>>> =
            (0..queries.len()).map(|_| None).collect();

        // -- 1. Classify and group.
        let mut in_shard: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        let mut cross: Vec<(usize, u32, u32)> = Vec::new();
        for (i, gap) in queries.iter().enumerate() {
            match self.classify(gap) {
                Err(failure) => results[i] = Some(Err(failure)),
                Ok(Dispatch::InShard(shard)) => in_shard.entry(shard).or_default().push(i),
                Ok(Dispatch::CrossShard { start, end }) => cross.push((i, start, end)),
                Ok(Dispatch::Miss { shard, .. }) => {
                    results[i] = Some(Err(BatchFailure::ShardMiss { shard }));
                }
            }
        }

        // -- 2. In-shard sub-batches, ascending shard order.
        for (shard, indices) in &in_shard {
            let imputer = &self.shards[shard];
            let sub: Vec<GapQuery> = indices.iter().map(|&i| queries[i]).collect();
            let (sub_results, sub_stats) =
                imputer.impute_batch_traced(&sub, pool, provenance, recorder, op);
            *fleet_stats.shard_requests.entry(*shard).or_insert(0) += sub.len() as u64;
            merge_stats(&mut stats, &sub_stats);
            for (&i, r) in indices.iter().zip(sub_results) {
                results[i] = Some(r);
            }
        }

        // -- 3. Cross-shard stitches, query order.
        for (i, start, end) in cross {
            let stitched = self.stitch(
                &queries[i],
                start,
                end,
                pool,
                provenance,
                recorder,
                op,
                &mut stats,
            );
            for shard in [start, end] {
                *fleet_stats.shard_requests.entry(shard).or_insert(0) += 1;
            }
            if stitched.is_ok() {
                fleet_stats.seam_routes += 1;
            }
            results[i] = Some(stitched);
        }

        // -- 4. Fallback rescue: anything still failed is re-served by
        //       the global blob when one is loaded.
        if let Some(fallback) = &self.fallback {
            let rescue_idx: Vec<usize> = results
                .iter()
                .enumerate()
                .filter(|(_, r)| matches!(r, Some(Err(_))))
                .map(|(i, _)| i)
                .collect();
            if !rescue_idx.is_empty() {
                fleet_stats.fallbacks = rescue_idx.len() as u64;
                let sub: Vec<GapQuery> = rescue_idx.iter().map(|&i| queries[i]).collect();
                let (sub_results, sub_stats) =
                    fallback.impute_batch_traced(&sub, pool, provenance, recorder, op);
                merge_stats(&mut stats, &sub_stats);
                for (&i, r) in rescue_idx.iter().zip(sub_results) {
                    results[i] = Some(r);
                }
            }
        }

        let results: Vec<Result<Imputation, BatchFailure>> = results
            .into_iter()
            .map(|r| r.expect("every query dispatched"))
            .collect();
        fleet_stats.misses = results
            .iter()
            .filter(|r| matches!(r, Err(BatchFailure::ShardMiss { .. })))
            .count() as u64;
        stats.queries = queries.len();
        stats.ok = results.iter().filter(|r| r.is_ok()).count();
        stats.failed = stats.queries - stats.ok;
        (results, stats, fleet_stats)
    }

    /// Two-leg seam stitch for one cross-shard gap (see
    /// [`Self::impute_batch`] for the construction).
    #[allow(clippy::too_many_arguments)]
    fn stitch(
        &self,
        gap: &GapQuery,
        start_shard: u32,
        end_shard: u32,
        pool: &ThreadPool,
        provenance: bool,
        recorder: Option<&Recorder>,
        op: &str,
        stats: &mut BatchStats,
    ) -> Result<Imputation, BatchFailure> {
        let a = &self.shards[&start_shard];
        let b = &self.shards[&end_shard];

        // Seam: shard B's nearest cell to the start position — the
        // boundary cell where traffic crosses into B — projected the
        // way B projects route cells, timestamped by distance share.
        let (seam_cell, _) = b
            .model()
            .snap(&gap.start.pos)
            .map_err(|e| BatchFailure::Snap(e.to_string()))?;
        let seam_pos = self.project(b.model(), seam_cell);
        let d1 = haversine_m(&gap.start.pos, &seam_pos);
        let d2 = haversine_m(&seam_pos, &gap.end.pos);
        let total = d1 + d2;
        let frac = if total > 0.0 { d1 / total } else { 0.5 };
        let duration = (gap.end.t - gap.start.t) as f64;
        let seam_t = (gap.start.t + (duration * frac).round() as i64).clamp(gap.start.t, gap.end.t);
        let seam = TimedPoint::new(seam_pos.lon, seam_pos.lat, seam_t);

        let leg1 = GapQuery {
            start: gap.start,
            end: seam,
        };
        let leg2 = GapQuery {
            start: seam,
            end: gap.end,
        };
        let first = run_leg(a, &leg1, pool, provenance, recorder, op, stats)?;
        let second = run_leg(b, &leg2, pool, provenance, recorder, op, stats)?;

        // Concatenate. The seam appears on both sides — as leg 1's end
        // point and leg 2's start point, and usually as a route cell of
        // both subgraphs — so consecutive duplicates (same position
        // bits, same timestamp) collapse to one point.
        let mut points = first.points;
        let mut prov = first.provenance;
        let both = prov.is_some() && second.provenance.is_some();
        if !both {
            prov = None;
        }
        for (k, point) in second.points.into_iter().enumerate() {
            let dup = points.last().is_some_and(|last| {
                last.t == point.t
                    && last.pos.lon.to_bits() == point.pos.lon.to_bits()
                    && last.pos.lat.to_bits() == point.pos.lat.to_bits()
            });
            if dup {
                continue;
            }
            points.push(point);
            if let (Some(p), Some(q)) = (prov.as_mut(), second.provenance.as_ref()) {
                if let Some(record) = q.get(k) {
                    p.push(record.clone());
                }
            }
        }
        let mut cells = first.cells;
        let mut tail = second.cells;
        if !cells.is_empty() && cells.last() == tail.first() {
            tail.remove(0);
        }
        cells.extend(tail);
        Ok(Imputation {
            points,
            cells,
            start_cell: first.start_cell,
            end_cell: second.end_cell,
            cost: first.cost + second.cost,
            expanded: first.expanded + second.expanded,
            raw_point_count: first.raw_point_count + second.raw_point_count - 1,
            provenance: prov,
        })
    }

    /// A model's cell projection, replicated for the seam point: the
    /// configured [`CellProjection`] over the cell's stats.
    fn project(&self, model: &HabitModel, cell: HexCell) -> GeoPoint {
        match model.config().projection {
            CellProjection::Center => self.grid.center(cell),
            CellProjection::Median => model
                .cell_stats(cell)
                .map(|s| GeoPoint::new(s.median_lon, s.median_lat))
                .unwrap_or_else(|| self.grid.center(cell)),
        }
    }

    /// Hot-swaps one shard's model (the per-shard `refit` path): the
    /// shard gets a fresh imputer (a refitted model invalidates cached
    /// routes), the manifest's blob hash and tile map absorb the new
    /// state, and the manifest hash moves. The caller persists the new
    /// blob bytes and manifest to the fleet directory.
    ///
    /// Returns the new blob bytes and the updated manifest.
    pub fn replace_shard(
        &mut self,
        shard: u32,
        model: Arc<HabitModel>,
    ) -> Result<(Vec<u8>, ShardManifest), FleetError> {
        if config_fingerprint(model.config()) != self.manifest.fingerprint {
            return Err(FleetError::ConfigMismatch);
        }
        let Some(blob) = self.manifest.blobs.get_mut(&shard) else {
            return Err(FleetError::BadManifest("refit of a shard with no blob"));
        };
        // Absorb any tiles the delta introduced. Foreign boundary cells
        // (the `lag_cl` side of inbound seam transitions) stay in the
        // graph but never claim a tile for this shard.
        let mut new_tiles = Vec::new();
        for (id, _) in model.graph().nodes() {
            let cell = HexCell::from_raw(id).map_err(habit_core::HabitError::Grid)?;
            let owner = self
                .partitioner
                .shard_of(cell)
                .map_err(habit_core::HabitError::Grid)? as u32;
            if owner != shard {
                continue;
            }
            let tile = self
                .partitioner
                .tile_of(cell)
                .map_err(habit_core::HabitError::Grid)?;
            new_tiles.push(tile.raw());
        }
        let bytes = model.to_bytes_full();
        blob.hash = crate::manifest::fnv1a64(&bytes);
        for tile in new_tiles {
            self.manifest.tiles.insert(tile, shard);
        }
        self.manifest_hash = self.manifest.manifest_hash();
        self.shards
            .insert(shard, BatchImputer::new(model, self.cache_capacity));
        Ok((bytes, self.manifest.clone()))
    }
}

/// Runs one stitched leg as a single-query batch on its shard's
/// imputer (sharing that shard's route cache), folding its counters
/// into the batch totals.
fn run_leg(
    imputer: &BatchImputer,
    leg: &GapQuery,
    pool: &ThreadPool,
    provenance: bool,
    recorder: Option<&Recorder>,
    op: &str,
    stats: &mut BatchStats,
) -> Result<Imputation, BatchFailure> {
    let (mut results, leg_stats) =
        imputer.impute_batch_traced(std::slice::from_ref(leg), pool, provenance, recorder, op);
    merge_stats(stats, &leg_stats);
    results.pop().expect("one query, one result")
}

/// Folds a sub-batch's route counters into the fleet totals (`queries`
/// / `ok` / `failed` are recomputed at the fleet level instead — a
/// stitched gap is one query, not two).
fn merge_stats(total: &mut BatchStats, sub: &BatchStats) {
    total.unique_routes += sub.unique_routes;
    total.cache_hits += sub.cache_hits;
    total.routes_computed += sub.routes_computed;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::tests::two_corridor_table;
    use crate::builder::{fit_fleet, load_fleet, shard_blob_name, write_fleet};
    use habit_core::HabitConfig;
    use habit_engine::{accumulate_per_shard, fit_sharded};
    use hexgrid::tiling::DEFAULT_TILE_LEVELS_UP;
    use proptest::prelude::*;
    use std::path::PathBuf;

    fn fleet_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("habit-fleet-router-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn router(table: &aggdb::Table, shards: u32, name: &str, pool: &ThreadPool) -> FleetRouter {
        let dir = fleet_dir(name);
        fit_fleet(table, HabitConfig::default(), shards, pool, &dir).expect("fit fleet");
        let fleet = load_fleet(&dir).expect("load fleet");
        let _ = std::fs::remove_dir_all(&dir);
        FleetRouter::new(fleet, None, 64).expect("router")
    }

    fn global_imputer(table: &aggdb::Table, pool: &ThreadPool) -> BatchImputer {
        let model = fit_sharded(table, HabitConfig::default(), 4, pool).expect("global fit");
        BatchImputer::new(Arc::new(model), 64)
    }

    /// Full byte-level equality, `expanded` and all — only valid when
    /// the serving models are bit-identical (the one-shard fleet).
    fn assert_identical(a: &Imputation, b: &Imputation) {
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.start_cell, b.start_cell);
        assert_eq!(a.end_cell, b.end_cell);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.expanded, b.expanded);
        assert_eq!(a.raw_point_count, b.raw_point_count);
        assert_same_points(a, b);
    }

    /// The serving-output pin for in-shard requests at any shard count:
    /// the imputed track — points, cells, cost — is byte-identical.
    /// (`expanded` is a search diagnostic; a shard subgraph's admissible
    /// heuristic may expand differently while finding the same route.)
    fn assert_same_points(a: &Imputation, b: &Imputation) {
        assert_eq!(a.points.len(), b.points.len());
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.t, y.t);
            assert_eq!(x.pos.lon.to_bits(), y.pos.lon.to_bits());
            assert_eq!(x.pos.lat.to_bits(), y.pos.lat.to_bits());
        }
    }

    fn corridor_queries() -> Vec<GapQuery> {
        vec![
            // Along corridor 1 (Denmark, lat 56).
            GapQuery::new(10.02, 56.0, 0, 10.2, 56.0, 7200),
            GapQuery::new(10.05, 56.0, 0, 10.1, 56.0, 1800),
            GapQuery::new(10.15, 56.0, 100, 10.22, 56.0, 2900),
            // Along corridor 2 (Aegean, lat 38).
            GapQuery::new(24.02, 38.0, 0, 24.2, 38.0, 7200),
            GapQuery::new(24.1, 38.0, 50, 24.18, 38.0, 3250),
            // Across the disconnected corridors: honestly unroutable.
            GapQuery::new(10.1, 56.0, 0, 24.1, 38.0, 864_000),
        ]
    }

    #[test]
    fn one_shard_fleet_serves_byte_identically() {
        let table = two_corridor_table(120);
        let pool = ThreadPool::new(2);
        let fleet = router(&table, 1, "one-shard", &pool);
        assert_eq!(fleet.shard_count(), 1);
        let single = global_imputer(&table, &pool);

        let queries = corridor_queries();
        let (fleet_results, stats, fleet_stats) =
            fleet.impute_batch(&queries, &pool, false, None, "test");
        let (single_results, _) = single.impute_batch(&queries, &pool);
        assert_eq!(stats.queries, queries.len());
        assert_eq!(fleet_stats.seam_routes, 0);
        assert_eq!(fleet_stats.misses, 0);
        assert_eq!(
            fleet_stats.shard_requests.get(&0).copied(),
            Some(queries.len() as u64),
            "every query dispatches in-shard to shard 0"
        );
        for (i, (a, b)) in fleet_results.iter().zip(&single_results).enumerate() {
            match (a, b) {
                (Ok(x), Ok(y)) => assert_identical(x, y),
                (Err(x), Err(y)) => assert_eq!(x, y, "query {i}"),
                _ => panic!("query {i}: ok/err divergence"),
            }
        }
    }

    #[test]
    fn in_shard_requests_match_the_single_blob_at_any_shard_count() {
        let table = two_corridor_table(120);
        let pool = ThreadPool::new(2);
        let single = global_imputer(&table, &pool);
        // Short gaps: an in-shard request whose corridor stays inside
        // the shard's tiles serves from the shard subgraph exactly as
        // the single blob serves it. (Longer in-shard gaps whose best
        // corridor crosses foreign tiles are the documented seam limit
        // — exercised by the fallback test below, not silently skipped
        // here.)
        let mut queries = Vec::new();
        for base in [10.0f64, 24.0] {
            let lat = if base < 20.0 { 56.0 } else { 38.0 };
            for i in 0..10 {
                let lon = base + 0.01 + i as f64 * 0.02;
                queries.push(GapQuery::new(lon, lat, 0, lon + 0.015, lat, 900));
            }
        }
        let (single_results, _) = single.impute_batch(&queries, &pool);

        for shards in [2u32, 4, 8] {
            let fleet = router(&table, shards, &format!("in-shard-{shards}"), &pool);
            let (fleet_results, _, _) = fleet.impute_batch(&queries, &pool, false, None, "test");
            let mut in_shard = 0;
            for (i, query) in queries.iter().enumerate() {
                if !matches!(fleet.classify(query), Ok(Dispatch::InShard(_))) {
                    continue;
                }
                in_shard += 1;
                match (&fleet_results[i], &single_results[i]) {
                    (Ok(x), Ok(y)) => assert_same_points(x, y),
                    (Err(x), Err(y)) => assert_eq!(x, y, "shards={shards} query {i}"),
                    _ => panic!("shards={shards} query {i}: ok/err divergence"),
                }
            }
            assert!(in_shard > 0, "shards={shards}: no in-shard query exercised");
        }
    }

    #[test]
    fn fallback_rescues_every_request_the_single_blob_can_serve() {
        // With the global blob loaded as fallback, the fleet's answer
        // set dominates: whatever a shard cannot serve (seam-crossing
        // corridors, failed stitches, misses) comes back from the
        // fallback — so every query either matches the single blob's
        // successful track shape or fails exactly like it.
        let table = two_corridor_table(120);
        let config = HabitConfig::default();
        let pool = ThreadPool::new(2);
        let dir = fleet_dir("rescue");
        fit_fleet(&table, config, 8, &pool, &dir).expect("fit fleet");
        let global = Arc::new(fit_sharded(&table, config, 4, &pool).expect("global fit"));
        let single = BatchImputer::new(Arc::clone(&global), 64);
        let fleet =
            FleetRouter::new(load_fleet(&dir).expect("load"), Some(global), 64).expect("router");
        let _ = std::fs::remove_dir_all(&dir);

        let queries = corridor_queries();
        let (fleet_results, stats, fleet_stats) =
            fleet.impute_batch(&queries, &pool, false, None, "test");
        let (single_results, single_stats) = single.impute_batch(&queries, &pool);
        assert_eq!(fleet_stats.misses, 0, "fallback absorbs every miss");
        assert!(
            stats.ok >= single_stats.ok,
            "fleet with fallback serves at least what the single blob serves"
        );
        for (i, (a, b)) in fleet_results.iter().zip(&single_results).enumerate() {
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    // Same gap, same anchoring; the track itself may be
                    // a shard-local or stitched variant.
                    assert_eq!(x.points.first().map(|p| p.t), y.points.first().map(|p| p.t));
                    assert_eq!(x.points.last().map(|p| p.t), y.points.last().map(|p| p.t));
                }
                (Ok(_), Err(_)) => {} // the stitch can serve gaps the single blob cannot
                (Err(_), Ok(_)) => panic!("query {i}: fallback failed a servable gap"),
                (Err(_), Err(_)) => {}
            }
        }
    }

    #[test]
    fn cross_shard_gaps_are_stitched_at_the_seam() {
        let table = two_corridor_table(120);
        let pool = ThreadPool::new(2);
        // Walk corridor 1 for a shard count and a nearby endpoint pair
        // owned by two different shards whose stitch succeeds
        // (deterministic: ownership is a pure hash of the tile). Not
        // every cross-shard pair can stitch — a third shard's tile in
        // between is the documented seam limit — so hunt for one that
        // does.
        let mut found = None;
        'search: for shards in 2u32..=16 {
            let fleet = router(&table, shards, &format!("cross-{shards}"), &pool);
            for i in 0..20 {
                let q = GapQuery::new(
                    10.0 + i as f64 * 0.01,
                    56.0,
                    0,
                    10.04 + i as f64 * 0.01,
                    56.0,
                    1800,
                );
                if let Ok(Dispatch::CrossShard { start, end }) = fleet.classify(&q) {
                    let (r, _, _) = fleet.impute_batch(&[q], &pool, false, None, "probe");
                    if r[0].is_ok() {
                        found = Some((fleet, q, start, end));
                        break 'search;
                    }
                }
            }
        }
        let (fleet, query, start_shard, end_shard) = found.expect("a stitchable pair exists");

        let (results, stats, fleet_stats) = fleet.impute_batch(&[query], &pool, true, None, "test");
        let imp = results[0].as_ref().expect("stitched imputation");
        assert_eq!(stats.ok, 1);
        assert_eq!(fleet_stats.seam_routes, 1);
        assert_eq!(
            fleet_stats.shard_requests.get(&start_shard).copied(),
            Some(1)
        );
        assert_eq!(fleet_stats.shard_requests.get(&end_shard).copied(), Some(1));

        // The stitched track is a real trajectory: anchored at the gap
        // endpoints, time monotone, seam point deduplicated, provenance
        // aligned with the points.
        let first = imp.points.first().expect("points");
        let last = imp.points.last().expect("points");
        assert_eq!(first.t, query.start.t);
        assert_eq!(first.pos.lon.to_bits(), query.start.pos.lon.to_bits());
        assert_eq!(last.t, query.end.t);
        assert_eq!(last.pos.lon.to_bits(), query.end.pos.lon.to_bits());
        assert!(imp.points.windows(2).all(|w| w[0].t <= w[1].t));
        assert!(imp
            .points
            .windows(2)
            .all(|w| w[0].pos != w[1].pos || w[0].t != w[1].t));
        assert!(!imp.cells.is_empty());
        let prov = imp.provenance.as_ref().expect("requested provenance");
        assert_eq!(prov.len(), imp.points.len());
    }

    #[test]
    fn shard_misses_fail_typed_or_fall_back_to_the_global_blob() {
        let table = two_corridor_table(120);
        let config = HabitConfig::default();
        let pool = ThreadPool::new(2);
        let shards = 8u32;

        // Drop the shard owning the middle of corridor 2 from the fleet.
        let partitioner =
            TilePartitioner::new(config.resolution, DEFAULT_TILE_LEVELS_UP, shards as usize);
        let grid = HexGrid::new();
        let mid = grid
            .cell(&GeoPoint::new(24.1, 38.0), config.resolution)
            .expect("cell");
        let dropped = partitioner.shard_of(mid).expect("owner") as u32;
        let mut states =
            accumulate_per_shard(&table, config, shards as usize, &pool).expect("states");
        states.retain(|(s, _)| *s != dropped);
        assert!(!states.is_empty());
        let dir = fleet_dir("miss");
        write_fleet(&dir, states, shards).expect("write");
        let query = GapQuery::new(24.09, 38.0, 0, 24.11, 38.0, 1800);

        // Without a fallback: a typed shard miss, not a silent reroute.
        let fleet = FleetRouter::new(load_fleet(&dir).expect("load"), None, 64).expect("router");
        assert!(matches!(
            fleet.classify(&query),
            Ok(Dispatch::Miss { shard, .. }) if shard == dropped
        ));
        let (results, stats, fleet_stats) =
            fleet.impute_batch(&[query], &pool, false, None, "test");
        assert_eq!(stats.failed, 1);
        assert_eq!(fleet_stats.misses, 1);
        assert_eq!(
            results[0].as_ref().err(),
            Some(&BatchFailure::ShardMiss { shard: dropped })
        );

        // With the global blob as fallback: served, byte-identical to
        // the single-blob path.
        let global = Arc::new(fit_sharded(&table, config, 4, &pool).expect("global fit"));
        let single = BatchImputer::new(Arc::clone(&global), 64);
        let fleet =
            FleetRouter::new(load_fleet(&dir).expect("load"), Some(global), 64).expect("router");
        assert!(fleet.has_fallback());
        let (results, stats, fleet_stats) =
            fleet.impute_batch(&[query], &pool, false, None, "test");
        assert_eq!(stats.ok, 1, "{:?}", results[0]);
        assert_eq!(fleet_stats.fallbacks, 1);
        assert_eq!(fleet_stats.misses, 0);
        let (single_results, _) = single.impute_batch(&[query], &pool);
        assert_identical(
            results[0].as_ref().expect("served"),
            single_results[0].as_ref().expect("served"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replace_shard_matches_a_from_scratch_fleet_fit_over_the_union() {
        // History: both corridors. Delta: a third vessel re-sailing the
        // first half of corridor 1 (same cells, disjoint trip ids).
        let history = two_corridor_table(120);
        let delta = {
            use aggdb::Column;
            let n = 60usize;
            aggdb::Table::from_columns(vec![
                ("trip_id", Column::from_u64(vec![7; n])),
                ("vessel_id", Column::from_u64(vec![77; n])),
                (
                    "ts",
                    Column::from_i64((0..n as i64).map(|i| i * 60).collect()),
                ),
                (
                    "lon",
                    Column::from_f64((0..n).map(|i| 10.0 + i as f64 * 0.002).collect()),
                ),
                ("lat", Column::from_f64(vec![56.0; n])),
                ("sog", Column::from_f64(vec![12.0; n])),
                ("cog", Column::from_f64(vec![90.0; n])),
            ])
            .expect("delta table")
        };
        let union = {
            let mut trip = Vec::new();
            let mut vessel = Vec::new();
            let mut ts = Vec::new();
            let mut lon = Vec::new();
            let mut lat = Vec::new();
            let mut sog = Vec::new();
            let mut cog = Vec::new();
            for t in [&history, &delta] {
                let get_u64 = |name: &str| {
                    t.column_by_name(name)
                        .expect("column")
                        .u64_values()
                        .expect("u64")
                        .to_vec()
                };
                let get_i64 = |name: &str| {
                    t.column_by_name(name)
                        .expect("column")
                        .i64_values()
                        .expect("i64")
                        .to_vec()
                };
                let get_f64 = |name: &str| {
                    t.column_by_name(name)
                        .expect("column")
                        .f64_values()
                        .expect("f64")
                        .to_vec()
                };
                trip.extend(get_u64("trip_id"));
                vessel.extend(get_u64("vessel_id"));
                ts.extend(get_i64("ts"));
                lon.extend(get_f64("lon"));
                lat.extend(get_f64("lat"));
                sog.extend(get_f64("sog"));
                cog.extend(get_f64("cog"));
            }
            aggdb::Table::from_columns(vec![
                ("trip_id", aggdb::Column::from_u64(trip)),
                ("vessel_id", aggdb::Column::from_u64(vessel)),
                ("ts", aggdb::Column::from_i64(ts)),
                ("lon", aggdb::Column::from_f64(lon)),
                ("lat", aggdb::Column::from_f64(lat)),
                ("sog", aggdb::Column::from_f64(sog)),
                ("cog", aggdb::Column::from_f64(cog)),
            ])
            .expect("union table")
        };

        let config = HabitConfig::default();
        let pool = ThreadPool::new(2);
        let shards = 8u32;
        let dir = fleet_dir("refit-history");
        fit_fleet(&history, config, shards, &pool, &dir).expect("fit history");
        let mut fleet =
            FleetRouter::new(load_fleet(&dir).expect("load"), None, 64).expect("router");
        let _ = std::fs::remove_dir_all(&dir);
        let before_hash = fleet.manifest_hash();

        // Per-shard refit: merge each delta shard state into the loaded
        // shard's state and hot-swap.
        let delta_states =
            accumulate_per_shard(&delta, config, shards as usize, &pool).expect("delta states");
        assert!(!delta_states.is_empty());
        let mut swapped = Vec::new();
        for (shard, delta_state) in delta_states {
            let mut state = fleet
                .model(shard)
                .expect("delta cells only touch loaded shards")
                .state()
                .expect("v2 blobs keep state")
                .clone();
            state.merge(delta_state).expect("merge");
            let model = Arc::new(habit_core::HabitModel::from_fit_state(state).expect("refit"));
            let (bytes, manifest) = fleet.replace_shard(shard, model).expect("swap");
            assert_eq!(
                manifest.blobs[&shard].hash,
                crate::manifest::fnv1a64(&bytes)
            );
            swapped.push((shard, bytes));
        }
        assert_ne!(fleet.manifest_hash(), before_hash, "identity moved");

        // The hot-swapped blobs are byte-identical to a from-scratch
        // fleet fit over history ∪ delta.
        let dir = fleet_dir("refit-union");
        fit_fleet(&union, config, shards, &pool, &dir).expect("fit union");
        for (shard, bytes) in &swapped {
            let fresh = std::fs::read(dir.join(shard_blob_name(*shard))).expect("union blob");
            assert_eq!(&fresh, bytes, "shard {shard} refit diverges from scratch");
        }
        // And untouched shards kept serving: short in-shard gaps on
        // corridor 2 still answer.
        let served = (0..10).any(|i| {
            let lon = 24.01 + i as f64 * 0.02;
            let q = GapQuery::new(lon, 38.0, 0, lon + 0.015, 38.0, 900);
            matches!(fleet.classify(&q), Ok(Dispatch::InShard(_)))
                && fleet.impute_batch(&[q], &pool, false, None, "test").0[0].is_ok()
        });
        assert!(
            served,
            "corridor 2 stopped serving after a corridor 1 refit"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// The fleet determinism contract: for random trip tables, a
        /// one-shard fleet round-tripped through disk answers random
        /// gap queries byte-identically to the single-blob imputer.
        #[test]
        fn one_shard_fleet_equals_single_blob_on_random_trips(
            seed in 0u64..10_000,
            n_trips in 3usize..6,
            points in 40usize..80,
        ) {
            use ais::{trips_to_table, AisPoint, Trip};
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};

            let mut rng = StdRng::seed_from_u64(seed);
            let mut trips = Vec::with_capacity(n_trips);
            for k in 0..n_trips {
                let mut lon = 8.0 + rng.gen_range(0.0..6.0);
                let mut lat = 54.0 + rng.gen_range(0.0..3.0);
                let heading = rng.gen_range(0.0..std::f64::consts::TAU);
                let (dlon, dlat) = (heading.cos() * 0.004, heading.sin() * 0.003);
                let mut pts = Vec::with_capacity(points);
                for i in 0..points {
                    lon += dlon;
                    lat += dlat;
                    pts.push(AisPoint::new(
                        1000 + k as u64,
                        i as i64 * 60,
                        lon,
                        lat,
                        rng.gen_range(5.0..15.0),
                        rng.gen_range(0.0..360.0),
                    ));
                }
                trips.push(Trip { trip_id: k as u64 + 1, mmsi: 1000 + k as u64, points: pts });
            }
            let table = trips_to_table(&trips);
            let pool = ThreadPool::new(2);
            let dir = fleet_dir(&format!("prop-{seed}-{n_trips}-{points}"));
            let config = HabitConfig::default();
            if fit_fleet(&table, config, 1, &pool, &dir).is_err() {
                // All-drift inputs reject on both paths; nothing to serve.
                let _ = std::fs::remove_dir_all(&dir);
                return Ok(());
            }
            let fleet = FleetRouter::new(load_fleet(&dir).expect("load"), None, 32)
                .expect("router");
            let _ = std::fs::remove_dir_all(&dir);
            let single = global_imputer(&table, &pool);

            // Queries between random report positions of random trips.
            let queries: Vec<GapQuery> = (0..8)
                .map(|_| {
                    let a = &trips[rng.gen_range(0..trips.len())];
                    let b = &trips[rng.gen_range(0..trips.len())];
                    let p = &a.points[rng.gen_range(0..a.points.len())];
                    let q = &b.points[rng.gen_range(0..b.points.len())];
                    GapQuery::new(p.pos.lon, p.pos.lat, 0, q.pos.lon, q.pos.lat, 3600)
                })
                .collect();
            let (fleet_results, _, fleet_stats) =
                fleet.impute_batch(&queries, &pool, false, None, "prop");
            let (single_results, _) = single.impute_batch(&queries, &pool);
            prop_assert_eq!(fleet_stats.seam_routes, 0);
            prop_assert_eq!(fleet_stats.misses, 0);
            for (a, b) in fleet_results.iter().zip(&single_results) {
                match (a, b) {
                    (Ok(x), Ok(y)) => assert_identical(x, y),
                    (Err(x), Err(y)) => prop_assert_eq!(x, y),
                    _ => prop_assert!(false, "ok/err divergence"),
                }
            }
        }
    }
}
