//! # habit-fleet — a fleet of per-shard HABIT models behind one front
//!
//! For datasets too large for a single transition graph, this crate
//! turns the single-blob server into a **model fleet**:
//!
//! * [`manifest`] — the versioned, self-delimiting `HFM1`
//!   [`ShardManifest`]: the fit configuration fingerprint, the
//!   [`hexgrid::TilePartitioner`] parameters that decide tile
//!   ownership, a key-sorted shard → blob path/hash table, and the
//!   key-sorted tile → shard map. Canonical bytes: two manifests built
//!   from the same entries in any insertion order serialize
//!   identically (property-tested), and a committed golden blob pins
//!   the layout.
//! * [`builder`] — [`fit_fleet`]/[`write_fleet`] persist one v2 model
//!   blob per non-empty shard from the engine's per-shard
//!   [`habit_core::FitState`]s (the seam behind
//!   `habit fit --shards-out DIR`), and [`load_fleet`] loads a
//!   directory back, verifying blob hashes and config fingerprints.
//! * [`router`] — the [`FleetRouter`] scatter/gather front: each gap
//!   is classified by the tiles of its endpoints, in-shard gaps
//!   dispatch to the owning shard's `BatchImputer` (per-shard route
//!   caches), cross-shard gaps are routed leg by leg in their owning
//!   shards and stitched at a tile-seam cell, and a gap landing on a
//!   shard the manifest does not carry is a typed *shard miss* —
//!   served honestly by the optional global fallback blob when one is
//!   loaded, failed with `shard_miss` otherwise.
//!
//! The discipline mirrors the engine's sharded fit: a **one-shard
//! fleet serves byte-identically** to the single-blob path (the shard
//! state *is* the global state), and in-shard requests at any shard
//! count go through exactly the single-blob serving code path against
//! the shard's model. Only cross-shard stitches are approximate, and
//! they are quality-gated by the committed `fleet_scale` experiment
//! rather than byte-pinned.

pub mod builder;
pub mod manifest;
pub mod router;

pub use builder::{fit_fleet, load_fleet, shard_blob_name, write_fleet, LoadedFleet};
pub use manifest::{config_fingerprint, fnv1a64, ShardBlob, ShardManifest, MANIFEST_FILE};
pub use router::{Dispatch, FleetBatchStats, FleetRouter};

use std::fmt;

/// Default shard count for `habit fit --shards-out` when the request
/// does not pick one.
pub const DEFAULT_FLEET_SHARDS: u32 = 4;

/// Everything that can go wrong building, loading, or routing a fleet.
#[derive(Debug)]
pub enum FleetError {
    /// An underlying model operation failed (fit, snap, route…).
    Habit(habit_core::HabitError),
    /// Reading or writing a blob/manifest file failed.
    Io(std::io::Error),
    /// The manifest bytes are corrupt, non-canonical, or carry an
    /// unsupported version.
    BadManifest(&'static str),
    /// A shard blob's bytes do not match the hash the manifest records.
    HashMismatch {
        /// The shard whose blob drifted.
        shard: u32,
    },
    /// A shard blob was fitted under a different configuration than the
    /// manifest's fingerprint (or than its sibling shards).
    ConfigMismatch,
    /// A gap endpoint falls in a tile owned by a shard the manifest
    /// does not carry (and no global fallback blob is loaded).
    ShardMiss {
        /// The owning shard id (`hash(tile) % shards`).
        shard: u32,
        /// The raw id of the endpoint's tile.
        tile: u64,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Habit(e) => write!(f, "{e}"),
            FleetError::Io(e) => write!(f, "fleet I/O: {e}"),
            FleetError::BadManifest(why) => write!(f, "bad fleet manifest: {why}"),
            FleetError::HashMismatch { shard } => write!(
                f,
                "shard {shard} blob bytes do not match the manifest hash (stale or corrupt blob)"
            ),
            FleetError::ConfigMismatch => {
                write!(
                    f,
                    "shard blob configuration differs from the fleet manifest"
                )
            }
            FleetError::ShardMiss { shard, tile } => write!(
                f,
                "gap endpoint tile {tile:#x} is owned by shard {shard}, which this fleet does \
                 not carry (no global fallback loaded)"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<habit_core::HabitError> for FleetError {
    fn from(e: habit_core::HabitError) -> Self {
        FleetError::Habit(e)
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}
