//! Minimal, self-contained re-implementation of the `criterion` 0.5
//! API surface used by this workspace's benches.
//!
//! The build environment cannot reach crates.io, so this vendored stub
//! provides a functioning wall-clock benchmark harness with the same
//! call structure as the real crate: each sample times a batch of
//! iterations, and the per-iteration mean / median / min over
//! `sample_size` samples is printed as
//!
//! ```text
//! name                    time: [min 1.20 µs  med 1.31 µs  mean 1.35 µs]
//! ```
//!
//! There is no outlier analysis, no warm-up tuning beyond a fixed
//! burn-in, and no plots/HTML. `cargo bench` and `cargo bench --no-run`
//! both work; arguments cargo forwards (e.g. `--bench`, filters) are
//! accepted and filters are applied to benchmark names.
//!
//! For machine-readable perf tracking (the fine-grained complement to
//! the experiment-level wall clocks `perf_check` gates on), set
//! `CRITERION_SUMMARY_FILE=/path/to/file`: every finished benchmark
//! appends one tab-separated line
//!
//! ```text
//! <name>\t<min_ns>\t<median_ns>\t<mean_ns>
//! ```
//!
//! so two runs can be diffed/joined per benchmark without parsing the
//! human-formatted output.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use self::batch_size::BatchSize;

mod batch_size {
    /// How much setup output to amortise per timing batch. The stub
    /// times one routine call per sample regardless, so the variants
    /// only exist for API compatibility.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum BatchSize {
        SmallInput,
        LargeInput,
        PerIteration,
        NumBatches(u64),
        NumIterations(u64),
    }
}

/// Identifier for a parameterised benchmark: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` over batched calls so nanosecond-scale routines
    /// amortize the clock-read overhead instead of measuring it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Burn-in: one untimed call to warm caches and lazy statics.
        let _ = std::hint::black_box(routine());
        // Calibrate a batch size targeting ≥ ~20 µs per timed batch,
        // capped so slow routines still run once per sample.
        let t0 = Instant::now();
        let _ = std::hint::black_box(routine());
        let est_ns = t0.elapsed().as_nanos().max(1);
        let batch = (20_000 / est_ns).clamp(1, 1_024) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                let out = routine();
                std::hint::black_box(out);
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    /// Time `routine` on fresh input from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let elapsed = start.elapsed();
            std::hint::black_box(out);
            self.samples.push(elapsed);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{name:<44} time: [no samples]");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<44} time: [min {}  med {}  mean {}]",
        format_duration(min),
        format_duration(median),
        format_duration(mean),
    );
    append_summary_line(name, min, median, mean);
}

/// Appends the machine-readable `name\tmin\tmed\tmean` (nanoseconds)
/// line to `$CRITERION_SUMMARY_FILE`, when set. Write failures only
/// warn: a perf-tracking side channel must never fail the benches.
fn append_summary_line(name: &str, min: Duration, median: Duration, mean: Duration) {
    let Some(path) = std::env::var_os("CRITERION_SUMMARY_FILE") else {
        return;
    };
    use std::io::Write;
    let line = format!(
        "{name}\t{}\t{}\t{}\n",
        min.as_nanos(),
        median.as_nanos(),
        mean.as_nanos()
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = result {
        eprintln!("criterion: could not append to {path:?}: {e}");
    }
}

/// The top-level harness state.
pub struct Criterion {
    sample_size: usize,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional args cargo forwards act as name filters, like the
        // real harness. A `--flag value` pair must not leak its value
        // into the filter list (it would silently skip every bench), so
        // any dashed arg other than the boolean `--bench` consumes the
        // following token as its value.
        let mut filters = Vec::new();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            if !arg.starts_with('-') {
                filters.push(arg);
            } else if arg != "--bench"
                && !arg.contains('=')
                && args.peek().is_some_and(|next| !next.starts_with('-'))
            {
                args.next();
            }
        }
        Criterion {
            sample_size: 100,
            filters,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (the real crate enforces
    /// ≥ 10; so does the stub).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.selected(name) {
            run_one(name, self.sample_size, &mut f);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.criterion.selected(&full) {
            run_one(&full, self.effective_sample_size(), &mut f);
        }
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        if self.criterion.selected(&full) {
            run_one(&full, self.effective_sample_size(), &mut |b| f(b, input));
        }
        self
    }

    pub fn finish(self) {}
}

/// Re-export so `criterion::black_box` callers work; the real crate
/// deprecates its own copy in favour of the std one.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs this group's bench targets (generated by `criterion_group!`).
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion {
            sample_size: 12,
            filters: Vec::new(),
        };
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        // burn-in + calibration + sample_size batches of equal size
        assert!(calls >= 2 + 12, "calls {calls}");
        assert_eq!(
            (calls - 2) % 12,
            0,
            "whole batches per sample, calls {calls}"
        );
    }

    #[test]
    fn groups_and_batched_inputs_run() {
        let mut c = Criterion {
            sample_size: 10,
            filters: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut setups = 0u32;
        group.bench_function(BenchmarkId::new("f", 3), |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert_eq!(setups, 11);
    }

    #[test]
    fn summary_file_gets_one_tsv_line_per_bench() {
        let path =
            std::env::temp_dir().join(format!("criterion-summary-{}.tsv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // The env var is process-global and other tests in this binary
        // run bench_function concurrently — their lines may land in the
        // file while it is set, so assert only on this test's own
        // benchmark lines, never on the total count.
        std::env::set_var("CRITERION_SUMMARY_FILE", &path);
        let mut c = Criterion {
            sample_size: 10,
            filters: Vec::new(),
        };
        c.bench_function("summary_alpha", |b| b.iter(|| 1u32 + 1));
        c.bench_function("summary_beta", |b| b.iter(|| 2u32 * 2));
        std::env::remove_var("CRITERION_SUMMARY_FILE");

        let text = std::fs::read_to_string(&path).expect("summary written");
        std::fs::remove_file(&path).ok();
        for name in ["summary_alpha", "summary_beta"] {
            let line = text
                .lines()
                .find(|l| l.starts_with(&format!("{name}\t")))
                .unwrap_or_else(|| panic!("no summary line for {name}: {text}"));
            let cols: Vec<&str> = line.split('\t').collect();
            assert_eq!(cols.len(), 4, "{line}");
            for ns in &cols[1..] {
                ns.parse::<u128>().expect("nanosecond integer");
            }
        }
    }

    #[test]
    fn filters_skip_unmatched() {
        let mut c = Criterion {
            sample_size: 10,
            filters: vec!["only_this".to_owned()],
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
        c.bench_function("only_this_one", |b| b.iter(|| 1));
    }
}
