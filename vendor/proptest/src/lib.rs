//! Minimal, self-contained re-implementation of the `proptest` 1.x API
//! surface used by this workspace.
//!
//! The build environment cannot reach crates.io, so this vendored stub
//! provides the same *macroscopic* behaviour the real crate does —
//! run each property over many generated inputs and fail with the
//! offending assertion — with two simplifications:
//!
//! * inputs are generated from a deterministic per-test RNG (seeded
//!   from the property's name), so failures are reproducible runs, not
//!   flaky ones;
//! * there is **no shrinking**: a failing case reports the assertion
//!   message and case index, not a minimised input.
//!
//! Supported surface: [`proptest!`], [`prop_assert!`],
//! [`prop_assert_eq!`], [`prop_assert_ne!`], [`prop_oneof!`],
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! [`arbitrary::any`], [`collection::vec`], ranges over the numeric
//! primitives as strategies, tuple strategies up to arity 8, and
//! [`test_runner::ProptestConfig::with_cases`].

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    /// Run-time configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; keep that so coverage is
            // comparable.
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case failed.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// The RNG handed to strategies while generating a case.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Deterministic per-test stream: hash the test name, offset by the
    /// case index so every case sees fresh values.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5EED)))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real crate there is no value tree / shrinking: a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then use it to build a second strategy to
        /// draw the final value from.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Erase the concrete strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.new_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            let idx = rng.gen_range(0..self.0.len());
            self.0[idx].new_value(rng)
        }
    }

    impl<T: rand::SampleUniform> Strategy for core::ops::Range<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary() -> AnyStrategy<Self>;
    }

    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    /// The strategy returned by [`any`].
    impl<T: ArbitraryPrim> Strategy for AnyStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::any_value(rng)
        }
    }

    /// Primitive full-domain generation.
    pub trait ArbitraryPrim: Sized {
        fn any_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryPrim for $t {
                fn any_value(rng: &mut TestRng) -> Self {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                fn arbitrary() -> AnyStrategy<Self> {
                    AnyStrategy(core::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryPrim for bool {
        fn any_value(rng: &mut TestRng) -> Self {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        fn arbitrary() -> AnyStrategy<Self> {
            AnyStrategy(core::marker::PhantomData)
        }
    }

    /// `any::<T>()` — the full domain of `T` as a strategy.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        T::arbitrary()
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Acceptable size arguments for [`vec`]: a fixed length or a
    /// half-open range of lengths.
    pub trait IntoSizeRange {
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// A `Vec` whose elements come from `elem` and whose length comes
    /// from `len`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]`
/// that checks the body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = ($strat).new_value(&mut rng);)*
                // The closure exists so `prop_assert!`'s early `return`
                // aborts only the current case, not the whole test fn.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure aborts only the current
/// case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
            stringify!($left),
            stringify!($right),
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n  {}",
            stringify!($left),
            stringify!($right),
            l,
            format!($($fmt)+)
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_maps(v in (1usize..5, 0u64..100).prop_map(|(n, s)| vec![s; n])) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn flat_map_links_sizes(v in (1usize..8).prop_flat_map(|n| crate::collection::vec(0u8..=255, n))) {
            prop_assert!((1..8).contains(&v.len()));
        }

        #[test]
        fn oneof_picks_both_arms(x in prop_oneof![0u32..10, 100u32..110]) {
            prop_assert!(x < 10 || (100..110).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_caps_cases(x in any::<u8>()) {
            let _ = x;
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "proptest always_fails failed at case 0")]
        fn always_fails(x in 0u8..=255) {
            let _ = x;
            prop_assert!(false, "impossible");
        }
    }
}
