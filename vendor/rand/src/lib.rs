//! Minimal, self-contained re-implementation of the `rand` 0.8 API
//! surface used by this workspace.
//!
//! The build environment cannot reach crates.io, so this vendored stub
//! provides deterministic, seedable pseudo-randomness with the same
//! call signatures the real crate exposes:
//!
//! * [`rngs::StdRng`] — a xoshiro256++ generator (statistically strong,
//!   not cryptographic — the real `StdRng` is ChaCha12, but nothing in
//!   this workspace needs CSPRNG guarantees);
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion, the
//!   same scheme rand 0.8 documents for this method;
//! * [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Streams differ from the real `rand` crate (different core
//! generator), which is fine: every consumer seeds explicitly and only
//! relies on determinism-per-seed, never on matching upstream streams.

use core::ops::{Range, RangeInclusive};

/// The core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map a raw `u64` to a uniform `f64` in `[0, 1)` with 53 bits of
/// precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Types sampleable by [`Rng::gen`] — the tiny subset of rand's
/// `Standard` distribution this workspace needs.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types [`Rng::gen_range`] can sample uniformly.
///
/// The blanket `SampleRange` impls below are generic over this trait —
/// matching the real crate's shape — so that untyped literals like
/// `rng.gen_range(150..210)` unify with the surrounding context
/// (e.g. `i64 += …`) instead of falling back to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_inclusive(rng, start, end)
    }
}

/// Unbiased-enough uniform integer in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; bias is
/// ≤ span/2⁶⁴, far below anything a simulation or test can observe).
#[inline]
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // Widen through i128 so narrow *signed* spans don't
                // sign-extend (e.g. -2e9..2e9 on i32 wraps in-type).
                let span = ((hi as i128).wrapping_sub(lo as i128)) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = ((hi as i128).wrapping_sub(lo as i128)) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                let v = lo + u * (hi - lo);
                // `lo + u*(hi-lo)` can round up to exactly `hi` even for
                // u < 1; keep the half-open contract.
                if v < hi { v } else { hi.next_down().max(lo) }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                (lo + u * (hi - lo)).min(hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator the real rand 0.8 uses, but every
    /// consumer in this workspace only needs "deterministic per seed,
    /// statistically uniform", which xoshiro256++ provides.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, as rand documents for seed_from_u64.
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices: the `shuffle` / `choose` subset of
    /// rand 0.8's `SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<u64> = (0..16).map(|_| d.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&i));
            // Narrow signed range whose span exceeds the type's MAX:
            // must not sign-extend the wrapped in-type difference.
            let w = rng.gen_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_uniformish() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3, 4];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
