//! Smoke test for the umbrella crate's public surface: the re-exports
//! the quick start and downstream users rely on must stay reachable
//! through `habit::prelude::*` / `habit::synth::datasets`. A rename or
//! dropped re-export anywhere in the stack fails here first, with a
//! readable error instead of a broken doctest.

use habit::prelude::*;
use habit::synth::{datasets, DatasetSpec};

#[test]
fn prelude_exposes_the_quickstart_surface() {
    // `datasets::kiel` + the spec type build a dataset…
    let dataset = datasets::kiel(DatasetSpec {
        seed: 42,
        scale: 0.05,
    });
    let table = dataset.trip_table();

    // …`HabitConfig` / `HabitModel` fit it…
    let config = HabitConfig {
        resolution: 8,
        ..HabitConfig::default()
    };
    let model = HabitModel::fit(&table, config).expect("fit");
    assert!(model.node_count() > 0);

    // …`GapQuery` + `HabitModel::impute` answer a gap…
    let trips = dataset.trips();
    let trip = &trips[0];
    let a = &trip.points[5];
    let b = &trip.points[trip.points.len() - 5];
    let gap = GapQuery::new(a.pos.lon, a.pos.lat, a.t, b.pos.lon, b.pos.lat, b.t);
    let path = model.impute(&gap).expect("impute").points;
    assert!(path.len() >= 2);

    // …`impute_sli` and `resampled_dtw_m` evaluate it.
    let sli = impute_sli(gap.start, gap.end, 250.0);
    let habit_pts: Vec<GeoPoint> = path.iter().map(|p| p.pos).collect();
    let sli_pts: Vec<GeoPoint> = sli.iter().map(|p| p.pos).collect();
    let truth: Vec<GeoPoint> = trip.points[5..trip.points.len() - 4]
        .iter()
        .map(|p| p.pos)
        .collect();
    let habit_dtw = resampled_dtw_m(&habit_pts, &truth).expect("dtw");
    let sli_dtw = resampled_dtw_m(&sli_pts, &truth).expect("dtw");
    assert!(habit_dtw.is_finite() && sli_dtw.is_finite());
}

#[test]
fn prelude_types_are_nameable() {
    // Purely compile-time: the re-exports the prelude documents.
    fn assert_type<T>() {}
    assert_type::<HabitModel>();
    assert_type::<HabitConfig>();
    assert_type::<HabitError>();
    assert_type::<GapQuery>();
    assert_type::<Imputation>();
    assert_type::<WeightScheme>();
    assert_type::<CellProjection>();
    assert_type::<HexCell>();
    assert_type::<HexGrid>();
    assert_type::<GeoPoint>();
    assert_type::<TimedPoint>();
    assert_type::<AisPoint>();
    assert_type::<Trajectory>();
    assert_type::<Trip>();
    assert_type::<VesselType>();
    assert_type::<Column>();
    assert_type::<Table>();
    assert_type::<DensityDiff>();
    assert_type::<DensityMap>();
    assert_type::<GapCase>();
    assert_type::<GtiConfig>();
    assert_type::<GtiModel>();
    assert_type::<Dataset>();
    assert_type::<World>();
}
