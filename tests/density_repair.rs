//! Cross-crate integration: whole-track repair (`habit_core::repair`)
//! feeding density analytics (`density`) — the end-to-end workflow the
//! paper's introduction motivates (gap-free density maps, Fig. 1).

use habit::core::RepairConfig;
use habit::density::{lane_continuity, DensityDiff, DensityMap};
use habit::prelude::*;
use habit::synth::{datasets, DatasetSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const RES: u8 = 8;

struct Fixture {
    model: HabitModel,
    test: Vec<Trip>,
    world: habit::synth::World,
}

fn fixture() -> Fixture {
    let dataset = datasets::kiel(DatasetSpec {
        seed: 42,
        scale: 0.2,
    });
    let trips = dataset.trips();
    let mut rng = StdRng::seed_from_u64(5);
    let (train, test) = split_trips(&trips, 0.7, &mut rng);
    let model = HabitModel::fit(
        &habit::ais::trips_to_table(&train),
        HabitConfig::with_r_t(9, 100.0),
    )
    .expect("fit");
    Fixture {
        model,
        test,
        world: dataset.world,
    }
}

/// Carves a silence into each test trip, repairs the track, and checks
/// that the repaired density map restores the lane the gaps erased.
#[test]
fn repair_restores_density_continuity() {
    let fx = fixture();
    let mut broken = DensityMap::new(RES);
    let mut repaired = DensityMap::new(RES);
    let mut rng = StdRng::seed_from_u64(6);
    let mut gaps = 0usize;

    for trip in &fx.test {
        let Some(case) = habit::eval::inject_gap(trip, 3600, &mut rng) else {
            continue;
        };
        gaps += 1;
        // The broken track: reports outside the silent window.
        let track: Vec<TimedPoint> = trip
            .points
            .iter()
            .filter(|p| p.t <= case.query.start.t || p.t >= case.query.end.t)
            .map(|p| TimedPoint { pos: p.pos, t: p.t })
            .collect();
        for p in &track {
            broken.record(&p.pos, trip.mmsi, 0.0);
        }
        // Repair with the default config (30-min threshold, 250 m
        // densification) and accumulate the repaired view.
        let (fixed, report) = fx
            .model
            .repair_track(&track, &RepairConfig::default())
            .expect("repair");
        assert_eq!(report.gaps_found(), 1, "exactly the carved silence");
        for p in &fixed {
            repaired.record(&p.pos, trip.mmsi, 0.0);
        }
    }
    assert!(gaps >= 3, "need gaps to repair, got {gaps}");

    // The repaired map strictly extends the broken one.
    let diff = DensityDiff::compute(&broken, &repaired);
    assert!(diff.lost.is_empty(), "repair must not remove traffic");
    assert!(
        !diff.restored.is_empty(),
        "repair must fill cells the gaps erased"
    );

    // Lane continuity along the corridor improves (or stays perfect).
    let grid = HexGrid::new();
    let from = grid
        .cell(&fx.world.port("Kiel").expect("port").pos, RES)
        .expect("cell");
    let to = grid
        .cell(&fx.world.port("Gothenburg").expect("port").pos, RES)
        .expect("cell");
    let c_broken = lane_continuity(&broken, from, to);
    let c_repaired = lane_continuity(&repaired, from, to);
    assert!(
        c_repaired >= c_broken,
        "continuity must not degrade: {c_broken:.3} -> {c_repaired:.3}"
    );
}

/// Repaired tracks never lose original reports and stay time-ordered,
/// even when many gaps are carved into one track.
#[test]
fn multi_gap_repair_preserves_reports() {
    let fx = fixture();
    let trip = fx
        .test
        .iter()
        .max_by_key(|t| t.points.len())
        .expect("non-empty test set");
    // Carve three disjoint silences.
    let t0 = trip.points.first().expect("points").t;
    let t1 = trip.points.last().expect("points").t;
    let span = t1 - t0;
    let windows = [
        (t0 + span / 6, t0 + span / 6 + 2400),
        (t0 + span / 2, t0 + span / 2 + 3600),
        (t0 + 4 * span / 5, t0 + 4 * span / 5 + 1800),
    ];
    let track: Vec<TimedPoint> = trip
        .points
        .iter()
        .filter(|p| !windows.iter().any(|&(a, b)| p.t > a && p.t < b))
        .map(|p| TimedPoint { pos: p.pos, t: p.t })
        .collect();

    let config = RepairConfig {
        gap_threshold_s: 20 * 60,
        ..RepairConfig::default()
    };
    let (fixed, report) = fx.model.repair_track(&track, &config).expect("repair");
    assert!(
        report.gaps_found() >= 2,
        "carved 3 silences, found {}",
        report.gaps_found()
    );
    assert!(fixed.windows(2).all(|w| w[0].t <= w[1].t));
    for p in &track {
        assert!(
            fixed.iter().any(|q| q.t == p.t),
            "original report at t={} lost",
            p.t
        );
    }
    assert_eq!(fixed.len(), track.len() + report.points_added);
}
