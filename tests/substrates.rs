//! Cross-substrate integration tests: invariants that hold *between*
//! crates (hexgrid ↔ geo, aggdb ↔ ais, mobgraph ↔ habit-core), plus
//! property-based checks at the crate boundaries.

use habit::aggdb::{Agg, AggSpec, Column, Table};
use habit::geo::{haversine_m, GeoPoint};
use habit::hexgrid::{ops, HexCell, HexGrid};
use habit::mobgraph::{astar, dijkstra, DiGraph};
use proptest::prelude::*;

// ------------------------------------------------------------------
// hexgrid ↔ geo

#[test]
fn cell_center_is_inside_cell_distance_bound() {
    let grid = HexGrid::new();
    // The center of the cell containing p is within one hex diameter.
    for (lon, lat) in [(10.0, 56.0), (23.6, 37.9), (-3.1, 48.5), (151.2, -33.8)] {
        for res in 6..=10u8 {
            let p = GeoPoint::new(lon, lat);
            let cell = grid.cell(&p, res).expect("cell");
            let center = grid.center(cell);
            let d = haversine_m(&p, &center);
            let edge = grid.edge_length_m(res).expect("edge");
            assert!(
                d <= edge * 2.5,
                "res {res}: point {d:.0} m from its cell center (edge {edge:.0} m)"
            );
        }
    }
}

proptest! {
    /// latlng→cell→center→cell round-trips to the same cell.
    #[test]
    fn center_round_trips_to_same_cell(
        lon in -170.0f64..170.0,
        lat in -65.0f64..65.0,
        res in 5u8..=10,
    ) {
        let grid = HexGrid::new();
        let cell = grid.cell(&GeoPoint::new(lon, lat), res).unwrap();
        let center = grid.center(cell);
        let back = grid.cell(&center, res).unwrap();
        prop_assert_eq!(cell, back);
    }

    /// Neighboring cells are exactly grid-distance 1 apart and mutually
    /// adjacent.
    #[test]
    fn neighbors_are_distance_one(
        lon in -170.0f64..170.0,
        lat in -65.0f64..65.0,
        res in 5u8..=10,
    ) {
        let grid = HexGrid::new();
        let cell = grid.cell(&GeoPoint::new(lon, lat), res).unwrap();
        for n in ops::neighbors(cell).unwrap() {
            prop_assert_eq!(grid.grid_distance(cell, n).unwrap(), 1);
            prop_assert!(ops::neighbors(n).unwrap().contains(&cell));
        }
    }

    /// Ground distance between two cell centers is consistent with the
    /// hex grid distance: within [dist-1, dist+1] hex diameters.
    #[test]
    fn grid_distance_tracks_ground_distance(
        lon in 9.0f64..11.0,
        lat in 55.0f64..57.0,
        dlon in -0.2f64..0.2,
        dlat in -0.2f64..0.2,
    ) {
        let grid = HexGrid::new();
        let res = 8u8;
        let a = grid.cell(&GeoPoint::new(lon, lat), res).unwrap();
        let b = grid.cell(&GeoPoint::new(lon + dlon, lat + dlat), res).unwrap();
        let hexes = grid.grid_distance(a, b).unwrap() as f64;
        let ground = haversine_m(&grid.center(a), &grid.center(b));
        let edge = grid.edge_length_m(res).unwrap();
        // One hex step moves between sqrt(3)*edge*cos-ish and 2*edge on
        // the ground; Mercator shrink keeps it below the planar bound.
        prop_assert!(ground <= (hexes + 1.0) * edge * 2.0,
            "ground {ground:.0} m, hexes {hexes}, edge {edge:.0} m");
    }
}

// ------------------------------------------------------------------
// aggdb ↔ ais

#[test]
#[allow(clippy::needless_range_loop)] // parallel column access by row index
fn groupby_matches_hand_computation_on_ais_shaped_table() {
    // Three trips over two cells with known medians.
    let table = Table::from_columns(vec![
        ("trip", Column::from_u64(vec![1, 1, 1, 2, 2, 3, 3, 3, 3])),
        ("cell", Column::from_u64(vec![7, 7, 8, 7, 8, 8, 8, 8, 7])),
        (
            "sog",
            Column::from_f64(vec![10.0, 12.0, 14.0, 9.0, 15.0, 13.0, 11.0, 12.0, 8.0]),
        ),
    ])
    .expect("table");
    let out = table
        .group_by(
            &["cell"],
            &[
                AggSpec::new("", Agg::Count, "n"),
                AggSpec::new("trip", Agg::CountDistinctExact, "trips"),
                AggSpec::new("sog", Agg::Median, "med"),
            ],
        )
        .expect("group");
    assert_eq!(out.num_rows(), 2);
    let cell = out.column_by_name("cell").unwrap().u64_values().unwrap();
    for i in 0..2 {
        let n = out.column_by_name("n").unwrap().value(i).as_u64().unwrap();
        let trips = out
            .column_by_name("trips")
            .unwrap()
            .value(i)
            .as_u64()
            .unwrap();
        let med = out
            .column_by_name("med")
            .unwrap()
            .value(i)
            .as_f64()
            .unwrap();
        match cell[i] {
            7 => {
                assert_eq!(n, 4);
                assert_eq!(trips, 3);
                assert_eq!(med, 9.5); // {8,9,10,12}
            }
            8 => {
                assert_eq!(n, 5);
                assert_eq!(trips, 3);
                assert_eq!(med, 13.0); // {11,12,13,14,15}
            }
            other => panic!("unexpected cell {other}"),
        }
    }
}

proptest! {
    /// HyperLogLog distinct counts stay within 10% of exact counts on
    /// AIS-scale cardinalities.
    #[test]
    fn approx_distinct_tracks_exact(ids in proptest::collection::vec(0u64..5_000, 200..3_000)) {
        let n = ids.len();
        let table = Table::from_columns(vec![
            ("k", Column::from_u64(vec![1; n])),
            ("id", Column::from_u64(ids.clone())),
        ]).unwrap();
        let out = table.group_by(&["k"], &[
            AggSpec::new("id", Agg::CountDistinctApprox, "approx"),
            AggSpec::new("id", Agg::CountDistinctExact, "exact"),
        ]).unwrap();
        let approx = out.column_by_name("approx").unwrap().value(0).as_u64().unwrap() as f64;
        let exact = out.column_by_name("exact").unwrap().value(0).as_u64().unwrap() as f64;
        prop_assert!(exact > 0.0);
        prop_assert!((approx - exact).abs() / exact < 0.10,
            "approx {approx} vs exact {exact}");
    }
}

// ------------------------------------------------------------------
// mobgraph search invariants

/// Builds a random connected digraph and checks A* with a zero heuristic
/// returns exactly Dijkstra's cost.
#[test]
fn astar_with_zero_heuristic_equals_dijkstra() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..20 {
        let n = rng.gen_range(5..40u64);
        let mut g: DiGraph<(), f64> = DiGraph::new();
        for id in 0..n {
            g.add_node(id, ());
        }
        // Ring for connectivity + random chords.
        for id in 0..n {
            g.add_edge(id, (id + 1) % n, rng.gen_range(1.0..10.0));
        }
        for _ in 0..n * 2 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                g.add_edge(a, b, rng.gen_range(1.0..10.0));
            }
        }
        let goal = rng.gen_range(1..n);
        let d = dijkstra(&g, 0, goal, |_, _, w| *w).expect("connected");
        let a = astar(&g, 0, goal, |_, _, w| *w, |_| 0.0).expect("connected");
        assert!(
            (d.cost - a.cost).abs() < 1e-9,
            "dijkstra {} vs astar {}",
            d.cost,
            a.cost
        );
        assert_eq!(d.nodes.first(), a.nodes.first());
        assert_eq!(d.nodes.last(), a.nodes.last());
    }
}

// ------------------------------------------------------------------
// geo ↔ eval (RDP and DTW interplay)

proptest! {
    /// DTW of a path against itself is zero, and against its RDP
    /// simplification it is bounded by the tolerance.
    #[test]
    fn dtw_of_rdp_simplification_bounded_by_tolerance(
        seed in 0u64..5_000,
        tol_m in 50.0f64..1_000.0,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        // A wandering path of ~60 points around Denmark.
        let mut pts = vec![GeoPoint::new(10.0, 56.0)];
        for _ in 0..60 {
            let last = *pts.last().unwrap();
            pts.push(GeoPoint::new(
                last.lon + rng.gen_range(-0.01..0.02),
                last.lat + rng.gen_range(-0.008..0.008),
            ));
        }
        let self_dtw = habit::eval::dtw_mean_m(&pts, &pts).unwrap();
        prop_assert!(self_dtw < 1e-9);

        let simplified = habit::geo::rdp(&pts, tol_m);
        prop_assert!(simplified.len() >= 2);
        prop_assert!(simplified.len() <= pts.len());
        // Every original vertex is within tol of the simplified path, so
        // the resampled DTW cannot exceed the tolerance by much (the
        // 250 m resampling grid adds at most half a step of slack).
        let dtw = habit::eval::resampled_dtw_m(&simplified, &pts).unwrap();
        prop_assert!(
            dtw <= tol_m + 250.0,
            "dtw {dtw:.1} m vs tolerance {tol_m:.1} m"
        );
    }
}

// ------------------------------------------------------------------
// hexgrid cell ids are stable across the graph/codec boundary

#[test]
fn cell_ids_survive_graph_codec_round_trip() {
    let grid = HexGrid::new();
    let mut g: DiGraph<u64, u32> = DiGraph::new();
    let cells: Vec<HexCell> = (0..50)
        .map(|i| {
            grid.cell(&GeoPoint::new(10.0 + i as f64 * 0.01, 56.0), 9)
                .expect("cell")
        })
        .collect();
    for (i, c) in cells.iter().enumerate() {
        g.add_node(c.raw(), i as u64);
    }
    for w in cells.windows(2) {
        g.add_edge(w[0].raw(), w[1].raw(), 1u32);
    }
    let bytes = g.to_bytes();
    let h: DiGraph<u64, u32> = DiGraph::from_bytes(&bytes).expect("decode");
    assert_eq!(h.node_count(), g.node_count());
    for c in &cells {
        assert!(h.node(c.raw()).is_some(), "cell id lost in round trip");
        // Ids decode back to the same cell.
        let decoded = HexCell::from_raw(c.raw()).expect("valid");
        assert_eq!(decoded, *c);
    }
}
