//! Integration tests asserting the *qualitative claims* of the paper's
//! evaluation — who wins, in which direction, by what rough shape —
//! on small synthetic datasets.

use habit::eval::experiments::{accuracy_dtw, latency, Bench};
use habit::eval::report::{mean, median};
use habit::eval::Imputer;
use habit::prelude::*;
use habit::synth::{datasets, DatasetSpec};

fn kiel_bench() -> Bench {
    Bench::prepare(
        datasets::kiel(DatasetSpec {
            seed: 42,
            scale: 0.25,
        }),
        42,
    )
}

/// Table 2's headline: HABIT's cell-graph model is smaller than GTI's
/// point-graph model, and the gap *widens with data volume* — GTI stores
/// every training point while HABIT saturates at the cells the lane
/// covers. (The paper's order-of-magnitude ratios appear at its full
/// 0.8M-position scale; laptop-scale datasets show the same divergence.)
#[test]
fn habit_model_smaller_than_gti_and_gap_widens_with_scale() {
    let gti_config = GtiConfig {
        rm_m: 250.0,
        rd_deg: 5e-4,
        ..GtiConfig::default()
    };
    let mut ratios = Vec::new();
    for scale in [0.1, 0.3] {
        let bench = Bench::prepare(datasets::kiel(DatasetSpec { seed: 42, scale }), 42);
        let habit =
            Imputer::fit_habit(&bench.train, HabitConfig::with_r_t(9, 100.0)).expect("habit");
        let gti = Imputer::fit_gti(&bench.train, gti_config).expect("gti");
        assert!(
            gti.storage_bytes() > habit.storage_bytes(),
            "scale {scale}: GTI {} !> HABIT {}",
            gti.storage_bytes(),
            habit.storage_bytes()
        );
        ratios.push(gti.storage_bytes() as f64 / habit.storage_bytes() as f64);
    }
    assert!(
        ratios[1] > ratios[0] * 1.3,
        "storage ratio must widen with data: {ratios:?}"
    );
}

/// Table 2's resolution sweep: storage grows monotonically with `r`.
#[test]
fn storage_grows_with_resolution() {
    let bench = kiel_bench();
    let mut last = 0usize;
    for r in 6..=10u8 {
        let m = Imputer::fit_habit(&bench.train, HabitConfig::with_r_t(r, 100.0)).expect("fit");
        let size = m.storage_bytes();
        assert!(size > last, "r={r}: {size} !> {last}");
        last = size;
    }
}

/// Figure 5's headline on the confined corridor: both HABIT and GTI beat
/// straight-line interpolation, which cannot capture turning points.
#[test]
fn habit_and_gti_beat_sli_on_confined_route() {
    let bench = kiel_bench();
    let cases = bench.gap_cases(3600, 42);
    assert!(cases.len() >= 3, "cases {}", cases.len());

    let habit = Imputer::fit_habit(&bench.train, HabitConfig::with_r_t(9, 100.0)).expect("habit");
    let gti = Imputer::fit_gti(
        &bench.train,
        GtiConfig {
            rm_m: 250.0,
            rd_deg: 5e-4,
            ..GtiConfig::default()
        },
    )
    .expect("gti");
    let sli = Imputer::sli();

    let habit_dtw = median(&accuracy_dtw(&habit, &cases));
    let gti_dtw = median(&accuracy_dtw(&gti, &cases));
    let sli_dtw = median(&accuracy_dtw(&sli, &cases));
    assert!(
        habit_dtw < sli_dtw,
        "HABIT {habit_dtw:.0} m should beat SLI {sli_dtw:.0} m"
    );
    assert!(
        gti_dtw < sli_dtw,
        "GTI {gti_dtw:.0} m should beat SLI {sli_dtw:.0} m"
    );
}

/// Table 4's headline: HABIT answers queries faster than GTI on average.
#[test]
fn habit_queries_are_faster_than_gti() {
    let bench = kiel_bench();
    let cases = bench.gap_cases(3600, 42);
    let habit = Imputer::fit_habit(&bench.train, HabitConfig::with_r_t(9, 100.0)).expect("habit");
    let gti = Imputer::fit_gti(
        &bench.train,
        GtiConfig {
            rm_m: 250.0,
            rd_deg: 5e-4,
            ..GtiConfig::default()
        },
    )
    .expect("gti");

    // Warm up, then measure.
    let _ = latency(&habit, &cases);
    let _ = latency(&gti, &cases);
    let (habit_avg, _, _) = latency(&habit, &cases);
    let (gti_avg, _, _) = latency(&gti, &cases);
    assert!(
        habit_avg < gti_avg,
        "HABIT avg {habit_avg:.6}s should be below GTI avg {gti_avg:.6}s"
    );
    // Sub-second queries (paper: milliseconds at full scale).
    assert!(habit_avg < 1.0, "HABIT avg {habit_avg}s");
}

/// Figure 3's ablation: at coarse resolutions the data-driven median
/// projection is at least as accurate as the geometric cell center.
#[test]
fn median_projection_no_worse_than_center_at_coarse_resolution() {
    let bench = kiel_bench();
    let cases = bench.gap_cases(3600, 42);
    for r in [6u8, 7] {
        let center = Imputer::fit_habit(
            &bench.train,
            HabitConfig {
                resolution: r,
                projection: CellProjection::Center,
                rdp_tolerance_m: 100.0,
                ..HabitConfig::default()
            },
        )
        .expect("center");
        let median_cfg = Imputer::fit_habit(
            &bench.train,
            HabitConfig {
                resolution: r,
                projection: CellProjection::Median,
                rdp_tolerance_m: 100.0,
                ..HabitConfig::default()
            },
        )
        .expect("median");
        let c = mean(&accuracy_dtw(&center, &cases));
        let m = mean(&accuracy_dtw(&median_cfg, &cases));
        // Allow a small tolerance: the claim is "median helps, strongly at
        // coarse r", not strict dominance on every sample.
        assert!(
            m <= c * 1.10,
            "r={r}: median {m:.0} m should not lose to center {c:.0} m"
        );
    }
}

/// Figure 7's shape: accuracy degrades with gap duration, but the median
/// error grows sub-linearly in the gap length.
#[test]
fn error_growth_is_sublinear_in_gap_duration() {
    let bench = kiel_bench();
    let habit = Imputer::fit_habit(&bench.train, HabitConfig::with_r_t(9, 100.0)).expect("habit");

    let m1 = median(&accuracy_dtw(&habit, &bench.gap_cases(3600, 43)));
    let m4 = median(&accuracy_dtw(&habit, &bench.gap_cases(4 * 3600, 46)));
    assert!(m1 > 0.0, "1-hour gaps must produce a nonzero error");
    if m4 > 0.0 {
        assert!(
            m4 < m1 * 8.0,
            "4x gap duration should not inflate median error 8x: {m1:.0} -> {m4:.0}"
        );
    }
}

/// The cell-span filter (§3.1): trips confined to one or two adjacent
/// cells contribute nothing to the graph.
#[test]
fn drifting_trips_are_filtered_from_the_graph() {
    use habit::ais::{trips_to_table, AisPoint, Trip};

    // One long sailing trip + one drift trip inside a single cell.
    let sail = Trip {
        trip_id: 1,
        mmsi: 1,
        points: (0..200)
            .map(|i| AisPoint::new(1, i * 60, 10.0 + i as f64 * 0.003, 56.0, 12.0, 90.0))
            .collect(),
    };
    let drift = Trip {
        trip_id: 2,
        mmsi: 2,
        points: (0..200)
            .map(|i| AisPoint::new(2, i * 60, 11.0 + (i % 3) as f64 * 1e-5, 56.2, 0.3, 0.0))
            .collect(),
    };
    let with_drift = HabitModel::fit(
        &trips_to_table(&[sail.clone(), drift]),
        HabitConfig::with_r_t(9, 100.0),
    )
    .expect("fit");
    let without =
        HabitModel::fit(&trips_to_table(&[sail]), HabitConfig::with_r_t(9, 100.0)).expect("fit");
    assert_eq!(
        with_drift.node_count(),
        without.node_count(),
        "drift trip must not add graph nodes"
    );
}
