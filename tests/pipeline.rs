//! End-to-end integration tests: synthetic world → AIS cleaning → trip
//! segmentation → HABIT fit → imputation → accuracy, across crate
//! boundaries (the full paper pipeline).

use habit::prelude::*;
use habit::synth::{datasets, DatasetSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn kiel_bench() -> (Vec<Trip>, Vec<Trip>) {
    let dataset = datasets::kiel(DatasetSpec {
        seed: 42,
        scale: 0.15,
    });
    let trips = dataset.trips();
    assert!(trips.len() >= 6, "need enough trips, got {}", trips.len());
    let mut rng = StdRng::seed_from_u64(1);
    split_trips(&trips, 0.7, &mut rng)
}

#[test]
fn full_pipeline_imputes_held_out_gaps() {
    let (train, test) = kiel_bench();
    let table = habit::ais::trips_to_table(&train);
    let model = HabitModel::fit(&table, HabitConfig::with_r_t(9, 100.0)).expect("fit");
    assert!(model.node_count() > 50, "nodes {}", model.node_count());
    assert!(model.edge_count() > 50, "edges {}", model.edge_count());

    let mut rng = StdRng::seed_from_u64(2);
    let mut attempted = 0usize;
    let mut succeeded = 0usize;
    let mut habit_beats_sli = 0usize;
    for trip in &test {
        let Some(case) = habit::eval::inject_gap(trip, 3600, &mut rng) else {
            continue;
        };
        attempted += 1;
        let Ok(imp) = model.impute(&case.query) else {
            continue;
        };
        succeeded += 1;
        // Paths must start/end exactly at the query endpoints with
        // monotone timestamps.
        let first = imp.points.first().expect("non-empty");
        let last = imp.points.last().expect("non-empty");
        assert_eq!(first.t, case.query.start.t);
        assert_eq!(last.t, case.query.end.t);
        assert!(
            imp.points.windows(2).all(|w| w[0].t <= w[1].t),
            "timestamps must be monotone"
        );

        let truth: Vec<GeoPoint> = case.truth.iter().map(|p| p.pos).collect();
        let habit_pts: Vec<GeoPoint> = imp.points.iter().map(|p| p.pos).collect();
        let habit_dtw = resampled_dtw_m(&habit_pts, &truth).expect("dtw");

        let sli: Vec<GeoPoint> = impute_sli(case.query.start, case.query.end, 250.0)
            .iter()
            .map(|p| p.pos)
            .collect();
        let sli_dtw = resampled_dtw_m(&sli, &truth).expect("dtw");
        if habit_dtw <= sli_dtw {
            habit_beats_sli += 1;
        }
    }
    assert!(attempted >= 2, "too few gap cases: {attempted}");
    assert_eq!(
        succeeded, attempted,
        "every gap on the trained corridor must impute"
    );
    // The corridor has a dog-leg around land, so following history beats
    // the straight line on a clear majority of gaps.
    assert!(
        habit_beats_sli * 2 >= attempted,
        "HABIT beat SLI on only {habit_beats_sli}/{attempted} gaps"
    );
}

#[test]
fn model_survives_serialization_at_dataset_scale() {
    let (train, test) = kiel_bench();
    let table = habit::ais::trips_to_table(&train);
    let model = HabitModel::fit(&table, HabitConfig::with_r_t(9, 100.0)).expect("fit");

    let bytes = model.to_bytes();
    let restored = HabitModel::from_bytes(&bytes).expect("round trip");
    assert_eq!(restored.node_count(), model.node_count());
    assert_eq!(restored.edge_count(), model.edge_count());

    // The restored model answers queries identically.
    let mut rng = StdRng::seed_from_u64(3);
    let case = test
        .iter()
        .filter_map(|t| habit::eval::inject_gap(t, 3600, &mut rng))
        .next()
        .expect("one gap case");
    let a = model.impute(&case.query).expect("impute");
    let b = restored.impute(&case.query).expect("impute");
    assert_eq!(a.cells, b.cells, "same cell sequence");
    assert_eq!(a.points.len(), b.points.len());
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert!((pa.pos.lon - pb.pos.lon).abs() < 1e-9);
        assert!((pa.pos.lat - pb.pos.lat).abs() < 1e-9);
        assert_eq!(pa.t, pb.t);
    }
}

#[test]
fn imputed_paths_stay_in_region_and_respect_tolerance() {
    let dataset = datasets::kiel(DatasetSpec {
        seed: 7,
        scale: 0.15,
    });
    let trips = dataset.trips();
    let mut rng = StdRng::seed_from_u64(4);
    let (train, test) = split_trips(&trips, 0.7, &mut rng);
    let table = habit::ais::trips_to_table(&train);
    let model = HabitModel::fit(&table, HabitConfig::with_r_t(9, 250.0)).expect("fit");

    let bbox = &dataset.world.bbox;
    for trip in &test {
        let Some(case) = habit::eval::inject_gap(trip, 3600, &mut rng) else {
            continue;
        };
        let Ok(imp) = model.impute(&case.query) else {
            continue;
        };
        for p in &imp.points {
            assert!(
                p.pos.lon >= bbox.min_lon - 0.2 && p.pos.lon <= bbox.max_lon + 0.2,
                "lon {} out of region",
                p.pos.lon
            );
            assert!(
                p.pos.lat >= bbox.min_lat - 0.2 && p.pos.lat <= bbox.max_lat + 0.2,
                "lat {} out of region",
                p.pos.lat
            );
        }
        // RDP never leaves more points than the raw cell path.
        assert!(imp.points.len() <= imp.raw_point_count.max(2));
    }
}

#[test]
#[allow(clippy::needless_range_loop)] // parallel column access by row index
fn vessel_histories_produce_cell_statistics_consistent_with_aggdb() {
    use habit::aggdb::{Agg, AggSpec};

    let (train, _) = kiel_bench();
    let table = habit::ais::trips_to_table(&train);
    let model = HabitModel::fit(&table, HabitConfig::with_r_t(8, 100.0)).expect("fit");

    // Recompute message counts per cell directly with aggdb and compare
    // with the statistics stored on the graph nodes.
    let grid = HexGrid::new();
    let lon = table.column_by_name("lon").unwrap().f64_values().unwrap();
    let lat = table.column_by_name("lat").unwrap().f64_values().unwrap();
    let cells: Vec<u64> = lon
        .iter()
        .zip(lat)
        .map(|(&x, &y)| {
            grid.cell(&GeoPoint::new(x, y), 8)
                .map(|c| c.raw())
                .unwrap_or(0)
        })
        .collect();
    let with_cells = table
        .clone()
        .with_column("cell", habit::aggdb::Column::from_u64(cells))
        .unwrap();
    let stats = with_cells
        .group_by(&["cell"], &[AggSpec::new("", Agg::Count, "msgs")])
        .unwrap();

    let cell_col = stats.column_by_name("cell").unwrap().u64_values().unwrap();
    let mut checked = 0usize;
    for i in 0..stats.num_rows() {
        let Ok(cell) = HexCell::from_raw(cell_col[i]) else {
            continue;
        };
        if let Some(node) = model.cell_stats(cell) {
            let msgs = stats
                .column_by_name("msgs")
                .unwrap()
                .value(i)
                .as_u64()
                .unwrap();
            // Cell-span filtering may drop a few short trips from the
            // model, so the graph count never exceeds the raw count.
            assert!(
                node.msg_count <= msgs,
                "graph count {} > raw count {msgs}",
                node.msg_count
            );
            checked += 1;
        }
    }
    assert!(checked > 20, "checked only {checked} cells");
}
