//! Smoke tests for the experiment runners: every table/figure generator
//! produces well-formed rows on miniature datasets. (Full-scale numbers
//! are produced by the `habit-bench` binaries and recorded in
//! EXPERIMENTS.md.)

use habit::eval::experiments::{self, Bench};
use habit::synth::{datasets, DatasetSpec};

fn tiny_kiel() -> Bench {
    Bench::prepare(
        datasets::kiel(DatasetSpec {
            seed: 42,
            scale: 0.1,
        }),
        42,
    )
}

fn tiny_sar() -> Bench {
    Bench::prepare(
        datasets::sar(DatasetSpec {
            seed: 42,
            scale: 0.1,
        }),
        42,
    )
}

#[test]
fn fig3_grid_is_complete_and_ordered() {
    let bench = tiny_kiel();
    let rows = experiments::fig3(&bench, 42);
    assert_eq!(rows.len(), 10, "5 resolutions x 2 projections");
    let mut seen = std::collections::HashSet::new();
    for r in &rows {
        assert!((6..=10).contains(&r.resolution));
        assert!(r.projection == "center" || r.projection == "median");
        assert!(r.mean_dtw_m >= 0.0 && r.mean_dtw_m.is_finite());
        assert!(r.median_dtw_m <= r.mean_dtw_m * 3.0 + 1.0);
        assert!(r.imputed <= r.total);
        seen.insert((r.resolution, r.projection));
    }
    assert_eq!(seen.len(), 10, "no duplicate (r, p) combinations");
}

#[test]
fn table2_row_set_matches_paper_configurations() {
    let kiel = tiny_kiel();
    let sar = tiny_sar();
    let rows = experiments::table2(&kiel, &sar);
    assert_eq!(rows.len(), 8, "5 HABIT + 3 GTI");
    let habit_rows: Vec<_> = rows.iter().filter(|r| r.method == "HABIT").collect();
    assert_eq!(habit_rows.len(), 5);
    // Monotone growth with resolution, on both datasets.
    for w in habit_rows.windows(2) {
        assert!(
            w[1].kiel_bytes >= w[0].kiel_bytes,
            "KIEL storage must grow with r"
        );
        assert!(
            w[1].sar_bytes >= w[0].sar_bytes,
            "SAR storage must grow with r"
        );
    }
    // GTI outgrows HABIT at the paper's selected configuration (r = 9).
    // (At r = 10 the comparison needs production-scale data — the ratio-
    // vs-scale claim is asserted in tests/paper_claims.rs.)
    let habit_r9 = habit_rows
        .iter()
        .find(|r| r.config == "r=9")
        .expect("r=9 row")
        .kiel_bytes;
    let max_gti = rows
        .iter()
        .filter(|r| r.method == "GTI")
        .map(|r| r.kiel_bytes)
        .max()
        .unwrap();
    assert!(max_gti > habit_r9, "GTI {max_gti} !> HABIT r9 {habit_r9}");
}

#[test]
fn table3_simplification_reduces_points_and_sharp_turns() {
    let bench = tiny_kiel();
    let (rows, original) = experiments::table3(&bench, 42);
    assert_eq!(rows.len(), 10);
    assert!(original.count >= 3, "original stats from truth paths");
    for res in [9u8, 10] {
        let series: Vec<_> = rows.iter().filter(|r| r.resolution == res).collect();
        assert_eq!(series.len(), 5);
        let cnt_t0 = series
            .iter()
            .find(|r| r.tolerance_m == 0.0)
            .unwrap()
            .stats
            .count;
        let cnt_t1000 = series
            .iter()
            .find(|r| r.tolerance_m == 1000.0)
            .unwrap()
            .stats
            .count;
        assert!(
            cnt_t1000 < cnt_t0.max(3),
            "r={res}: t=1000 must compress the path ({cnt_t1000} !< {cnt_t0})"
        );
        let over45_t0 = series
            .iter()
            .find(|r| r.tolerance_m == 0.0)
            .unwrap()
            .stats
            .turns_over_45;
        let over45_t1000 = series
            .iter()
            .find(|r| r.tolerance_m == 1000.0)
            .unwrap()
            .stats
            .turns_over_45;
        assert!(
            over45_t1000 <= over45_t0,
            "r={res}: simplification must not add sharp turns"
        );
    }
}

#[test]
fn fig5_and_table4_cover_every_method() {
    let bench = tiny_kiel();
    let f5 = experiments::fig5(&bench, 42);
    assert_eq!(f5.len(), 8, "4 HABIT + 3 GTI + SLI");
    assert!(f5.iter().any(|r| r.method == "SLI"));
    assert!(f5.iter().filter(|r| r.method.starts_with("HABIT")).count() == 4);
    assert!(f5.iter().filter(|r| r.method.starts_with("GTI")).count() == 3);
    for r in &f5 {
        assert!(r.failures <= r.total);
        assert_eq!(r.dataset, "KIEL");
    }

    let t4 = experiments::table4(&bench, 42);
    assert_eq!(
        t4.len(),
        7,
        "4 HABIT + 3 GTI (SLI excluded as in the paper)"
    );
    for r in &t4 {
        assert!(r.avg_s >= 0.0 && r.max_s >= r.avg_s);
        assert!(r.gaps > 0);
    }
}

#[test]
fn fig6_cases_include_truth_and_methods() {
    let bench = tiny_kiel();
    let cases = experiments::fig6(&bench, 42, 2);
    assert!(!cases.is_empty() && cases.len() <= 2);
    for case in &cases {
        assert!(case.truth.len() >= 2);
        assert!(
            case.paths
                .iter()
                .any(|(label, _)| label.starts_with("HABIT")),
            "HABIT path present"
        );
        assert!(case.paths.iter().any(|(label, _)| label == "SLI"));
        for (_, path) in &case.paths {
            assert!(path.len() >= 2);
        }
    }
}

#[test]
fn fig7_sweeps_durations_per_config() {
    let bench = tiny_kiel();
    let rows = experiments::fig7(&bench, 42);
    assert_eq!(rows.len(), 12, "4 configs x 3 durations");
    for r in &rows {
        assert!([1.0, 2.0, 4.0].contains(&r.gap_hours));
        assert!(r.p25_m <= r.median_dtw_m + 1e-9);
        assert!(r.median_dtw_m <= r.p75_m + 1e-9);
        assert!(r.p75_m <= r.max_m + 1e-9);
    }
}

#[test]
fn table1_reports_all_three_datasets() {
    // table1 generates its own datasets at `eval_scale()`; keep this test
    // cheap by setting the scale before any other env read in this
    // process (tests in this file run in one process; none read it).
    std::env::set_var("HABIT_EVAL_SCALE", "0.1");
    let rows = experiments::table1(42);
    std::env::remove_var("HABIT_EVAL_SCALE");
    assert_eq!(rows.len(), 3);
    let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, vec!["DAN", "KIEL", "SAR"]);
    for r in &rows {
        assert!(r.positions > 100, "{}: positions {}", r.name, r.positions);
        assert!(r.trips > 0);
        assert!(r.ships > 0);
        assert!(r.size_bytes > r.positions * 40);
    }
    // Scenario structure: SAR has by far the most ships; KIEL exactly 2.
    let kiel = rows.iter().find(|r| r.name == "KIEL").unwrap();
    let sar = rows.iter().find(|r| r.name == "SAR").unwrap();
    assert_eq!(kiel.ships, 2);
    assert!(sar.ships > 50);
}
